"""The process engine: deployment, instances, timers, messages, recovery.

Typical wiring::

    engine = ProcessEngine()                  # volatile, wall clock
    engine.services.register("charge", charge_card)
    engine.organization.add("ana", roles=["clerk"])
    engine.deploy(model)
    instance = engine.start_instance("order", {"amount": 120})

For durability pass a :class:`~repro.storage.kvstore.DurableKV`; after a
crash, construct an engine over the same store (with services re-registered
— code is not persisted, state is) and call :meth:`ProcessEngine.recover`.

Persistence is incremental: every flush writes only the records that
changed since the last one (``instance/<id>``, ``jobs/<id>``,
``workitem/<id>``, ``dispatch/<seq>``), and the commit policy decides when
flushes happen — per call (default), every ``commit_interval`` records, or
once per :meth:`ProcessEngine.batch` block (group commit for bulk traffic).

Every public mutation is a typed :class:`~repro.engine.commands.Command`
executed through :meth:`ProcessEngine.dispatch` — one path carrying the
serialization gate (thread safety), idempotent dedup keys, observability,
the dispatch log, and the commit policy.  The public methods below are
thin command constructors; node semantics live in
:mod:`repro.engine.executors` and the interpreter core in
:mod:`repro.engine.execution`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.clock import Clock, VirtualClock, WallClock
from repro.engine import commands as cmds
from repro.engine import execution as core
from repro.engine import executors as _executors  # noqa: F401 - registry load
from repro.engine.commands import Command
from repro.engine.dispatch import Dispatcher
from repro.engine.errors import (
    DefinitionNotFoundError,
    EngineError,
    IllegalInstanceStateError,
    InstanceNotFoundError,
)
from repro.engine.executors.subprocesses import on_mi_child_finished
from repro.engine.executors.tasks import perform_service_invocation
from repro.engine.instance import InstanceState, ProcessInstance, TokenState
from repro.engine.jobs import JobScheduler
from repro.engine.metrics import EngineMetrics
from repro.engine.migration import MigrationPlan, apply_migration
from repro.history.audit import HistoryService
from repro.history.events import EventTypes
from repro.model.process import ProcessDefinition
from repro.model.serialization import definition_from_dict, definition_to_dict
from repro.obs import Observability
from repro.obs.spans import Span
from repro.services.bus import Message, MessageBus
from repro.services.invoker import ServiceInvoker
from repro.services.registry import ServiceRegistry
from repro.storage.kvstore import KeyValueStore, MemoryKV
from repro.views.manager import ProjectionManager
from repro.worklist.allocation import Allocator
from repro.worklist.items import WorkItem
from repro.worklist.resources import OrganizationalModel
from repro.worklist.service import WorklistService


class ProcessEngine:
    """The workflow enactment service."""

    def __init__(
        self,
        clock: Clock | None = None,
        store: KeyValueStore | None = None,
        history: HistoryService | None = None,
        organization: OrganizationalModel | None = None,
        allocator: Allocator | None = None,
        services: ServiceRegistry | None = None,
        bus: MessageBus | None = None,
        verify_soundness: bool = False,
        soundness_max_states: int = 50_000,
        max_steps: int = 100_000,
        obs: Observability | None = None,
        strict_references: bool = False,
        commit_interval: int = 1,
        dispatch_log_retention: int = 256,
        shard_tag: str = "",
        views: bool = True,
        views_flush_lag: int | None = None,
    ) -> None:
        """``commit_interval`` sets the durable commit policy: ``1``
        (default) flushes dirty state after every public API call
        (autocommit); ``n > 1`` defers until at least ``n`` dirty records
        accumulate — call :meth:`flush` (or use :meth:`batch`) to force a
        commit earlier.  ``dispatch_log_retention`` bounds the persisted
        command log and with it the idempotency (dedup-key) window.
        ``shard_tag`` (e.g. ``"s2"``, set by the cluster layer) namespaces
        generated instance and work-item ids (``order-s2-7``, ``wi-s2-3``)
        so several engines can coexist without id collisions.  ``views``
        maintains the materialized read models of :mod:`repro.views`
        write-behind: commits note dirty entity ids, reads materialize
        them, and the ``view/<name>/…`` records persist inside the first
        group commit after the stored image lags ``views_flush_lag``
        dispatch seqs (default: retention/4, always within the
        tail-replay window) — forced flushes persist unconditionally.
        Pass ``views=False`` to opt out — recovery rebuilds the records
        on re-enable.  See DESIGN.md §Persistence & commit policies,
        §Command pipeline, and §Read models."""
        # `is None` checks throughout: several of these are container-like
        # (empty store/org would be falsy under `or`)
        self.clock = clock if clock is not None else WallClock()
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(self.clock)
        self.store = store if store is not None else MemoryKV()
        self.history = (
            history if history is not None else HistoryService(clock=self.clock)
        )
        self.organization = (
            organization if organization is not None else OrganizationalModel()
        )
        self.services = services if services is not None else ServiceRegistry()
        self.bus = bus if bus is not None else MessageBus()
        self.verify_soundness = verify_soundness
        self.soundness_max_states = soundness_max_states
        self.max_steps = max_steps
        self.strict_references = strict_references
        self.shard_tag = shard_tag
        self._id_ns = f"{shard_tag}-" if shard_tag else ""

        from repro.decisions.table import DecisionRegistry

        self.decisions = DecisionRegistry()
        self.metrics = EngineMetrics(self.obs.registry)
        self.scheduler = JobScheduler()
        self.worklist = WorklistService(
            organization=self.organization,
            allocator=allocator,
            clock=self.clock,
            history=self.history,
            obs=self.obs,
            id_namespace=shard_tag,
        )
        self.worklist.on_completion(self._on_work_item_completed)
        self.invoker = ServiceInvoker(self.services, clock=self.clock, obs=self.obs)
        self.bus.subscribe(self._on_bus_message)
        # observability wiring: cached instruments for the hot loop, the
        # engine root span, and per-instance spans (ended on finish)
        self._tracer = self.obs.tracer  # hot-loop alias
        self._c_token_moves = self.obs.registry.counter("engine.token_moves")
        self._c_lint_warnings = self.obs.registry.counter("engine.lint.warnings")
        self._c_lint_blocked = self.obs.registry.counter(
            "engine.lint.deploy_blocked"
        )
        self._c_interproc_warnings = self.obs.registry.counter(
            "engine.lint.interproc_warnings"
        )
        self._c_interproc_blocked = self.obs.registry.counter(
            "engine.lint.interproc_blocked"
        )
        # created lazily on first deploy (keeps repro.analysis off the
        # import path of engine construction)
        self._analysis_cache: Any | None = None
        self._g_queue_depth = self.obs.registry.gauge("engine.scheduler.queue_depth")
        self._c_jobs_orphaned = self.obs.registry.counter("engine.jobs.orphaned")
        self._c_flush_commits = self.obs.registry.counter("engine.flush.commits")
        self._c_flush_records = self.obs.registry.counter(
            "engine.flush.records_written"
        )
        self._h_flush_batch = self.obs.registry.histogram(
            "engine.flush.batch_records",
            (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0),
        )
        self._c_commands = self.obs.registry.counter("engine.commands.dispatched")
        self._c_commands_deduped = self.obs.registry.counter(
            "engine.commands.deduped"
        )
        self._c_inv_enqueued = self.obs.registry.counter("workers.enqueued")
        self._c_inv_completed = self.obs.registry.counter("workers.completed")
        self._c_inv_duplicates = self.obs.registry.counter(
            "workers.duplicate_completions"
        )
        self._c_inv_cancelled = self.obs.registry.counter("workers.cancelled")
        self._c_inv_requeued = self.obs.registry.counter("workers.requeued")
        self._c_compensations = self.obs.registry.counter("engine.compensations")
        self._g_dead_letters = self.obs.registry.gauge("workers.dead_letters")
        self._command_counters: dict[str, Any] = {}
        self._instance_spans: dict[str, Span] = {}
        self._engine_span: Span | None = (
            self.obs.tracer.start_span("engine") if self.obs.enabled else None
        )

        self._definitions: dict[str, ProcessDefinition] = {}
        self._latest_version: dict[str, int] = {}
        self._instances: dict[str, ProcessInstance] = {}
        self._message_waits: list[dict[str, Any]] = []
        self._reach_cache: dict[str, dict[tuple[str, str], bool]] = {}
        self._instance_seq = 0
        self._dirty: set[str] = set()
        self._advancing: set[str] = set()
        # secondary indexes: instance ids by state and by business key,
        # maintained solely by _register_instance/_set_instance_state so
        # instances(state=...) / find_instances need not scan linearly
        self._by_state: dict[InstanceState, dict[str, None]] = {
            state: {} for state in InstanceState
        }
        self._by_business_key: dict[str, dict[str, None]] = {}
        self._creation_order: dict[str, int] = {}
        # incremental-persistence bookkeeping: the commit policy, the
        # batch() nesting depth, whether the message-wait list changed,
        # and the last instance_seq written to engine/meta
        self._commit_interval = max(1, int(commit_interval))
        self._batch_depth = 0
        self._waits_dirty = False
        self._persisted_seq = 0
        # asynchronous service execution (see repro.workers): the pending-
        # invocation table is the at-least-once ledger — records are
        # persisted in the same group commit as the enqueueing dispatch,
        # handed to the pool only after that commit, and removed in the
        # same commit as their completion.  Dead letters are invocations
        # whose retries exhausted; per-service enqueued/completed counters
        # back the workers_status() invariant.
        self.workers = None  # type: Any
        self._invocations: dict[str, Any] = {}
        self._invocations_dirty: set[str] = set()
        self._invocations_removed: set[str] = set()
        self._invocations_to_submit: list[str] = []
        self._dead_letters: dict[str, dict[str, Any]] = {}
        self._dead_letters_dirty: set[str] = set()
        self._dead_letters_removed: set[str] = set()
        self._invocation_seq = 0
        self._persisted_invocation_seq = 0
        self._inv_enqueued: dict[str, int] = {}
        self._inv_completed: dict[str, int] = {}
        # cross-shard forwarding outbox (see repro.cluster.outbox): records
        # a forwarder claims under this shard's dispatch lock, persisted in
        # the same group commit as the claiming dispatch and deleted only
        # after the target shard's delivery flushed.  The sequence is
        # persisted in engine/meta because records are removed after drain
        # — a restart must never re-mint a fwd:<origin>:<seq> key that may
        # still sit in a target's dedup window.
        self._outbox: dict[int, Any] = {}
        self._outbox_dirty: set[int] = set()
        self._outbox_removed: set[int] = set()
        self._outbox_seq = 0
        self._persisted_outbox_seq = 0
        # the command pipeline: a single re-entrant serialization gate
        # shared with the worklist and the bus, the idempotency window,
        # and the bounded persisted dispatch log
        self._dispatch_lock = threading.RLock()
        self.worklist.bind_lock(self._dispatch_lock)
        self.bus.bind_lock(self._dispatch_lock)
        self._dedup: dict[str, dict[str, Any]] = {}
        self._dispatch_log: list[dict[str, Any]] = []
        self._dispatch_seq = 0
        self._dispatch_log_retention = max(1, int(dispatch_log_retention))
        self._dispatch_dirty: set[int] = set()
        self._dispatch_removed: set[int] = set()
        self._dispatcher = Dispatcher(
            self, handlers=self._command_handlers(), lock=self._dispatch_lock
        )
        # the CQRS read side (repro.views): write-behind materialized
        # projections whose records persist inside the same store
        # transaction as a group commit, so the read models are never
        # ahead of durable state; the persist cadence is bounded by the
        # tail-replay window (recovery re-applies the stamped log tail)
        self.views: ProjectionManager | None = (
            ProjectionManager(obs=self.obs) if views else None
        )
        self._views_flush_lag = (
            max(1, self._dispatch_log_retention // 4)
            if views_flush_lag is None
            else max(1, int(views_flush_lag))
        )

    # -- the command pipeline --------------------------------------------------

    def dispatch(self, command: Command) -> Any:
        """Execute a typed command through the middleware pipeline.

        This is the single mutation path: serialization gate →
        idempotency → observability → commit policy → dispatch log →
        handler.  All public mutation methods below delegate here.
        """
        return self._dispatcher.dispatch(command)

    def _command_handlers(self) -> dict[type[Command], Callable[[Any], Any]]:
        return {
            cmds.DeployDefinition: self._handle_deploy,
            cmds.StartInstance: self._handle_start_instance,
            cmds.TerminateInstance: self._handle_terminate_instance,
            cmds.CompensateInstance: self._handle_compensate_instance,
            cmds.SuspendInstance: self._handle_suspend_instance,
            cmds.ResumeInstance: self._handle_resume_instance,
            cmds.MigrateInstance: self._handle_migrate_instance,
            cmds.ClaimWorkItem: self._handle_claim_work_item,
            cmds.StartWorkItem: self._handle_start_work_item,
            cmds.CompleteWorkItem: self._handle_complete_work_item,
            cmds.CorrelateMessage: self._handle_correlate_message,
            cmds.RunDueJobs: self._handle_run_due_jobs,
            cmds.AdvanceTime: self._handle_advance_time,
            cmds.CompleteServiceInvocation: self._handle_complete_invocation,
            cmds.RequeueDeadLetter: self._handle_requeue_dead_letter,
        }

    def _append_dispatch_record(self, record: dict[str, Any]) -> None:
        """Assign the next sequence number and store the log entry.

        The log is bounded by ``dispatch_log_retention``: pruned entries
        are deleted from the store on the next flush, and dedup keys
        whose recording entry fell out of the window are evicted — the
        idempotency guarantee holds within the retention window.
        """
        self._dispatch_seq += 1
        record["seq"] = self._dispatch_seq
        self._dispatch_log.append(record)
        self._dispatch_dirty.add(record["seq"])
        while len(self._dispatch_log) > self._dispatch_log_retention:
            old = self._dispatch_log.pop(0)
            seq = old["seq"]
            if seq in self._dispatch_dirty:
                self._dispatch_dirty.discard(seq)  # never reached the store
            else:
                self._dispatch_removed.add(seq)
            key = old.get("dedup_key")
            if key is not None:
                hit = self._dedup.get(key)
                if hit is not None and hit.get("seq") == seq:
                    del self._dedup[key]

    def _has_pending_dirty(self) -> bool:
        """Whether any state changed since the last flush (log trigger)."""
        if self._dirty or self._waits_dirty:
            return True
        if self._instance_seq != self._persisted_seq:
            return True
        if self._invocation_seq != self._persisted_invocation_seq:
            return True
        if self._invocations_dirty or self._invocations_removed:
            return True
        if self._dead_letters_dirty or self._dead_letters_removed:
            return True
        if self._outbox_dirty or self._outbox_removed:
            return True
        if self._outbox_seq != self._persisted_outbox_seq:
            return True
        dirty_jobs, removed_jobs = self.scheduler.pending_changes()
        if dirty_jobs or removed_jobs:
            return True
        return bool(self.worklist.dirty_item_ids())

    def dispatch_history(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Recent dispatch-log entries, oldest first (``repro commands``)."""
        log = list(self._dispatch_log)
        if limit is not None and limit >= 0:
            log = log[len(log) - min(limit, len(log)):]
        return log

    # -- deployment -----------------------------------------------------------

    def deploy(
        self,
        definition: ProcessDefinition,
        verify: bool | None = None,
        force: bool = False,
    ) -> str:
        """Deploy a definition; returns its ``key:version`` identifier.

        The full static analysis (:func:`repro.analysis.analyze`) always
        runs.  Structural errors block deployment; behavioural errors
        (deadlock, lack of synchronization, ...) block when ``verify``
        (or the engine-wide ``verify_soundness``) is true.  Unresolved
        references (services, roles, decisions) block only for engines
        constructed with ``strict_references=True`` — otherwise they are
        warnings, since registration order is a legitimate workflow.
        ``force=True`` deploys despite errors (they are still recorded).
        Every non-info finding is emitted as a ``lint.diagnostic``
        observability event.
        """
        return self.dispatch(
            cmds.DeployDefinition(definition=definition, verify=verify, force=force)
        )

    def _handle_deploy(self, cmd: cmds.DeployDefinition) -> str:
        from repro.analysis import AnalysisContext, Severity, analyze

        definition = cmd.definition
        if cmd.pre_verified:
            return self._register_deployment(definition)
        behavioral = cmd.verify if cmd.verify is not None else self.verify_soundness
        overrides = None
        if not self.strict_references:
            overrides = {
                rule_id: Severity.WARNING
                for rule_id in ("REF001", "REF002", "REF003", "REF004")
            }
        report = analyze(
            definition,
            context=AnalysisContext.from_engine(self),
            behavioral=behavioral,
            max_states=self.soundness_max_states,
            severity_overrides=overrides,
        )
        for diagnostic in report.diagnostics:
            if diagnostic.severity is Severity.INFO:
                continue
            self.obs.event(
                "lint.diagnostic",
                process=definition.key,
                rule=diagnostic.rule,
                severity=diagnostic.severity.value,
                element=diagnostic.element_id,
                message=diagnostic.message,
            )
        self._c_lint_warnings.inc(len(report.warnings))
        interproc = self._interproc_findings(definition)
        for diagnostic in interproc:
            if diagnostic.severity is Severity.INFO:
                continue
            self.obs.event(
                "lint.interproc",
                process=definition.key,
                rule=diagnostic.rule,
                severity=diagnostic.severity.value,
                element=diagnostic.element_id,
                message=diagnostic.message,
            )
        self._c_interproc_warnings.inc(
            sum(1 for d in interproc if d.severity is Severity.WARNING)
        )
        if not report.ok:
            behavioural_rules = {"SND001", "SND002", "SND003", "SND005"}
            structural = [
                d for d in report.errors if d.rule not in behavioural_rules
            ]
            errors = structural if structural else report.errors
            kind = "invalid" if structural else "unsound"
            if not cmd.force:
                self._c_lint_blocked.inc()
                raise EngineError(
                    f"definition {definition.key!r} {kind}: "
                    + "; ".join(
                        f"[{d.rule}] {d.element_id}: {d.message}" for d in errors
                    )
                )
        interproc_errors = [
            d for d in interproc if d.severity is Severity.ERROR
        ]
        if interproc_errors and not cmd.force:
            self._c_interproc_blocked.inc()
            raise EngineError(
                f"definition {definition.key!r} breaks the deployment: "
                + "; ".join(
                    f"[{d.rule}] {d.element_id}: {d.message}"
                    for d in interproc_errors
                )
            )
        return self._register_deployment(definition)

    def _interproc_findings(self, definition: ProcessDefinition) -> list:
        """Deployment-wide findings (MSG*/CALL*) for a deploy candidate.

        The candidate is checked against the latest version of every other
        deployed definition.  Results are memoized in an
        :class:`~repro.analysis.cache.AnalysisCache` keyed on the
        candidate's content hash plus the registry's interface
        fingerprint, so redeploys and interface-neutral edits skip the
        graph walk.  Unless ``strict_references``, CALL001 (call target
        not deployed) is downgraded to a warning — deploy order is a
        legitimate workflow, mirroring REF004.
        """
        from dataclasses import replace as _replace

        from repro.analysis import (
            AnalysisCache,
            DeploymentGraph,
            Severity,
            interproc_pass,
        )
        from repro.analysis import _apply_suppressions, _with_provenance

        if self._analysis_cache is None:
            self._analysis_cache = AnalysisCache()
        cache = self._analysis_cache
        snapshot = [
            self._definitions[f"{key}:{version}"]
            for key, version in self._latest_version.items()
            if key != definition.key
        ]
        snapshot.append(definition)
        interfaces = {d.key: cache.interface(d) for d in snapshot}
        graph = DeploymentGraph.build(snapshot, interfaces=interfaces)
        cache_key = cache.interproc_key(definition, graph.fingerprint())
        raw = cache.get_interproc(cache_key)
        if raw is None:
            raw = interproc_pass(definition, graph)
            cache.put_interproc(cache_key, raw)
        if not self.strict_references:
            raw = [
                _replace(d, severity=Severity.WARNING)
                if d.rule == "CALL001" and d.severity is Severity.ERROR
                else d
                for d in raw
            ]
        decorated = [_with_provenance(definition, d) for d in raw]
        kept, _suppressed = _apply_suppressions(definition, decorated)
        return kept

    def _register_deployment(self, definition: ProcessDefinition) -> str:
        version = self._latest_version.get(definition.key, 0) + 1
        deployed = definition.with_version(version)
        self._definitions[deployed.identifier] = deployed
        self._latest_version[definition.key] = version
        self.store.put(
            f"definition/{deployed.identifier}", definition_to_dict(deployed)
        )
        self.store.put("engine/latest_versions", dict(self._latest_version))
        self.history.record(
            HistoryService.ENGINE_STREAM,
            EventTypes.DEFINITION_DEPLOYED,
            definition_id=deployed.identifier,
        )
        return deployed.identifier

    def definition(self, key: str, version: int | None = None) -> ProcessDefinition:
        """Look up a deployed definition (latest version by default)."""
        if version is None:
            version = self._latest_version.get(key, 0)
        identifier = f"{key}:{version}"
        try:
            return self._definitions[identifier]
        except KeyError:
            raise DefinitionNotFoundError(
                f"no deployed definition {identifier!r}"
            ) from None

    def definitions(self) -> list[ProcessDefinition]:
        """All deployed definitions, sorted by identifier."""
        return [self._definitions[k] for k in sorted(self._definitions)]

    def _definition_of(self, instance: ProcessInstance) -> ProcessDefinition:
        try:
            return self._definitions[instance.definition_id]
        except KeyError:
            raise DefinitionNotFoundError(
                f"instance {instance.id!r} references missing definition "
                f"{instance.definition_id!r}"
            ) from None

    # -- history plumbing ------------------------------------------------------

    def _record(self, instance: ProcessInstance, event_type: str, **data: Any) -> None:
        self.history.record(instance.id, event_type, **data)

    # -- instances -------------------------------------------------------------

    def start_instance(
        self,
        key: str,
        variables: dict[str, Any] | None = None,
        business_key: str | None = None,
        version: int | None = None,
        dedup_key: str | None = None,
    ) -> ProcessInstance:
        """Create and advance a new instance of a deployed definition."""
        return self.dispatch(
            cmds.StartInstance(
                key=key,
                variables=dict(variables or {}),
                business_key=business_key,
                version=version,
                dedup_key=dedup_key,
            )
        )

    def _handle_start_instance(self, cmd: cmds.StartInstance) -> ProcessInstance:
        return self._start_instance_internal(
            key=cmd.key,
            version=cmd.version,
            variables=dict(cmd.variables),
            business_key=cmd.business_key,
            parent_instance_id=None,
            parent_token_id=None,
        )

    def _start_instance_internal(
        self,
        key: str,
        version: int | None,
        variables: dict[str, Any],
        business_key: str | None,
        parent_instance_id: str | None,
        parent_token_id: int | None,
    ) -> ProcessInstance:
        definition = self.definition(key, version)
        starts = definition.start_events()
        if len(starts) != 1:
            raise EngineError(f"definition {key!r} needs exactly one start event")
        self._instance_seq += 1
        instance = ProcessInstance(
            id=f"{key}-{self._id_ns}{self._instance_seq}",
            definition_id=definition.identifier,
            business_key=business_key,
            variables=variables,
            created_at=self.clock.now(),
            parent_instance_id=parent_instance_id,
            parent_token_id=parent_token_id,
        )
        self._register_instance(instance, self._instance_seq)
        instance.new_token(starts[0].id)
        self.metrics.instances_started += 1
        if self.obs.enabled:
            tracer = self.obs.tracer
            self._instance_spans[instance.id] = tracer.start_span(
                "instance",
                parent=tracer.current() or self._engine_span,
                instance_id=instance.id,
                definition_id=definition.identifier,
            )
        self._record(
            instance,
            EventTypes.INSTANCE_STARTED,
            definition_id=definition.identifier,
            business_key=business_key,
            parent=parent_instance_id,
        )
        core.advance(self, instance)
        return instance

    # -- secondary indexes ------------------------------------------------------

    def _register_instance(self, instance: ProcessInstance, rank: int) -> None:
        """Add an instance to the primary map and the secondary indexes."""
        self._instances[instance.id] = instance
        self._creation_order[instance.id] = rank
        self._by_state[instance.state][instance.id] = None
        if instance.business_key is not None:
            self._by_business_key.setdefault(instance.business_key, {})[
                instance.id
            ] = None

    def _set_instance_state(
        self, instance: ProcessInstance, state: InstanceState
    ) -> None:
        """The single place instance state changes: keeps the index exact."""
        old = instance.state
        if old is state:
            return
        self._by_state[old].pop(instance.id, None)
        instance.state = state
        self._by_state[state][instance.id] = None

    def _in_creation_order(self, instance_ids) -> list[ProcessInstance]:
        order = self._creation_order
        return [
            self._instances[instance_id]
            for instance_id in sorted(instance_ids, key=lambda i: order.get(i, 0))
        ]

    def instance(self, instance_id: str) -> ProcessInstance:
        """Look up an instance; raises :class:`InstanceNotFoundError`."""
        try:
            return self._instances[instance_id]
        except KeyError:
            raise InstanceNotFoundError(f"unknown instance {instance_id!r}") from None

    def instances(self, state: InstanceState | None = None) -> list[ProcessInstance]:
        """All instances (optionally filtered by state), in creation order."""
        if state is None:
            return list(self._instances.values())
        return self._in_creation_order(self._by_state[state])

    def find_instances(
        self,
        state: InstanceState | None = None,
        definition_key: str | None = None,
        business_key: str | None = None,
        where: dict[str, Any] | None = None,
        waiting_at: str | None = None,
    ) -> list[ProcessInstance]:
        """Query instances by state, definition, business key, variable
        equality (``where``), and/or the node a token is parked at.

        Backed by the secondary indexes: a ``business_key`` or ``state``
        filter narrows to the matching index bucket instead of scanning
        every instance; the remaining predicates apply to that bucket.

        >>> # engine.find_instances(business_key="ORD-7",
        >>> #                       where={"priority": "high"})
        """
        if business_key is not None:
            candidates = self._in_creation_order(
                self._by_business_key.get(business_key, ())
            )
        elif state is not None:
            candidates = self._in_creation_order(self._by_state[state])
        else:
            candidates = list(self._instances.values())
        results = []
        for instance in candidates:
            if state is not None and instance.state is not state:
                continue
            if (
                definition_key is not None
                and instance.definition_key != definition_key
            ):
                continue
            if where is not None and any(
                instance.variables.get(name) != value
                for name, value in where.items()
            ):
                continue
            if waiting_at is not None and not any(
                t.node_id == waiting_at for t in instance.tokens
            ):
                continue
            results.append(instance)
        return results

    # -- instance lifecycle transitions -----------------------------------------

    def _finish_instance_span(self, instance: ProcessInstance, status: str) -> None:
        span = self._instance_spans.pop(instance.id, None)
        if span is not None:
            span.attributes["state"] = instance.state.value
            span.finish(status)

    def _complete_instance(self, instance: ProcessInstance) -> None:
        self.metrics.instances_completed += 1
        self._set_instance_state(instance, InstanceState.COMPLETED)
        instance.ended_at = self.clock.now()
        self._record(instance, EventTypes.INSTANCE_COMPLETED)
        self._finish_instance_span(instance, "ok")
        self._dirty.add(instance.id)
        self._notify_parent(instance)

    def _terminate_instance(self, instance: ProcessInstance, reason: str) -> None:
        self.metrics.instances_terminated += 1
        self._set_instance_state(instance, InstanceState.TERMINATED)
        instance.ended_at = self.clock.now()
        self._record(instance, EventTypes.INSTANCE_TERMINATED, reason=reason)
        self._finish_instance_span(instance, "ok")
        self._dirty.add(instance.id)
        self._notify_parent(instance)

    def _terminate_instance_internal(
        self, instance: ProcessInstance, reason: str
    ) -> None:
        for token in list(instance.tokens):
            core.cancel_token(self, instance, token, reason=reason)
        self._terminate_instance(instance, reason)

    def _fail_instance(self, instance: ProcessInstance, reason: str) -> None:
        self.metrics.instances_failed += 1
        self._set_instance_state(instance, InstanceState.FAILED)
        instance.ended_at = self.clock.now()
        instance.failure = reason
        self._record(instance, EventTypes.INSTANCE_FAILED, reason=reason)
        self._finish_instance_span(instance, "error")
        self._dirty.add(instance.id)
        self._notify_parent(instance, failed=True)

    def _notify_parent(self, child: ProcessInstance, failed: bool = False) -> None:
        """Resume the parent token waiting on a finished child instance."""
        if child.parent_instance_id is None:
            return
        parent = self._instances.get(child.parent_instance_id)
        if parent is None or parent.state.is_finished:
            return
        token = parent.token(child.parent_token_id)
        if token is None:
            return
        reason = token.waiting_on.get("reason")
        if reason == "mi":
            definition = self._definition_of(parent)
            node = definition.node(token.node_id)
            on_mi_child_finished(self, parent, definition, token, node, child, failed)
            return
        if reason != "child":
            return
        definition = self._definition_of(parent)
        node = definition.node(token.node_id)
        core.cancel_boundary_jobs(self, parent, token)
        if failed:
            token.waiting_on = {}
            core.handle_error(
                self,
                parent,
                definition,
                token,
                core.TECHNICAL_ERROR_CODE,
                f"child instance {child.id!r} failed: {child.failure}",
            )
            core.advance(self, parent)
            return
        # map child outputs into parent variables
        from repro.expr import ExpressionError, compile_expression

        mappings = getattr(node, "output_mappings", {})
        try:
            if mappings:
                for name, expr in mappings.items():
                    parent.variables[name] = compile_expression(expr).evaluate(
                        child.variables
                    )
            else:
                parent.variables.update(child.variables)
        except ExpressionError as exc:
            token.waiting_on = {}
            core.handle_error(
                self, parent, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
            )
            core.advance(self, parent)
            return
        self._record(
            parent,
            EventTypes.NODE_COMPLETED,
            node_id=node.id,
            is_activity=True,
            child_id=child.id,
        )
        flow = core.single_outgoing(definition, node)
        token.resume(flow.target, arrived_via=flow.id)
        core.advance(self, parent)

    def terminate_instance(
        self,
        instance_id: str,
        reason: str = "user request",
        dedup_key: str | None = None,
    ) -> None:
        """Administratively cancel a running instance."""
        self.dispatch(
            cmds.TerminateInstance(
                instance_id=instance_id, reason=reason, dedup_key=dedup_key
            )
        )

    def _handle_terminate_instance(self, cmd: cmds.TerminateInstance) -> None:
        instance = self.instance(cmd.instance_id)
        if instance.state.is_finished:
            raise IllegalInstanceStateError(
                f"instance {cmd.instance_id!r} already {instance.state.value}"
            )
        self._terminate_instance_internal(instance, cmd.reason)

    def compensate_instance(
        self, instance_id: str, dedup_key: str | None = None
    ) -> dict[str, Any]:
        """Run the instance's compensation handlers in reverse order (saga)."""
        result = self.dispatch(
            cmds.CompensateInstance(instance_id=instance_id, dedup_key=dedup_key)
        )
        return result  # type: ignore[no-any-return]

    def _handle_compensate_instance(
        self, cmd: cmds.CompensateInstance
    ) -> dict[str, Any]:
        from repro.engine.executors.compensation import run_compensation

        instance = self.instance(cmd.instance_id)
        if instance.state is InstanceState.RUNNING:
            raise IllegalInstanceStateError(
                f"cannot compensate running instance {cmd.instance_id!r}; "
                "terminate or let it finish first"
            )
        definition = self._definition_of(instance)
        compensated = run_compensation(self, instance, definition)
        self._c_compensations.inc(len(compensated))
        return {
            "instance_id": instance.id,
            "compensated": compensated,
            "pending": len(instance.compensations),
        }

    def suspend_instance(self, instance_id: str, dedup_key: str | None = None) -> None:
        """Pause an instance: waiting triggers are deferred until resume."""
        self.dispatch(
            cmds.SuspendInstance(instance_id=instance_id, dedup_key=dedup_key)
        )

    def _handle_suspend_instance(self, cmd: cmds.SuspendInstance) -> None:
        instance = self.instance(cmd.instance_id)
        if instance.state is not InstanceState.RUNNING:
            raise IllegalInstanceStateError(
                f"cannot suspend instance in state {instance.state.value}"
            )
        self._set_instance_state(instance, InstanceState.SUSPENDED)
        self._record(instance, EventTypes.INSTANCE_SUSPENDED)
        self._dirty.add(instance.id)

    def resume_instance(self, instance_id: str, dedup_key: str | None = None) -> None:
        """Resume a suspended instance and advance it."""
        self.dispatch(
            cmds.ResumeInstance(instance_id=instance_id, dedup_key=dedup_key)
        )

    def _handle_resume_instance(self, cmd: cmds.ResumeInstance) -> None:
        instance = self.instance(cmd.instance_id)
        if instance.state is not InstanceState.SUSPENDED:
            raise IllegalInstanceStateError(
                f"cannot resume instance in state {instance.state.value}"
            )
        self._set_instance_state(instance, InstanceState.RUNNING)
        self._record(instance, EventTypes.INSTANCE_RESUMED)
        self._dirty.add(instance.id)
        core.advance(self, instance)
        self._redeliver_retained(instance)

    # -- work items -------------------------------------------------------------

    def claim_work_item(
        self, item_id: str, resource_id: str, dedup_key: str | None = None
    ) -> WorkItem:
        """A resource pulls an offered item from its role queue."""
        return self.dispatch(
            cmds.ClaimWorkItem(
                item_id=item_id, resource_id=resource_id, dedup_key=dedup_key
            )
        )

    def _handle_claim_work_item(self, cmd: cmds.ClaimWorkItem) -> WorkItem:
        return self.worklist.claim(cmd.item_id, cmd.resource_id)

    def start_work_item(self, item_id: str, dedup_key: str | None = None) -> WorkItem:
        """The allocated resource begins work on an item."""
        return self.dispatch(cmds.StartWorkItem(item_id=item_id, dedup_key=dedup_key))

    def _handle_start_work_item(self, cmd: cmds.StartWorkItem) -> WorkItem:
        return self.worklist.start(cmd.item_id)

    def complete_work_item(
        self,
        item_id: str,
        result: dict[str, Any] | None = None,
        dedup_key: str | None = None,
    ) -> WorkItem:
        """Complete a started work item; the owning token advances."""
        return self.dispatch(
            cmds.CompleteWorkItem(
                item_id=item_id, result=dict(result or {}), dedup_key=dedup_key
            )
        )

    def _handle_complete_work_item(self, cmd: cmds.CompleteWorkItem) -> WorkItem:
        return self.worklist.complete(cmd.item_id, dict(cmd.result))

    def _on_work_item_completed(self, item: WorkItem) -> None:
        instance = self._instances.get(item.instance_id)
        if instance is None or instance.state.is_finished:
            return
        token = instance.token(item.data.get("token_id"))
        if token is None or token.waiting_on.get("work_item_id") != item.id:
            return
        definition = self._definition_of(instance)
        node = definition.node(token.node_id)
        core.cancel_boundary_jobs(self, instance, token)
        if item.result:
            instance.variables.update(item.result)
            self._record(
                instance,
                EventTypes.VARIABLES_UPDATED,
                node_id=node.id,
                keys=sorted(item.result.keys()),
            )
        self._record(
            instance,
            EventTypes.NODE_COMPLETED,
            node_id=node.id,
            is_activity=True,
            resource=item.allocated_to,
        )
        core.record_compensation(self, instance, node)
        flow = core.single_outgoing(definition, node)
        token.resume(flow.target, arrived_via=flow.id)
        if instance.state is InstanceState.RUNNING:
            core.advance(self, instance)
        else:
            self._dirty.add(instance.id)

    # -- timers ------------------------------------------------------------------

    def run_due_jobs(self) -> int:
        """Fire every due job; returns the number processed.

        Jobs whose instance is suspended are *deferred* (re-queued with
        their original due time) so they fire after the instance resumes.
        Jobs whose instance no longer exists are dropped — counted under
        ``engine.jobs.orphaned``, not in the returned total.
        """
        return self.dispatch(cmds.RunDueJobs())

    def _handle_run_due_jobs(self, cmd: cmds.RunDueJobs) -> int:
        processed = 0
        deferred: list = []
        while True:
            due = self.scheduler.due_jobs(self.clock.now())
            if not due:
                break
            for job in due:
                instance = self._instances.get(job.instance_id)
                if instance is None:
                    self._c_jobs_orphaned.inc()
                    continue
                if instance.state is InstanceState.SUSPENDED:
                    deferred.append(job)
                    continue
                processed += 1
                self._dispatch_job(job)
        for job in deferred:
            self.scheduler.schedule(
                job.due, job.kind, job.instance_id, job.data, job_id=job.id
            )
        self.worklist.check_deadlines()
        self._g_queue_depth.set(len(self.scheduler))
        return processed

    def advance_time(self, seconds: float) -> int:
        """Advance a virtual clock and fire everything that became due."""
        return self.dispatch(cmds.AdvanceTime(seconds=seconds))

    def _handle_advance_time(self, cmd: cmds.AdvanceTime) -> int:
        if not isinstance(self.clock, VirtualClock):
            raise EngineError("advance_time requires a VirtualClock")
        self.clock.advance(cmd.seconds)
        # nested dispatch: re-enters the serialization gate (re-entrant
        # lock) and logs at depth 2 — replay tooling skips nested entries
        return self.dispatch(cmds.RunDueJobs())

    def _dispatch_job(self, job) -> None:
        instance = self._instances.get(job.instance_id)
        if instance is None or instance.state is not InstanceState.RUNNING:
            return
        definition = self._definition_of(instance)
        token = instance.token(job.data.get("token_id"))
        if token is None:
            return
        if job.kind == "timer":
            if token.waiting_on.get("job_id") != job.id:
                return
            node = definition.node(job.data["node_id"])
            self.metrics.timers_fired += 1
            self._record(
                instance, EventTypes.TIMER_FIRED, node_id=node.id, job_id=job.id
            )
            token.waiting_on = {}
            core.move_through(
                self, instance, definition, token, node, is_activity=False
            )
            core.advance(self, instance)
        elif job.kind == "boundary_timer":
            boundary = definition.node(job.data["boundary_id"])
            if token.node_id != boundary.attached_to:
                return  # the activity already finished; stale job
            self.metrics.timers_fired += 1
            self._record(
                instance, EventTypes.TIMER_FIRED, node_id=boundary.id, job_id=job.id
            )
            core.trigger_boundary(
                self, instance, definition, boundary, token, detail="boundary timer"
            )
            core.advance(self, instance)
        elif job.kind == "async_service":
            if token.waiting_on.get("job_id") != job.id:
                return
            node = definition.node(job.data["node_id"])
            token.waiting_on = {}
            perform_service_invocation(self, instance, definition, token, node)
            core.advance(self, instance)
        elif job.kind == "event_race_timer":
            if token.waiting_on.get("reason") != "event_race":
                return
            event = definition.node(job.data["event_id"])
            core.settle_race(self, instance, token)
            self.metrics.timers_fired += 1
            self._record(
                instance, EventTypes.TIMER_FIRED, node_id=event.id, job_id=job.id
            )
            core.enter(self, instance, event, is_activity=False)
            core.move_through(
                self, instance, definition, token, event, is_activity=False
            )
            core.advance(self, instance)
        else:
            raise EngineError(f"unknown job kind {job.kind!r}")

    # -- messages ----------------------------------------------------------------

    def correlate_message(
        self,
        name: str,
        correlation: Any = None,
        payload: dict[str, Any] | None = None,
        dedup_key: str | None = None,
    ) -> Message:
        """Publish a message into the engine's bus (external entry point).

        If a waiting catch matches it is delivered immediately; otherwise
        the message is retained for a future receiver.
        """
        return self.dispatch(
            cmds.CorrelateMessage(
                message_name=name,
                correlation=correlation,
                payload=dict(payload or {}),
                dedup_key=dedup_key,
            )
        )

    def _handle_correlate_message(self, cmd: cmds.CorrelateMessage) -> Message:
        return self.bus.publish(
            cmd.message_name, correlation=cmd.correlation, payload=dict(cmd.payload)
        )

    def message_delivery_probe(self, name: str, correlation: Any = None) -> str:
        """What a publish of (name, correlation) would do on this engine.

        Returns ``"deliver"`` (a running wait matches and would consume it
        now), ``"wait"`` (only a suspended instance subscribes — the
        message should be retained *here* for redelivery on resume), or
        ``"none"``.  Read-only: mirrors :meth:`_on_bus_message` matching
        without its dead-wait cleanup, so the cluster router can pick the
        target shard before publishing anywhere.
        """
        best = "none"
        for wait in self._message_waits:
            if wait["name"] != name:
                continue
            if (
                not wait.get("match_any")
                and wait.get("correlation") != correlation
            ):
                continue
            instance = self._instances.get(wait["instance_id"])
            if instance is None or instance.state.is_finished:
                continue
            if instance.state is not InstanceState.RUNNING:
                best = "wait"
                continue
            token = instance.token(wait["token_id"])
            if token is None or token.state is not TokenState.WAITING:
                continue
            return "deliver"
        return best

    def _on_bus_message(self, message: Message) -> bool:
        for wait in list(self._message_waits):
            if wait["name"] != message.name:
                continue
            if (
                not wait.get("match_any")
                and wait.get("correlation") != message.correlation
            ):
                continue
            instance = self._instances.get(wait["instance_id"])
            if instance is None or instance.state.is_finished:
                self._message_waits.remove(wait)
                self._waits_dirty = True
                continue
            if instance.state is not InstanceState.RUNNING:
                # suspended: keep the subscription, let the message be
                # retained for delivery after resume
                continue
            token = instance.token(wait["token_id"])
            if token is None or token.state is not TokenState.WAITING:
                self._message_waits.remove(wait)
                self._waits_dirty = True
                continue
            self._deliver_to_wait(instance, token, wait, message.payload)
            return True
        return False

    def _deliver_to_wait(
        self,
        instance: ProcessInstance,
        token,
        wait: dict[str, Any],
        payload: dict[str, Any],
    ) -> None:
        definition = self._definition_of(instance)
        self.metrics.messages_delivered += 1
        if "race_event" in wait:
            core.deliver_race_message(self, instance, definition, token, wait, payload)
        else:
            self._message_waits.remove(wait)
            self._waits_dirty = True
            node = definition.node(wait["node_id"])
            core.apply_message(self, instance, node, payload)
            token.waiting_on = {}
            core.move_through(
                self,
                instance,
                definition,
                token,
                node,
                is_activity=wait.get("is_activity", True),
            )
            core.advance(self, instance)

    def _redeliver_retained(self, instance: ProcessInstance) -> None:
        """Match bus-retained messages against this instance's waits
        (used after resume, when deliveries were deferred)."""
        for wait in [
            w for w in self._message_waits if w["instance_id"] == instance.id
        ]:
            token = instance.token(wait["token_id"])
            if token is None or token.state is not TokenState.WAITING:
                continue
            message = self.bus.consume_retained(
                wait["name"], wait.get("correlation"), wait.get("match_any", False)
            )
            if message is not None:
                self._deliver_to_wait(instance, token, wait, message.payload)

    # -- migration ---------------------------------------------------------------

    def migrate_instance(
        self,
        instance_id: str,
        target_version: int,
        plan: MigrationPlan | None = None,
        dedup_key: str | None = None,
    ) -> ProcessInstance:
        """Move a running instance to another deployed version.

        See :mod:`repro.engine.migration` for the compatibility rules.
        """
        return self.dispatch(
            cmds.MigrateInstance(
                instance_id=instance_id,
                target_version=target_version,
                node_mapping=dict(plan.node_mapping) if plan is not None else {},
                dedup_key=dedup_key,
            )
        )

    def _handle_migrate_instance(self, cmd: cmds.MigrateInstance) -> ProcessInstance:
        instance = self.instance(cmd.instance_id)
        target = self.definition(instance.definition_key, cmd.target_version)
        apply_migration(self, instance, target, MigrationPlan(dict(cmd.node_mapping)))
        self.metrics.migrations += 1
        self._record(
            instance,
            EventTypes.INSTANCE_MIGRATED,
            to_version=cmd.target_version,
        )
        core.advance(self, instance)
        return instance

    # -- asynchronous service execution (repro.workers) ---------------------------

    def attach_workers(self, pool: Any) -> None:
        """Attach a :class:`~repro.workers.WorkerPool` to this engine.

        From here on, service tasks the pool admits are *enqueued* instead
        of invoked inline (see ``execute_service_task``).  Any pending
        invocations already recovered from the store are submitted now.
        """
        if self.workers is not None and self.workers is not pool:
            raise EngineError("engine already has a worker pool attached")
        self.workers = pool
        pool.bind(self)
        if self._invocations_to_submit:
            self._submit_pending_invocations()

    def _submit_pending_invocations(self) -> None:
        """Hand durably committed invocation records to the pool."""
        pending, self._invocations_to_submit = self._invocations_to_submit, []
        for invocation_id in pending:
            record = self._invocations.get(invocation_id)
            if record is not None:
                self.workers.submit(self, record)

    def _enqueue_invocation(
        self, instance: ProcessInstance, token, node, arguments: dict[str, Any]
    ) -> Any:
        """Register a pending invocation and park the token on it.

        The record is persisted by the surrounding dispatch's group commit
        and submitted to the pool only after that commit (see
        :meth:`_flush`) — at-least-once from the moment the client call
        returns.
        """
        from repro.workers.records import InvocationRecord  # cycle guard

        self._invocation_seq += 1
        invocation_id = f"inv-{self._id_ns}{self._invocation_seq}"
        record = InvocationRecord.for_node(
            invocation_id,
            instance.id,
            token.id,
            node,
            arguments,
            enqueued_at=self.clock.now(),
        )
        self._invocations[invocation_id] = record
        self._invocations_dirty.add(invocation_id)
        self._invocations_removed.discard(invocation_id)
        self._invocations_to_submit.append(invocation_id)
        self._inv_enqueued[node.service] = (
            self._inv_enqueued.get(node.service, 0) + 1
        )
        self._c_inv_enqueued.inc()
        token.wait("service", invocation_id=invocation_id, node_id=node.id)
        self._record(
            instance,
            EventTypes.SERVICE_ENQUEUED,
            node_id=node.id,
            service=node.service,
            invocation_id=invocation_id,
        )
        self._dirty.add(instance.id)
        return record

    def _take_invocation(self, invocation_id: str) -> Any:
        """Resolve a pending record (its deletion joins the next commit)."""
        record = self._invocations.pop(invocation_id, None)
        if record is not None:
            self._invocations_dirty.discard(invocation_id)
            self._invocations_removed.add(invocation_id)
            try:
                self._invocations_to_submit.remove(invocation_id)
            except ValueError:
                pass
        return record

    def _count_completed(self, service: str) -> None:
        self._inv_completed[service] = self._inv_completed.get(service, 0) + 1
        self._c_inv_completed.inc()

    def _drop_invocation(self, invocation_id: str) -> None:
        """Cancel a pending invocation (token released — boundary timer,
        terminate, migration).  A pool execution already in flight turns
        into a stale completion, absorbed as a duplicate."""
        record = self._take_invocation(invocation_id)
        if record is None:
            return
        self._count_completed(record.service)
        self._c_inv_cancelled.inc()

    # -- cross-shard forwarding outbox (repro.cluster) ---------------------------

    def enqueue_outbox_forward(self, message: Message) -> Any:
        """Record a claimed cross-shard forward in this shard's outbox.

        Called by the cluster forwarder *inside* the originating dispatch
        (under this shard's lock), so the record joins the same group
        commit as the publish that produced the message — the forward
        intent is durable before the originating call returns.
        """
        from repro.cluster.outbox import OutboxRecord  # cycle guard

        self._outbox_seq += 1
        record = OutboxRecord(
            seq=self._outbox_seq,
            origin=self.shard_tag,
            name=message.name,
            correlation=message.correlation,
            payload=dict(message.payload),
            created_at=self.clock.now(),
        )
        self._outbox[record.seq] = record
        self._outbox_dirty.add(record.seq)
        self._outbox_removed.discard(record.seq)
        return record

    def outbox_records(self) -> list[Any]:
        """Undrained outbox records, oldest (lowest seq) first."""
        return [self._outbox[seq] for seq in sorted(self._outbox)]

    def remove_outbox_record(self, seq: int) -> None:
        """Delete a drained record (joins the next commit on this shard).

        Only called after the *target* shard's delivery dispatch flushed:
        a crash between that flush and this deletion re-delivers, and the
        target's dedup window absorbs the duplicate.
        """
        if self._outbox.pop(seq, None) is not None:
            self._outbox_dirty.discard(seq)
            self._outbox_removed.add(seq)

    def _handle_complete_invocation(
        self, cmd: cmds.CompleteServiceInvocation
    ) -> dict[str, Any]:
        """Apply one pooled invocation outcome, exactly once.

        The pending table is the intrinsic idempotency check: a completion
        whose record is already resolved (pool retry after crash, client
        duplicate, post-cancellation straggler) is a recorded no-op.
        """
        record = self._take_invocation(cmd.invocation_id)
        if record is None:
            self._c_inv_duplicates.inc()
            return {"invocation_id": cmd.invocation_id, "status": "duplicate"}
        instance = self._instances.get(record.instance_id)
        token = (
            instance.token(record.token_id)
            if instance is not None and not instance.state.is_finished
            else None
        )
        live = (
            token is not None
            and token.waiting_on.get("reason") == "service"
            and token.waiting_on.get("invocation_id") == cmd.invocation_id
        )
        definition = self._definition_of(instance) if live else None
        node = definition.nodes.get(record.node_id) if live else None
        if cmd.outcome == "failure" and live and node is not None:
            # poison invocation: retries exhausted — park it in the DLQ
            # with the token still waiting, so an operator requeue (or a
            # boundary timer on the activity) can still resolve the token
            raw = record.to_dict()
            raw["error"] = cmd.error
            raw["attempts"] = cmd.attempts
            raw["failed_at"] = self.clock.now()
            self._dead_letters[record.id] = raw
            self._dead_letters_dirty.add(record.id)
            self._dead_letters_removed.discard(record.id)
            self._g_dead_letters.inc()
            self._record(
                instance,
                EventTypes.SERVICE_FAILED,
                node_id=node.id,
                service=record.service,
                attempts=cmd.attempts,
                error=cmd.error,
            )
            self._record(
                instance,
                EventTypes.SERVICE_DEAD_LETTERED,
                node_id=node.id,
                service=record.service,
                invocation_id=record.id,
                error=cmd.error,
            )
            self.obs.event(
                "workers.dead_letter",
                service=record.service,
                invocation_id=record.id,
                error=cmd.error,
            )
            self._dirty.add(instance.id)
            return {"invocation_id": record.id, "status": "dead_lettered"}
        if not live or node is None:
            # the token moved on (cancelled, boundary-routed, migrated) or
            # the instance finished: the outcome has nowhere to land
            self._count_completed(record.service)
            return {"invocation_id": record.id, "status": "orphaned"}
        self._count_completed(record.service)
        self._record(
            instance,
            EventTypes.SERVICE_INVOKED,
            node_id=node.id,
            service=record.service,
            invocation_id=record.id,
        )
        core.cancel_boundary_jobs(self, instance, token)
        token.waiting_on = {}
        if cmd.outcome == "bpmn_error":
            code = cmd.error_code or core.TECHNICAL_ERROR_CODE
            self._record(
                instance,
                EventTypes.ERROR_RAISED,
                node_id=node.id,
                code=code,
                message=cmd.error,
            )
            core.handle_error(
                self, instance, definition, token, code, cmd.error or ""
            )
            core.advance(self, instance)
            self._dirty.add(instance.id)
            return {"invocation_id": record.id, "status": "error_routed"}
        if cmd.outcome == "failure":
            # unreachable for live tokens (handled above) except when the
            # node vanished mid-flight; kept as a defensive technical error
            core.handle_error(
                self,
                instance,
                definition,
                token,
                core.TECHNICAL_ERROR_CODE,
                cmd.error or "service failed",
            )
            core.advance(self, instance)
            self._dirty.add(instance.id)
            return {"invocation_id": record.id, "status": "failed"}
        if node.output_variable is not None:
            instance.variables[node.output_variable] = cmd.value
            self._record(
                instance,
                EventTypes.VARIABLES_UPDATED,
                node_id=node.id,
                keys=[node.output_variable],
            )
        core.move_through(
            self, instance, definition, token, node, is_activity=True,
            attempts=cmd.attempts,
        )
        core.advance(self, instance)
        self._dirty.add(instance.id)
        return {"invocation_id": record.id, "status": "completed"}

    def _handle_requeue_dead_letter(
        self, cmd: cmds.RequeueDeadLetter
    ) -> dict[str, Any]:
        from repro.workers.records import InvocationRecord  # cycle guard

        raw = self._dead_letters.pop(cmd.invocation_id, None)
        if raw is None:
            raise EngineError(
                f"no dead-lettered invocation {cmd.invocation_id!r}"
            )
        self._dead_letters_dirty.discard(cmd.invocation_id)
        self._dead_letters_removed.add(cmd.invocation_id)
        self._g_dead_letters.dec()
        record = InvocationRecord.from_dict(raw)
        record.requeues += 1
        self._invocations[record.id] = record
        self._invocations_dirty.add(record.id)
        self._invocations_removed.discard(record.id)
        self._invocations_to_submit.append(record.id)
        self._c_inv_requeued.inc()
        instance = self._instances.get(record.instance_id)
        if instance is not None:
            self._record(
                instance,
                EventTypes.SERVICE_REQUEUED,
                node_id=record.node_id,
                service=record.service,
                invocation_id=record.id,
                requeues=record.requeues,
            )
        self.obs.event(
            "workers.requeue",
            service=record.service,
            invocation_id=record.id,
            requeues=record.requeues,
        )
        return {
            "invocation_id": record.id,
            "status": "requeued",
            "requeues": record.requeues,
        }

    def requeue_dead_letter(
        self, invocation_id: str, dedup_key: str | None = None
    ) -> dict[str, Any]:
        """Move a dead-lettered invocation back onto its service queue."""
        return self.dispatch(
            cmds.RequeueDeadLetter(
                invocation_id=invocation_id, dedup_key=dedup_key
            )
        )

    def dead_letters(self) -> list[dict[str, Any]]:
        """Dead-lettered invocations, oldest first (``repro dlq list``)."""
        return sorted(
            (dict(raw) for raw in self._dead_letters.values()),
            key=lambda raw: (raw.get("failed_at", 0.0), raw.get("id", "")),
        )

    def workers_status(self) -> dict[str, dict[str, int]]:
        """Per-service invocation accounting.

        For every service, ``enqueued == completed + pending +
        dead_lettered`` — the conservation invariant the property tests
        check after arbitrary completion/requeue/duplicate interleavings.
        """
        per_service: dict[str, dict[str, int]] = {}

        def slot(service: str) -> dict[str, int]:
            return per_service.setdefault(
                service,
                {"enqueued": 0, "completed": 0, "pending": 0, "dead_lettered": 0},
            )

        for service, count in self._inv_enqueued.items():
            slot(service)["enqueued"] = count
        for service, count in self._inv_completed.items():
            slot(service)["completed"] = count
        for record in self._invocations.values():
            slot(record.service)["pending"] += 1
        for raw in self._dead_letters.values():
            slot(raw.get("service", ""))["dead_lettered"] += 1
        return per_service

    # -- persistence & recovery ---------------------------------------------------

    def batch(self) -> "_EngineBatch":
        """Context manager deferring all flushes to one group commit.

        Inside the block every public API call mutates memory but skips
        persistence; the outermost exit performs a single
        :meth:`_flush` — one store transaction, one journal sync — no
        matter how many calls ran.  Re-entrant (nested batches commit once,
        at the outermost exit).  On an exception the accumulated state is
        still flushed: the in-memory mutations already happened and memory
        is the source of truth.

        >>> # with engine.batch():
        >>> #     for item in engine.worklist.items():
        >>> #         engine.complete_work_item(item.id)
        """
        return _EngineBatch(self)

    def flush(self) -> None:
        """Force-persist all pending dirty state now, whatever the policy."""
        self._flush(force=True)

    def has_pending_writes(self) -> bool:
        """Whether a forced flush would persist anything beyond outbox GC
        tombstones.

        A lock-free peek for the cluster's delivery fence: before the
        origin may forget a forwarded message, the target's delivery must
        be durable.  When the delivering thread sees nothing pending here
        its own delivery has committed, so it can skip taking the target's
        dispatch lock for a no-op flush.  Tombstones (``_outbox_removed``)
        are excluded on purpose — they never need fencing, because a
        record that outlives its delivery is absorbed by dedup on
        redelivery.  Racing writers can only make this spuriously True
        (an extra no-op flush), never hide the caller's own writes.
        """
        dirty_jobs, removed_jobs = self.scheduler.pending_changes()
        return bool(
            self._dirty
            or dirty_jobs
            or removed_jobs
            or self.worklist.dirty_item_ids()
            or self._dispatch_dirty
            or self._dispatch_removed
            or self._invocations_dirty
            or self._invocations_removed
            or self._dead_letters_dirty
            or self._dead_letters_removed
            or self._outbox_dirty
            or self._waits_dirty
            or self._instance_seq != self._persisted_seq
            or self._invocation_seq != self._persisted_invocation_seq
            or self._outbox_seq != self._persisted_outbox_seq
        )

    def _flush(self, force: bool = False) -> None:
        """Persist the differential write-set in one transaction.

        Per-record layout: dirty instances to ``instance/<id>``, changed
        jobs to ``jobs/<id>`` (fired/cancelled ones deleted), changed work
        items to ``workitem/<id>``, new dispatch-log entries to
        ``dispatch/<seq>`` (pruned ones deleted); ``engine/message_waits``
        and ``engine/meta`` only when they actually changed.  Writes
        nothing — not even an empty transaction — when nothing is dirty.
        Honours the commit policy: inside :meth:`batch` or below
        ``commit_interval`` pending records the flush is deferred (unless
        ``force``).
        """
        if self._batch_depth > 0 and not force:
            return
        dirty_jobs, removed_jobs = self.scheduler.pending_changes()
        dirty_items = self.worklist.dirty_item_ids()
        meta_dirty = (
            self._instance_seq != self._persisted_seq
            or self._invocation_seq != self._persisted_invocation_seq
            or self._outbox_seq != self._persisted_outbox_seq
        )
        # an id both re-added (requeue) and previously removed in the same
        # window persists — the dirty write wins over the stale delete
        removed_invocations = self._invocations_removed - self._invocations_dirty
        removed_dead = self._dead_letters_removed - self._dead_letters_dirty
        removed_outbox = self._outbox_removed - self._outbox_dirty
        records = (
            len(self._dirty)
            + len(dirty_jobs)
            + len(removed_jobs)
            + len(dirty_items)
            + len(self._dispatch_dirty)
            + len(self._dispatch_removed)
            + len(self._invocations_dirty)
            + len(removed_invocations)
            + len(self._dead_letters_dirty)
            + len(removed_dead)
            + len(self._outbox_dirty)
            + len(removed_outbox)
            + (1 if self._waits_dirty else 0)
            + (1 if meta_dirty else 0)
        )
        views_relevant = self.views is not None and bool(
            self._dirty or dirty_items or self.views.has_pending()
        )
        if records == 0 and not (force and views_relevant):
            # read-only call: zero store writes, zero syncs (a *forced*
            # flush still drains write-behind view dirt noted earlier)
            return
        if not force and records < self._commit_interval:
            return  # defer until the record-count policy is met
        # read-model maintenance is write-behind: flushes carrying dirty
        # instances or work items note the ids (two set unions), and the
        # view records join a commit transaction only when forced (an
        # explicit flush / batch exit — the group-commit boundary) or
        # when the persisted image has lagged `views_flush_lag` seqs.
        # The lag stays strictly inside the retained dispatch-log tail,
        # so a crash between drains recovers by touched-id tail replay.
        view_writes: dict[str, Any] = {}
        if views_relevant:
            views = self.views
            # ``views.note_flush(self, seq, dirty_items)`` inlined: this
            # runs once per autocommitted dispatch, and the call frame is
            # measurable against the F15 <10% maintenance gate
            views._pending_instances.update(self._dirty)
            views._pending_items.update(dirty_items)
            views._source = self
            views._noted_seq = self._dispatch_seq
            if force or (
                self._dispatch_seq - views.persisted_seq
                >= self._views_flush_lag
            ):
                view_writes = views.drain(self, self._dispatch_seq)
                records += len(view_writes)
        span = (
            self._tracer.start_span(
                "engine.flush", parent=self._engine_span, records=records
            )
            if self.obs.enabled
            else None
        )
        with self.store.transaction():
            for instance_id in sorted(self._dirty):
                instance = self._instances.get(instance_id)
                if instance is not None:
                    self.store.put(f"instance/{instance_id}", instance.to_dict())
            for job_id in dirty_jobs:
                job = self.scheduler.get(job_id)
                if job is not None:
                    self.store.put(f"jobs/{job_id}", job.to_dict())
            for job_id in removed_jobs:
                self.store.delete(f"jobs/{job_id}")
            for item_id in dirty_items:
                self.store.put(
                    f"workitem/{item_id}", self.worklist.item(item_id).to_dict()
                )
            if self._dispatch_dirty:
                # the log holds contiguous seqs (appended +1, pruned from
                # the front), so a dirty seq is found by offset, not scan
                log = self._dispatch_log
                base = log[0]["seq"] if log else 0
                for seq in sorted(self._dispatch_dirty):
                    index = seq - base
                    if 0 <= index < len(log):
                        self.store.put(f"dispatch/{seq:010d}", log[index])
            for seq in sorted(self._dispatch_removed):
                self.store.delete(f"dispatch/{seq:010d}")
            for invocation_id in sorted(self._invocations_dirty):
                record = self._invocations.get(invocation_id)
                if record is not None:
                    self.store.put(
                        f"invocation/{invocation_id}", record.to_dict()
                    )
            for invocation_id in sorted(removed_invocations):
                self.store.delete(f"invocation/{invocation_id}")
            for invocation_id in sorted(self._dead_letters_dirty):
                raw = self._dead_letters.get(invocation_id)
                if raw is not None:
                    self.store.put(f"dlq/{invocation_id}", raw)
            for invocation_id in sorted(removed_dead):
                self.store.delete(f"dlq/{invocation_id}")
            for outbox_seq in sorted(self._outbox_dirty):
                outbox_record = self._outbox.get(outbox_seq)
                if outbox_record is not None:
                    self.store.put(
                        f"outbox/{outbox_seq:010d}", outbox_record.to_dict()
                    )
            for outbox_seq in sorted(removed_outbox):
                self.store.delete(f"outbox/{outbox_seq:010d}")
            if self._waits_dirty:
                self.store.put("engine/message_waits", list(self._message_waits))
            if meta_dirty:
                self.store.put(
                    "engine/meta",
                    {
                        "instance_seq": self._instance_seq,
                        "invocation_seq": self._invocation_seq,
                        "outbox_seq": self._outbox_seq,
                    },
                )
            for view_key in sorted(view_writes):
                self.store.put(view_key, view_writes[view_key])
        # group-commit boundary for deferred-sync stores (no-op otherwise)
        self.store.sync()
        if self.views is not None:
            if view_writes:
                self.views.confirm()
            # whether this flush drained, deferred (write-behind), or was
            # view-irrelevant (deploy, jobs, log pruning), the image —
            # counting noted ids that reads will materialize — is current
            # through this seq; any persisted-cursor lag is bounded and
            # recovery catches it up by tail replay.  (This is
            # ``views.note_applied`` inlined: one per autocommit dispatch.)
            if self._dispatch_seq > self.views.applied_seq:
                self.views.applied_seq = self._dispatch_seq
        self._dirty.clear()
        self.scheduler.clear_changes()
        self.worklist.clear_dirty()
        self._dispatch_dirty.clear()
        self._dispatch_removed.clear()
        self._invocations_dirty.clear()
        self._invocations_removed.clear()
        self._dead_letters_dirty.clear()
        self._dead_letters_removed.clear()
        self._outbox_dirty.clear()
        self._outbox_removed.clear()
        self._waits_dirty = False
        self._persisted_seq = self._instance_seq
        self._persisted_invocation_seq = self._invocation_seq
        self._persisted_outbox_seq = self._outbox_seq
        self._c_flush_commits.inc()
        self._c_flush_records.inc(records)
        self._h_flush_batch.observe(records)
        if span is not None:
            span.finish()
        # the enqueue→submit ordering contract: invocation records reach
        # the pool only after the commit that made them durable, so a
        # crash can never lose an acknowledged enqueue
        if self._invocations_to_submit and self.workers is not None:
            self._submit_pending_invocations()

    def recover(self) -> dict[str, int]:
        """Rebuild engine state from the backing store after a restart.

        Definitions, instances, pending jobs, work items, message waits,
        and the dispatch log (with its idempotency keys) are restored;
        services and resources must be re-registered by the host
        application (code is not persisted).  Returns counts per category.
        """
        counts = {
            "definitions": 0,
            "instances": 0,
            "jobs": 0,
            "workitems": 0,
            "commands": 0,
            "invocations": 0,
            "dead_letters": 0,
            "outbox": 0,
        }
        self._latest_version = dict(self.store.get("engine/latest_versions", {}))
        for key, raw in self.store.scan("definition/"):
            definition = definition_from_dict(raw)
            self._definitions[definition.identifier] = definition
            counts["definitions"] += 1
        # register in creation-rank order (store keys sort lexically, so
        # "…-10" would otherwise precede "…-2"): _instances iteration —
        # and with it instances(), the cluster merge, and the read-model
        # rebuild — stays creation-ordered after a restart, exactly as in
        # a live engine
        recovered_instances = [
            ProcessInstance.from_dict(raw)
            for _, raw in self.store.scan("instance/")
        ]
        recovered_instances.sort(key=lambda inst: _creation_rank(inst.id))
        for instance in recovered_instances:
            self._register_instance(instance, _creation_rank(instance.id))
            counts["instances"] += 1
        # jobs and work items: read the per-record layout (``jobs/<id>``,
        # ``workitem/<id>``) and, for stores written before the incremental
        # layout, the legacy whole-collection blobs.  Per-record wins on
        # conflict: import_jobs skips ids it already has, import_items
        # overwrites, so ordering below gives per-record precedence.
        legacy_jobs = self.store.get("engine/jobs", None)
        self.scheduler.import_jobs([raw for _, raw in self.store.scan("jobs/")])
        if legacy_jobs:
            self.scheduler.import_jobs(legacy_jobs)
        counts["jobs"] = len(self.scheduler)
        legacy_items = self.store.get("engine/workitems", None)
        if legacy_items:
            self.worklist.import_items(legacy_items)
        self.worklist.import_items([raw for _, raw in self.store.scan("workitem/")])
        counts["workitems"] = len(self.worklist.items())
        self._message_waits = list(self.store.get("engine/message_waits", []))
        meta = self.store.get("engine/meta", {})
        self._instance_seq = max(meta.get("instance_seq", 0), self._instance_seq)
        self._persisted_seq = self._instance_seq
        self._invocation_seq = max(
            meta.get("invocation_seq", 0), self._invocation_seq
        )
        self._persisted_invocation_seq = self._invocation_seq
        self._outbox_seq = max(meta.get("outbox_seq", 0), self._outbox_seq)
        self._persisted_outbox_seq = self._outbox_seq
        # pending invocations: exactly the acknowledged-but-unresolved set
        # at crash time — re-enqueued for (at-least-once) re-execution;
        # the completion path dedupes, so effects stay exactly-once
        from repro.workers.records import InvocationRecord

        for key, raw in self.store.scan("invocation/"):
            record = InvocationRecord.from_dict(raw)
            self._invocations[record.id] = record
            self._invocations_to_submit.append(record.id)
            counts["invocations"] += 1
        for key, raw in self.store.scan("dlq/"):
            self._dead_letters[raw["id"]] = dict(raw)
            self._g_dead_letters.inc()
            counts["dead_letters"] += 1
        # undrained outbox records: exactly the cross-shard forwards that
        # were claimed but not yet confirmed delivered at crash time — the
        # cluster layer re-drains them (redelivery dedupes at the target)
        from repro.cluster.outbox import OutboxRecord  # cycle guard

        for key, raw in self.store.scan("outbox/"):
            outbox_record = OutboxRecord.from_dict(raw)
            self._outbox[outbox_record.seq] = outbox_record
            self._outbox_seq = max(self._outbox_seq, outbox_record.seq)
            counts["outbox"] += 1
        self._persisted_outbox_seq = self._outbox_seq
        # per-service invariant counters restart from the durable state:
        # enqueued := pending + dead_lettered (completions already settled)
        for record in self._invocations.values():
            self._inv_enqueued[record.service] = (
                self._inv_enqueued.get(record.service, 0) + 1
            )
        for raw in self._dead_letters.values():
            service = raw.get("service", "")
            self._inv_enqueued[service] = self._inv_enqueued.get(service, 0) + 1
        # the dispatch log: restores the idempotency window, so a client
        # retrying a dedup-keyed command across the crash still gets the
        # recorded (summarized) result instead of a double apply
        log = sorted(
            (raw for _, raw in self.store.scan("dispatch/")),
            key=lambda r: r.get("seq", 0),
        )
        self._dispatch_log = log[max(0, len(log) - self._dispatch_log_retention):]
        if log:
            self._dispatch_seq = max(self._dispatch_seq, log[-1].get("seq", 0))
        for record in self._dispatch_log:
            key = record.get("dedup_key")
            if key is not None and record.get("status") == "applied":
                self._dedup[key] = {
                    "result": record.get("result"),
                    "seq": record.get("seq", 0),
                }
        counts["commands"] = len(self._dispatch_log)
        # recovery imports are clean, not dirty — only changes made after
        # this point need flushing
        self.scheduler.clear_changes()
        self.worklist.clear_dirty()
        if legacy_jobs is not None or legacy_items is not None:
            self._migrate_legacy_layout()
        # the read models catch up last (they need base state + the log):
        # cursor current → load; log tail covered → replay touched
        # entities; otherwise → full rebuild, persisted before returning
        if self.views is not None:
            self.views.recover(self)
        if self.workers is not None:
            self._submit_pending_invocations()
        return counts

    def _migrate_legacy_layout(self) -> None:
        """Rewrite legacy whole-collection blobs as per-record keys.

        Runs once, at the first :meth:`recover` over a pre-incremental
        store: afterwards the blob keys are gone and every job/work item
        lives under its own key, so later flushes and recoveries never
        consult (or resurrect state from) a stale blob.
        """
        with self.store.transaction():
            for job in self.scheduler.pending():
                self.store.put(f"jobs/{job.id}", job.to_dict())
            for item in self.worklist.items():
                self.store.put(f"workitem/{item.id}", item.to_dict())
            self.store.delete("engine/jobs")
            self.store.delete("engine/workitems")
        self.store.sync()


def _creation_rank(instance_id: str) -> int:
    """Creation order of a recovered instance (ids end in the seq)."""
    tail = instance_id.rsplit("-", 1)[-1]
    return int(tail) if tail.isdigit() else 0


class _EngineBatch:
    """Re-entrant deferral scope returned by :meth:`ProcessEngine.batch`."""

    def __init__(self, engine: ProcessEngine) -> None:
        self._engine = engine

    def __enter__(self) -> ProcessEngine:
        self._engine._batch_depth += 1
        return self._engine

    def __exit__(self, exc_type: type | None, *exc_info: object) -> None:
        self._engine._batch_depth -= 1
        if self._engine._batch_depth == 0:
            # flush even on exception: memory already mutated and is the
            # source of truth; the store must not lag behind it
            self._engine._flush(force=True)
