"""Process instances and tokens: the engine's runtime state.

An instance's control-flow state is a set of tokens, each sitting at one
node.  ``ACTIVE`` tokens are ready for the interpreter to execute;
``WAITING`` tokens are parked on an external trigger (work-item completion,
timer, message, child process, join partner).  The instance completes when
its last token is consumed by an end event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class InstanceState(enum.Enum):
    RUNNING = "running"
    COMPLETED = "completed"
    TERMINATED = "terminated"
    FAILED = "failed"
    SUSPENDED = "suspended"

    @property
    def is_finished(self) -> bool:
        return self in (
            InstanceState.COMPLETED,
            InstanceState.TERMINATED,
            InstanceState.FAILED,
        )


class TokenState(enum.Enum):
    ACTIVE = "active"
    WAITING = "waiting"


@dataclass
class Token:
    """One locus of control within an instance."""

    id: int
    node_id: str
    state: TokenState = TokenState.ACTIVE
    arrived_via: str | None = None  # flow id, for join bookkeeping
    # what a WAITING token is parked on, e.g.
    # {"reason": "user_task", "work_item_id": "wi-3"}
    # {"reason": "timer", "job_id": "job-7"}
    # {"reason": "message", "message_name": "reply", "correlation": "ord-1"}
    # {"reason": "join"} / {"reason": "child", "child_id": "..."}
    # {"reason": "event_race", "job_ids": [...], "targets": [...]}
    waiting_on: dict[str, Any] = field(default_factory=dict)

    def wait(self, reason: str, **details: Any) -> None:
        """Park the token on an external trigger."""
        self.state = TokenState.WAITING
        self.waiting_on = {"reason": reason, **details}

    def resume(self, node_id: str | None = None, arrived_via: str | None = None) -> None:
        """Reactivate the token, optionally moving it."""
        self.state = TokenState.ACTIVE
        self.waiting_on = {}
        if node_id is not None:
            self.node_id = node_id
            self.arrived_via = arrived_via

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "node_id": self.node_id,
            "state": self.state.value,
            "arrived_via": self.arrived_via,
            "waiting_on": self.waiting_on,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Token":
        token = cls(
            id=raw["id"],
            node_id=raw["node_id"],
            arrived_via=raw.get("arrived_via"),
            waiting_on=raw.get("waiting_on", {}),
        )
        token.state = TokenState(raw.get("state", "active"))
        return token


@dataclass
class ProcessInstance:
    """One running (or finished) case of a deployed definition."""

    id: str
    definition_id: str  # "key:version"
    business_key: str | None = None
    variables: dict[str, Any] = field(default_factory=dict)
    state: InstanceState = InstanceState.RUNNING
    tokens: list[Token] = field(default_factory=list)
    created_at: float = 0.0
    ended_at: float | None = None
    # set when this instance was started by a call activity:
    parent_instance_id: str | None = None
    parent_token_id: int | None = None
    failure: str | None = None
    # completed activities with a compensation handler, in completion
    # order ({"node_id": ..., "handler_id": ...}); compensation runs the
    # handlers in reverse and pops entries as each one succeeds
    compensations: list[dict[str, Any]] = field(default_factory=list)
    _token_seq: int = 0

    @property
    def definition_key(self) -> str:
        return self.definition_id.rsplit(":", 1)[0]

    @property
    def definition_version(self) -> int:
        return int(self.definition_id.rsplit(":", 1)[1])

    # -- tokens ----------------------------------------------------------------

    def new_token(self, node_id: str, arrived_via: str | None = None) -> Token:
        """Create an ACTIVE token at a node."""
        self._token_seq += 1
        token = Token(id=self._token_seq, node_id=node_id, arrived_via=arrived_via)
        self.tokens.append(token)
        return token

    def remove_token(self, token: Token) -> None:
        """Consume a token (end event, join merge, interrupt)."""
        self.tokens.remove(token)

    def token(self, token_id: int) -> Token | None:
        """Find a token by id, if still live."""
        return next((t for t in self.tokens if t.id == token_id), None)

    def active_tokens(self) -> list[Token]:
        """Tokens the interpreter can execute now."""
        return [t for t in self.tokens if t.state is TokenState.ACTIVE]

    def waiting_tokens(self, reason: str | None = None) -> list[Token]:
        """Parked tokens, optionally filtered by wait reason."""
        waiting = [t for t in self.tokens if t.state is TokenState.WAITING]
        if reason is not None:
            waiting = [t for t in waiting if t.waiting_on.get("reason") == reason]
        return waiting

    def tokens_at(self, node_id: str) -> list[Token]:
        """All tokens currently sitting at one node."""
        return [t for t in self.tokens if t.node_id == node_id]

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "definition_id": self.definition_id,
            "business_key": self.business_key,
            "variables": self.variables,
            "state": self.state.value,
            "tokens": [t.to_dict() for t in self.tokens],
            "created_at": self.created_at,
            "ended_at": self.ended_at,
            "parent_instance_id": self.parent_instance_id,
            "parent_token_id": self.parent_token_id,
            "failure": self.failure,
            "compensations": [dict(entry) for entry in self.compensations],
            "token_seq": self._token_seq,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ProcessInstance":
        instance = cls(
            id=raw["id"],
            definition_id=raw["definition_id"],
            business_key=raw.get("business_key"),
            variables=raw.get("variables", {}),
            tokens=[Token.from_dict(t) for t in raw.get("tokens", [])],
            created_at=raw.get("created_at", 0.0),
            ended_at=raw.get("ended_at"),
            parent_instance_id=raw.get("parent_instance_id"),
            parent_token_id=raw.get("parent_token_id"),
            failure=raw.get("failure"),
            compensations=[dict(e) for e in raw.get("compensations", ())],
        )
        instance.state = InstanceState(raw.get("state", "running"))
        instance._token_seq = raw.get("token_seq", len(instance.tokens))
        return instance

    def __repr__(self) -> str:
        return (
            f"ProcessInstance({self.id!r}, {self.definition_id!r}, "
            f"{self.state.value}, tokens={len(self.tokens)})"
        )
