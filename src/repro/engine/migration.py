"""Instance migration between process versions.

The T5 flexibility experiment: a BPMS keeps in-flight instances alive
across process change by *migrating* them — re-pointing each token (and its
waiting state) at the corresponding node of the new version.  The rigid
baseline (:mod:`repro.baseline`) has to abort in-flight work instead.

Compatibility rules enforced here:

* every token's current node must exist in the target version (possibly
  under a new id via ``node_mapping``) with the same element type;
* tokens waiting on a user task / timer / message keep waiting — the new
  node must be of the same kind so the wait stays meaningful;
* tokens parked at a join must find a gateway at the target;
* otherwise :class:`~repro.engine.errors.MigrationError` is raised and the
  instance is left untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.errors import MigrationError
from repro.engine.instance import ProcessInstance
from repro.model.process import ProcessDefinition


@dataclass
class MigrationPlan:
    """How to map old node ids to new ones (identity by default)."""

    node_mapping: dict[str, str] = field(default_factory=dict)

    def target_node(self, node_id: str) -> str:
        return self.node_mapping.get(node_id, node_id)


def check_migratable(
    instance: ProcessInstance,
    source: ProcessDefinition,
    target: ProcessDefinition,
    plan: MigrationPlan,
) -> list[str]:
    """Return the list of problems (empty = migratable)."""
    problems: list[str] = []
    for token in instance.tokens:
        new_id = plan.target_node(token.node_id)
        new_node = target.nodes.get(new_id)
        if new_node is None:
            problems.append(
                f"token {token.id} at {token.node_id!r}: no node {new_id!r} in "
                f"target version {target.version}"
            )
            continue
        old_node = source.nodes.get(token.node_id)
        if old_node is not None and type(old_node) is not type(new_node):
            problems.append(
                f"token {token.id} at {token.node_id!r}: type changed "
                f"{type(old_node).__name__} -> {type(new_node).__name__}"
            )
    return problems


def apply_migration(engine, instance: ProcessInstance, target: ProcessDefinition,
                    plan: MigrationPlan) -> None:
    """Re-point an instance at the target version (raises on incompatibility)."""
    if instance.state.is_finished:
        raise MigrationError(f"instance {instance.id!r} is finished")
    if target.key != instance.definition_key:
        raise MigrationError(
            f"cannot migrate across process keys "
            f"({instance.definition_key!r} -> {target.key!r})"
        )
    source = engine.definition(instance.definition_key, instance.definition_version)
    problems = check_migratable(instance, source, target, plan)
    if problems:
        raise MigrationError("; ".join(problems))
    for token in instance.tokens:
        new_id = plan.target_node(token.node_id)
        token.node_id = new_id
        # arrived_via flow ids are version-specific; joins re-resolve laziliy
        if token.arrived_via is not None and token.arrived_via not in target.flows:
            incoming = target.incoming(new_id)
            token.arrived_via = incoming[0].id if len(incoming) == 1 else None
    instance.definition_id = target.identifier
