"""Job scheduler: timers and other time-driven continuations.

A min-heap keyed by due time, with stable FIFO order for equal times.  The
engine pumps the scheduler via ``run_due_jobs`` (production: from a driver
loop; tests/simulation: after advancing a virtual clock).  Jobs serialize
for crash recovery.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Job:
    """One scheduled continuation."""

    id: str
    due: float
    kind: str  # "timer" | "boundary_timer" | ...
    instance_id: str
    data: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "due": self.due,
            "kind": self.kind,
            "instance_id": self.instance_id,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Job":
        return cls(
            id=raw["id"],
            due=raw["due"],
            kind=raw["kind"],
            instance_id=raw["instance_id"],
            data=raw.get("data", {}),
        )


class JobScheduler:
    """Due-time priority queue with cancellation."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str]] = []
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count(1)
        # differential write-set for the engine's incremental persistence:
        # ids scheduled (or re-scheduled) since the last flush, and ids
        # removed (fired or cancelled) whose store records must be deleted
        self._dirty: set[str] = set()
        self._removed: set[str] = set()

    def schedule(
        self,
        due: float,
        kind: str,
        instance_id: str,
        data: dict[str, Any] | None = None,
        job_id: str | None = None,
    ) -> Job:
        """Add a job due at absolute time ``due``; returns it."""
        seq = next(self._seq)
        job = Job(
            id=job_id or f"job-{seq}",
            due=due,
            kind=kind,
            instance_id=instance_id,
            data=dict(data or {}),
        )
        if job.id in self._jobs:
            raise ValueError(f"duplicate job id {job.id!r}")
        self._jobs[job.id] = job
        heapq.heappush(self._heap, (due, seq, job.id))
        self._dirty.add(job.id)
        self._removed.discard(job.id)
        return job

    def cancel(self, job_id: str) -> bool:
        """Remove a job by id (lazy heap deletion); returns existence."""
        if self._jobs.pop(job_id, None) is None:
            return False
        self._note_removed(job_id)
        return True

    def cancel_where(self, predicate: Callable[[Job], bool]) -> int:
        """Cancel all jobs matching a predicate; returns the count."""
        doomed = [job_id for job_id, job in self._jobs.items() if predicate(job)]
        for job_id in doomed:
            del self._jobs[job_id]
            self._note_removed(job_id)
        return len(doomed)

    def cancel_for_instance(self, instance_id: str) -> int:
        """Cancel every job of one instance."""
        return self.cancel_where(lambda job: job.instance_id == instance_id)

    def due_jobs(self, now: float) -> list[Job]:
        """Pop and return all jobs with ``due <= now``, in due order."""
        ready: list[Job] = []
        while self._heap and self._heap[0][0] <= now:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.pop(job_id, None)
            if job is not None:  # skip lazily cancelled entries
                self._note_removed(job_id)
                ready.append(job)
        return ready

    def next_due(self) -> float | None:
        """Due time of the earliest pending job, if any."""
        while self._heap:
            due, _, job_id = self._heap[0]
            if job_id in self._jobs:
                return due
            heapq.heappop(self._heap)  # drain cancelled head
        return None

    def get(self, job_id: str) -> Job | None:
        """Look up a pending job."""
        return self._jobs.get(job_id)

    def __len__(self) -> int:
        return len(self._jobs)

    def pending(self) -> list[Job]:
        """All pending jobs, soonest first."""
        return sorted(self._jobs.values(), key=lambda j: (j.due, j.id))

    # -- persistence ----------------------------------------------------------

    def _note_removed(self, job_id: str) -> None:
        self._dirty.discard(job_id)
        self._removed.add(job_id)

    def pending_changes(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """``(changed_ids, removed_ids)`` since :meth:`clear_changes`.

        ``changed_ids`` are pending jobs whose records must be (re)written;
        ``removed_ids`` are fired/cancelled jobs whose records must be
        deleted.  The sets are left intact so a failed commit can retry —
        call :meth:`clear_changes` only after the write succeeded.
        """
        return tuple(sorted(self._dirty)), tuple(sorted(self._removed))

    def clear_changes(self) -> None:
        """Forget the differential write-set (after a successful commit)."""
        self._dirty.clear()
        self._removed.clear()

    def export(self) -> list[dict[str, Any]]:
        """Serializable snapshot of pending jobs."""
        return [job.to_dict() for job in self.pending()]

    def import_jobs(self, raw_jobs: list[dict[str, Any]]) -> None:
        """Restore jobs from a snapshot (crash recovery)."""
        for raw in raw_jobs:
            job = Job.from_dict(raw)
            if job.id in self._jobs:
                continue
            seq = next(self._seq)
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (job.due, seq, job.id))
        # keep generated ids unique after recovery
        numeric = [
            int(j.id[4:]) for j in self._jobs.values()
            if j.id.startswith("job-") and j.id[4:].isdigit()
        ]
        if numeric:
            self._seq = itertools.count(max(numeric) + 1)
