"""Node-type → executor dispatch table.

Each executor is a module-level function ``execute(engine, instance,
definition, token, node)`` living in one of the per-node-family modules
(:mod:`~repro.engine.executors.events`, ``tasks``, ``gateways``,
``subprocesses``) and registered here with the :func:`executor`
decorator.  The interpreter core (:mod:`repro.engine.execution`) resolves
the executor for a token's node through :func:`executor_for` — there is
no ``_execute_*`` if-ladder and no god-class.

The registry is intentionally dumb: it imports nothing from the engine
or the interpreter, so it can be loaded first and never participates in
an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ProcessEngine
    from repro.engine.instance import ProcessInstance, Token
    from repro.model.elements import Node
    from repro.model.process import ProcessDefinition

    Executor = Callable[
        ["ProcessEngine", "ProcessInstance", "ProcessDefinition", "Token", "Node"],
        None,
    ]

#: node type -> executor function.
EXECUTORS: dict[type, "Executor"] = {}


def executor(*node_types: type) -> Callable[["Executor"], "Executor"]:
    """Register a function as the executor for one or more node types."""

    def decorate(fn: "Executor") -> "Executor":
        for node_type in node_types:
            if node_type in EXECUTORS:
                raise ValueError(
                    f"duplicate executor for node type {node_type.__name__}"
                )
            EXECUTORS[node_type] = fn
        return fn

    return decorate


def executor_for(node_type: type) -> "Executor | None":
    """The registered executor for a node type, if any."""
    return EXECUTORS.get(node_type)


def registered_node_types() -> list[type]:
    """All node types with an executor (sorted by name, for diagnostics)."""
    return sorted(EXECUTORS, key=lambda t: t.__name__)
