"""Executors for subprocess nodes: call activities and multi-instance."""

from __future__ import annotations

from typing import Any

from repro.engine import execution as core
from repro.engine.executors.registry import executor
from repro.expr import ExpressionError, compile_expression
from repro.history.events import EventTypes
from repro.model.elements import CallActivity, MultiInstanceActivity


@executor(CallActivity)
def execute_call_activity(engine, instance, definition, token, node: CallActivity) -> None:
    core.enter(engine, instance, node, is_activity=True)
    try:
        if node.input_mappings:
            child_variables = {
                name: compile_expression(expr).evaluate(instance.variables)
                for name, expr in node.input_mappings.items()
            }
        else:
            child_variables = dict(instance.variables)
    except ExpressionError as exc:
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    token.wait("child", node_id=node.id)
    core.schedule_boundary_timers(engine, instance, definition, token, node)
    child = engine._start_instance_internal(
        key=node.process_key,
        version=None,
        variables=child_variables,
        business_key=instance.business_key,
        parent_instance_id=instance.id,
        parent_token_id=token.id,
    )
    # record the linkage for recovery and diagnostics — unless the child
    # already completed synchronously and resumed this token
    if token.waiting_on.get("reason") == "child":
        token.waiting_on["child_id"] = child.id


@executor(MultiInstanceActivity)
def execute_multi_instance(
    engine, instance, definition, token, node: MultiInstanceActivity
) -> None:
    core.enter(engine, instance, node, is_activity=True)
    try:
        cardinality = compile_expression(node.cardinality_expression).evaluate(
            instance.variables
        )
    except ExpressionError as exc:
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    if isinstance(cardinality, bool) or not isinstance(cardinality, int) or cardinality < 0:
        core.handle_error(
            engine,
            instance,
            definition,
            token,
            core.TECHNICAL_ERROR_CODE,
            f"multi-instance cardinality must be a non-negative integer, "
            f"got {cardinality!r}",
        )
        return

    if not node.wait_for_completion:
        # pattern 12: fire-and-forget — no parent link, token moves on
        for index in range(cardinality):
            variables = mi_child_variables(
                engine, instance, definition, token, node, index
            )
            if variables is None:
                return
            engine._start_instance_internal(
                key=node.process_key,
                version=None,
                variables=variables,
                business_key=instance.business_key,
                parent_instance_id=None,
                parent_token_id=None,
            )
        core.move_through(
            engine, instance, definition, token, node, is_activity=True,
            spawned=cardinality,
        )
        return

    if cardinality == 0:
        if node.output_collection is not None:
            instance.variables[node.output_collection] = []
        core.move_through(
            engine, instance, definition, token, node, is_activity=True, spawned=0
        )
        return

    token.wait(
        "mi",
        node_id=node.id,
        remaining=cardinality,
        total=cardinality,
        next_index=1 if node.sequential else cardinality,
        children=[],
        collected=[],
    )
    core.schedule_boundary_timers(engine, instance, definition, token, node)
    spawn = 1 if node.sequential else cardinality
    for index in range(spawn):
        if token.waiting_on.get("reason") != "mi":
            return  # all children finished synchronously mid-loop
        spawn_mi_child(engine, instance, definition, token, node, index)


def mi_child_variables(
    engine, instance, definition, token, node: MultiInstanceActivity, index: int
) -> dict[str, Any] | None:
    try:
        if node.input_mappings:
            variables = {
                name: compile_expression(expr).evaluate(
                    {**instance.variables, "instance_index": index}
                )
                for name, expr in node.input_mappings.items()
            }
        else:
            variables = dict(instance.variables)
    except ExpressionError as exc:
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return None
    variables["instance_index"] = index
    return variables


def spawn_mi_child(
    engine, instance, definition, token, node: MultiInstanceActivity, index: int
) -> None:
    variables = mi_child_variables(engine, instance, definition, token, node, index)
    if variables is None:
        return
    child = engine._start_instance_internal(
        key=node.process_key,
        version=None,
        variables=variables,
        business_key=instance.business_key,
        parent_instance_id=instance.id,
        parent_token_id=token.id,
    )
    if token.waiting_on.get("reason") == "mi":
        token.waiting_on["children"].append(child.id)


def on_mi_child_finished(
    engine, parent, definition, token, node: MultiInstanceActivity, child, failed: bool
) -> None:
    """One child of a waiting multi-instance activity ended."""
    waiting = token.waiting_on
    if failed:
        children = list(waiting.get("children", ()))
        token.waiting_on = {}
        for child_id in children:
            sibling = engine._instances.get(child_id)
            if sibling is not None and not sibling.state.is_finished:
                engine._terminate_instance_internal(sibling, "mi sibling failed")
        core.cancel_boundary_jobs(engine, parent, token)
        core.handle_error(
            engine,
            parent,
            definition,
            token,
            core.TECHNICAL_ERROR_CODE,
            f"multi-instance child {child.id!r} failed: {child.failure}",
        )
        core.advance(engine, parent)
        return
    try:
        if node.output_mappings:
            result = {
                name: compile_expression(expr).evaluate(child.variables)
                for name, expr in node.output_mappings.items()
            }
        else:
            result = dict(child.variables)
    except ExpressionError as exc:
        token.waiting_on = {}
        core.cancel_boundary_jobs(engine, parent, token)
        core.handle_error(
            engine, parent, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        core.advance(engine, parent)
        return
    waiting["collected"].append(result)
    waiting["remaining"] -= 1
    if waiting["remaining"] > 0:
        if node.sequential:
            next_index = waiting["next_index"]
            waiting["next_index"] += 1
            spawn_mi_child(engine, parent, definition, token, node, next_index)
        return
    # all children done
    collected = waiting["collected"]
    token.waiting_on = {}
    core.cancel_boundary_jobs(engine, parent, token)
    if node.output_collection is not None:
        parent.variables[node.output_collection] = collected
    engine._record(
        parent,
        EventTypes.NODE_COMPLETED,
        node_id=node.id,
        is_activity=True,
        children=waiting.get("total"),
    )
    flow = core.single_outgoing(definition, node)
    token.resume(flow.target, arrived_via=flow.id)
    core.advance(engine, parent)
