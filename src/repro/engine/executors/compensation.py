"""Reverse-order execution of compensation handlers (saga orchestration).

Completed activities that declare a ``compensation_handler`` push an
entry onto their instance's compensation log (see
:func:`repro.engine.execution.record_compensation`).  When a
``CompensateInstance`` command arrives, :func:`run_compensation` pops
that log newest-first and runs each handler inline — the business
transaction is undone in the opposite order it was done.

Handlers are *detached* activity nodes: they belong to the definition
but have no sequence flows, so the interpreter never reaches them during
normal execution.  They run here without tokens, work items, or
boundary events — a handler either succeeds (its entry is popped, its
variable effects merged) or raises, leaving the remaining log intact so
a retried command resumes exactly at the failed step.
"""

from __future__ import annotations

from typing import Any

from repro.engine.errors import BpmnError, EngineError
from repro.expr import ExpressionError, compile_expression, run_script
from repro.history.events import EventTypes
from repro.model.elements import ManualTask, Node, ScriptTask, ServiceTask


class CompensationError(EngineError):
    """A compensation handler failed; the log keeps the unfinished tail."""

    def __init__(self, handler_id: str, for_node: str, detail: str) -> None:
        super().__init__(
            f"compensation handler {handler_id!r} (for {for_node!r}) failed: "
            f"{detail}"
        )
        self.handler_id = handler_id
        self.for_node = for_node


def run_compensation(engine: Any, instance: Any, definition: Any) -> list[str]:
    """Run the instance's pending compensation handlers, newest first.

    Entries are popped one at a time *after* their handler succeeds, so a
    crash or handler failure leaves the untouched tail persisted and a
    retry (same ``dedup_key`` or a fresh command) resumes at the failed
    step without re-running already-compensated activities.

    Returns the handler node ids that ran, in execution order.
    """
    compensated: list[str] = []
    if not instance.compensations:
        return compensated
    engine._record(
        instance,
        EventTypes.COMPENSATION_TRIGGERED,
        pending=len(instance.compensations),
    )
    engine._dirty.add(instance.id)
    while instance.compensations:
        entry = instance.compensations[-1]
        handler_id = entry["handler_id"]
        handler = definition.nodes.get(handler_id)
        if handler is None:
            raise CompensationError(
                handler_id, entry["node_id"], "handler node not in definition"
            )
        _run_handler(engine, instance, handler, entry["node_id"])
        instance.compensations.pop()
        engine._record(
            instance,
            EventTypes.NODE_COMPENSATED,
            node_id=handler.id,
            for_node=entry["node_id"],
        )
        engine._dirty.add(instance.id)
        compensated.append(handler.id)
    return compensated


def _run_handler(engine: Any, instance: Any, handler: Node, for_node: str) -> None:
    """Execute one detached handler node against the instance variables."""
    if isinstance(handler, ScriptTask):
        scratch = dict(instance.variables)
        try:
            run_script(handler.script, scratch)
        except ExpressionError as exc:
            raise CompensationError(handler.id, for_node, str(exc)) from exc
        instance.variables = scratch
        return
    if isinstance(handler, ServiceTask):
        try:
            arguments = {
                name: compile_expression(expr).evaluate(instance.variables)
                for name, expr in handler.inputs.items()
            }
        except ExpressionError as exc:
            raise CompensationError(handler.id, for_node, str(exc)) from exc
        try:
            result = engine.invoker.invoke(
                handler.service, arguments, retry=handler.retry
            )
        except BpmnError as exc:
            raise CompensationError(handler.id, for_node, str(exc)) from exc
        if not result.succeeded:
            raise CompensationError(
                handler.id, for_node, result.error or "service failed"
            )
        if handler.output_variable is not None:
            instance.variables[handler.output_variable] = result.value
        return
    if isinstance(handler, ManualTask):
        # performed entirely outside any system: recording it suffices
        return
    raise CompensationError(
        handler.id,
        for_node,
        f"unsupported handler node type {type(handler).__name__}",
    )
