"""Executors for task nodes: human, scripted, service, rule, messaging."""

from __future__ import annotations

from typing import Any

from repro.engine import execution as core
from repro.engine.executors.registry import executor
from repro.expr import ExpressionError, compile_expression, run_script
from repro.history.events import EventTypes
from repro.model.elements import (
    BusinessRuleTask,
    ManualTask,
    ReceiveTask,
    ScriptTask,
    SendTask,
    ServiceTask,
    UserTask,
)


@executor(UserTask)
def execute_user_task(engine, instance, definition, token, node: UserTask) -> None:
    core.enter(engine, instance, node, is_activity=True)
    data: dict[str, Any] = {
        "token_id": token.id,
        "form_fields": list(node.form_fields),
    }
    if node.separate_from:
        excluded = core.performers_of(engine, instance, node.separate_from)
        if excluded:
            data["excluded_resources"] = sorted(excluded)
    item = engine.worklist.create_item(
        instance_id=instance.id,
        node_id=node.id,
        role=node.role,
        priority=node.priority,
        due_seconds=node.due_seconds,
        data=data,
    )
    token.wait("user_task", work_item_id=item.id, node_id=node.id)
    core.schedule_boundary_timers(engine, instance, definition, token, node)


@executor(ManualTask)
def execute_manual_task(engine, instance, definition, token, node: ManualTask) -> None:
    # performed entirely outside any system: the engine only records it
    core.enter(engine, instance, node, is_activity=True)
    core.move_through(engine, instance, definition, token, node, is_activity=True)


@executor(ScriptTask)
def execute_script_task(engine, instance, definition, token, node: ScriptTask) -> None:
    core.enter(engine, instance, node, is_activity=True)
    scratch = dict(instance.variables)
    try:
        run_script(node.script, scratch)
    except ExpressionError as exc:
        engine._record(
            instance,
            EventTypes.ERROR_RAISED,
            node_id=node.id,
            code=core.TECHNICAL_ERROR_CODE,
            message=str(exc),
        )
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    instance.variables = scratch
    engine._record(
        instance, EventTypes.VARIABLES_UPDATED, node_id=node.id,
        keys=sorted(scratch.keys()),
    )
    core.move_through(engine, instance, definition, token, node, is_activity=True)


@executor(ServiceTask)
def execute_service_task(engine, instance, definition, token, node: ServiceTask) -> None:
    core.enter(engine, instance, node, is_activity=True)
    core.schedule_boundary_timers(engine, instance, definition, token, node)
    if node.async_execution:
        # decouple from the caller: park the token, invoke on the next pump
        job = engine.scheduler.schedule(
            engine.clock.now(),
            "async_service",
            instance.id,
            {"token_id": token.id, "node_id": node.id},
        )
        token.wait("async_service", job_id=job.id, node_id=node.id)
        return
    pool = engine.workers
    if pool is not None and pool.admit(node.service):
        enqueue_service_invocation(engine, instance, definition, token, node)
        return
    # no pool, scope excludes this service, or its queue is full: the
    # synchronous inline path doubles as the load-leveling fallback
    perform_service_invocation(engine, instance, definition, token, node)


def enqueue_service_invocation(
    engine, instance, definition, token, node: ServiceTask
) -> None:
    """Park the token on a durable invocation record for the worker pool.

    Inputs are evaluated *now*, under the lock, against the variables the
    token saw — the pool thread must not read mutable instance state.
    """
    try:
        arguments = {
            name: compile_expression(expr).evaluate(instance.variables)
            for name, expr in node.inputs.items()
        }
    except ExpressionError as exc:
        core.cancel_boundary_jobs(engine, instance, token)
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    engine._enqueue_invocation(instance, token, node, arguments)


def perform_service_invocation(
    engine, instance, definition, token, node: ServiceTask
) -> None:
    """Invoke the bound service and route success/failure.

    Also the landing point for ``async_service`` jobs (see the engine's
    job dispatcher), hence a module function rather than a closure.
    """
    from repro.engine.errors import BpmnError  # cycle guard

    try:
        arguments = {
            name: compile_expression(expr).evaluate(instance.variables)
            for name, expr in node.inputs.items()
        }
    except ExpressionError as exc:
        core.cancel_boundary_jobs(engine, instance, token)
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    engine._record(
        instance, EventTypes.SERVICE_INVOKED, node_id=node.id, service=node.service
    )
    try:
        result = engine.invoker.invoke(node.service, arguments, retry=node.retry)
    except BpmnError as exc:
        core.cancel_boundary_jobs(engine, instance, token)
        engine._record(
            instance,
            EventTypes.ERROR_RAISED,
            node_id=node.id,
            code=exc.code,
            message=exc.detail,
        )
        core.handle_error(engine, instance, definition, token, exc.code, exc.detail)
        return
    core.cancel_boundary_jobs(engine, instance, token)
    if not result.succeeded:
        engine._record(
            instance,
            EventTypes.SERVICE_FAILED,
            node_id=node.id,
            service=node.service,
            attempts=result.attempts,
            error=result.error,
        )
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE,
            result.error or "service failed",
        )
        return
    if node.output_variable is not None:
        instance.variables[node.output_variable] = result.value
        engine._record(
            instance,
            EventTypes.VARIABLES_UPDATED,
            node_id=node.id,
            keys=[node.output_variable],
        )
    core.move_through(
        engine, instance, definition, token, node, is_activity=True,
        attempts=result.attempts,
    )


@executor(BusinessRuleTask)
def execute_business_rule_task(
    engine, instance, definition, token, node: BusinessRuleTask
) -> None:
    from repro.decisions.table import DecisionError

    core.enter(engine, instance, node, is_activity=True)
    try:
        table = engine.decisions.get(node.decision)
        outputs = table.evaluate(instance.variables)
    except DecisionError as exc:
        engine._record(
            instance,
            EventTypes.ERROR_RAISED,
            node_id=node.id,
            code=core.TECHNICAL_ERROR_CODE,
            message=str(exc),
        )
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    if node.result_variable is not None:
        instance.variables[node.result_variable] = outputs
        changed = [node.result_variable]
    else:
        instance.variables.update(outputs)
        changed = sorted(outputs)
    engine._record(
        instance, EventTypes.VARIABLES_UPDATED, node_id=node.id, keys=changed
    )
    core.move_through(
        engine, instance, definition, token, node, is_activity=True,
        decision=node.decision,
    )


@executor(SendTask)
def execute_send_task(engine, instance, definition, token, node: SendTask) -> None:
    core.enter(engine, instance, node, is_activity=True)
    payload: dict[str, Any] = {}
    if node.payload_expression is not None:
        try:
            value = compile_expression(node.payload_expression).evaluate(
                instance.variables
            )
        except ExpressionError as exc:
            core.handle_error(
                engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
            )
            return
        payload = value if isinstance(value, dict) else {"value": value}
    correlation = payload.get("correlation")
    engine.bus.publish(node.message_name, correlation=correlation, payload=payload)
    engine._record(
        instance,
        EventTypes.MESSAGE_SENT,
        node_id=node.id,
        message_name=node.message_name,
        correlation=correlation,
    )
    core.move_through(engine, instance, definition, token, node, is_activity=True)


@executor(ReceiveTask)
def execute_receive_task(engine, instance, definition, token, node: ReceiveTask) -> None:
    core.enter(engine, instance, node, is_activity=True)
    core.await_message(
        engine,
        instance,
        token,
        node,
        node.message_name,
        node.correlation_expression,
        is_activity=True,
    )
