"""Executors for gateway nodes: exclusive, parallel, inclusive, event-based."""

from __future__ import annotations

from repro.engine import execution as core
from repro.engine.errors import EngineError, NoFlowSelectedError
from repro.engine.executors.registry import executor
from repro.engine.instance import ProcessInstance, Token
from repro.expr import ExpressionError, compile_expression
from repro.history.events import EventTypes
from repro.model.elements import (
    EventBasedGateway,
    ExclusiveGateway,
    InclusiveGateway,
    IntermediateMessageEvent,
    IntermediateTimerEvent,
    Node,
    ParallelGateway,
    ReceiveTask,
)
from repro.model.process import ProcessDefinition


@executor(ExclusiveGateway)
def execute_exclusive(engine, instance, definition, token, node: ExclusiveGateway) -> None:
    core.enter(engine, instance, node, is_activity=False)
    try:
        flow = core._select_exclusive_flow(definition, node, instance.variables)
    except (NoFlowSelectedError, ExpressionError) as exc:
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    engine._record(
        instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False,
        selected_flow=flow.id,
    )
    token.resume(flow.target, arrived_via=flow.id)


@executor(ParallelGateway)
def execute_parallel(engine, instance, definition, token, node: ParallelGateway) -> None:
    incoming = definition.incoming(node.id)
    outgoing = definition.outgoing(node.id)
    if len(incoming) > 1:
        # join side: wait for one token per incoming flow
        arrived = {
            t.arrived_via
            for t in instance.tokens_at(node.id)
            if t.arrived_via is not None
            and (t is token or t.waiting_on.get("reason") == "join")
        }
        if arrived < {f.id for f in incoming}:
            token.wait("join", node_id=node.id)
            return
        # all partners present: consume them, keep this token
        core.enter(engine, instance, node, is_activity=False)
        for other in list(instance.tokens_at(node.id)):
            if other is not token:
                instance.remove_token(other)
    else:
        core.enter(engine, instance, node, is_activity=False)
    engine._record(
        instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
    )
    first, *rest = outgoing
    for flow in rest:
        instance.new_token(flow.target, arrived_via=flow.id)
    token.resume(first.target, arrived_via=first.id)


@executor(InclusiveGateway)
def execute_inclusive(engine, instance, definition, token, node: InclusiveGateway) -> None:
    incoming = definition.incoming(node.id)
    outgoing = definition.outgoing(node.id)
    if len(incoming) > 1:
        if not inclusive_join_ready(engine, instance, definition, node, token):
            token.wait("join", node_id=node.id)
            return
        core.enter(engine, instance, node, is_activity=False)
        for other in list(instance.tokens_at(node.id)):
            if other is not token:
                instance.remove_token(other)
    else:
        core.enter(engine, instance, node, is_activity=False)
    if len(outgoing) == 1:
        engine._record(
            instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
        )
        flow = outgoing[0]
        token.resume(flow.target, arrived_via=flow.id)
        return
    # split: activate every flow whose guard holds; default if none
    try:
        chosen = []
        default = None
        for flow in outgoing:
            if flow.is_default:
                default = flow
                continue
            if flow.condition is None or compile_expression(
                flow.condition
            ).evaluate_bool(instance.variables):
                chosen.append(flow)
        if not chosen:
            if default is None:
                raise NoFlowSelectedError(node.id, instance.variables)
            chosen = [default]
    except (NoFlowSelectedError, ExpressionError) as exc:
        core.handle_error(
            engine, instance, definition, token, core.TECHNICAL_ERROR_CODE, str(exc)
        )
        return
    engine._record(
        instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False,
        selected_flows=[f.id for f in chosen],
    )
    first, *rest = chosen
    for flow in rest:
        instance.new_token(flow.target, arrived_via=flow.id)
    token.resume(first.target, arrived_via=first.id)


def inclusive_join_ready(
    engine,
    instance: ProcessInstance,
    definition: ProcessDefinition,
    node: Node,
    arriving: Token,
) -> bool:
    """OR-join: ready when no token elsewhere can still reach the join."""
    for other in instance.tokens:
        if other is arriving:
            continue
        if other.node_id == node.id:
            continue  # already here, will be merged
        if core.can_reach(engine, definition, other.node_id, node.id):
            return False
    return True


@executor(EventBasedGateway)
def execute_event_gateway(
    engine, instance, definition, token, node: EventBasedGateway
) -> None:
    core.enter(engine, instance, node, is_activity=False)
    job_ids: list[str] = []
    wait_count = 0
    for flow in definition.outgoing(node.id):
        target = definition.node(flow.target)
        if isinstance(target, IntermediateTimerEvent):
            job = engine.scheduler.schedule(
                engine.clock.now() + target.duration,
                "event_race_timer",
                instance.id,
                {
                    "token_id": token.id,
                    "gateway_id": node.id,
                    "event_id": target.id,
                },
            )
            job_ids.append(job.id)
        elif isinstance(target, (IntermediateMessageEvent, ReceiveTask)):
            correlation, match_any = core.correlation_of(
                target.correlation_expression, instance.variables
            )
            engine._message_waits.append(
                {
                    "instance_id": instance.id,
                    "token_id": token.id,
                    "name": target.message_name,
                    "correlation": correlation,
                    "match_any": match_any,
                    "race_gateway": node.id,
                    "race_event": target.id,
                }
            )
            engine._waits_dirty = True
            wait_count += 1
        else:
            raise EngineError(
                f"event gateway {node.id!r} leads to non-catch node {target.id!r}"
            )
    if not job_ids and not wait_count:
        raise EngineError(f"event gateway {node.id!r} has nothing to wait for")
    token.wait("event_race", gateway_id=node.id, job_ids=job_ids)
    # a raced message may already be retained on the bus — try immediately
    try_retained_for_race(engine, instance, definition, token)


def try_retained_for_race(engine, instance, definition, token) -> None:
    for wait in [w for w in engine._message_waits if w["token_id"] == token.id
                 and w["instance_id"] == instance.id]:
        message = engine.bus.consume_retained(
            wait["name"], wait.get("correlation"), wait.get("match_any", False)
        )
        if message is not None:
            # count the delivery: this path bypasses _deliver_to_wait
            engine.metrics.messages_delivered += 1
            core.deliver_race_message(
                engine, instance, definition, token, wait, message.payload
            )
            return
