"""Per-node-family executor modules and their dispatch registry.

Importing this package populates :data:`~repro.engine.executors.registry.
EXECUTORS` by loading every family module for its registration side
effects.
"""

from repro.engine.executors.registry import (
    EXECUTORS,
    executor,
    executor_for,
    registered_node_types,
)
from repro.engine.executors import (  # noqa: F401 - registration side effects
    events,
    gateways,
    subprocesses,
    tasks,
)

__all__ = [
    "EXECUTORS",
    "executor",
    "executor_for",
    "registered_node_types",
]
