"""Executors for event nodes: start, end, timer, message."""

from __future__ import annotations

from repro.engine import execution as core
from repro.engine.executors.registry import executor
from repro.history.events import EventTypes
from repro.model.elements import (
    EndEvent,
    IntermediateMessageEvent,
    IntermediateTimerEvent,
    StartEvent,
)


@executor(StartEvent)
def execute_start(engine, instance, definition, token, node: StartEvent) -> None:
    core.enter(engine, instance, node, is_activity=False)
    core.move_through(engine, instance, definition, token, node, is_activity=False)


@executor(EndEvent)
def execute_end(engine, instance, definition, token, node: EndEvent) -> None:
    core.enter(engine, instance, node, is_activity=False)
    engine._record(
        instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
    )
    instance.remove_token(token)
    if node.terminate and instance.tokens:
        for other in list(instance.tokens):
            core.cancel_token(engine, instance, other, reason="terminate end event")
        engine._terminate_instance(instance, f"terminate end event {node.id!r}")
        return
    if not instance.tokens:
        engine._complete_instance(instance)


@executor(IntermediateTimerEvent)
def execute_timer_event(
    engine, instance, definition, token, node: IntermediateTimerEvent
) -> None:
    core.enter(engine, instance, node, is_activity=False)
    due = engine.clock.now() + node.duration
    job = engine.scheduler.schedule(
        due,
        "timer",
        instance.id,
        {"token_id": token.id, "node_id": node.id},
    )
    token.wait("timer", job_id=job.id, node_id=node.id)
    engine._record(
        instance,
        EventTypes.TIMER_SCHEDULED,
        node_id=node.id,
        due=due,
        job_id=job.id,
    )


@executor(IntermediateMessageEvent)
def execute_message_event(
    engine, instance, definition, token, node: IntermediateMessageEvent
) -> None:
    core.enter(engine, instance, node, is_activity=False)
    core.await_message(
        engine,
        instance,
        token,
        node,
        node.message_name,
        node.correlation_expression,
        is_activity=False,
    )
