"""Token-game execution semantics for every node type.

``ExecutionMixin`` is the interpreter half of :class:`~repro.engine.engine.
ProcessEngine`: given an instance with active tokens, it executes node
behaviour until the instance is *quiescent* (every token waiting on an
external trigger, or no tokens left).  The public API half lives in
:mod:`repro.engine.engine`.
"""

from __future__ import annotations

from typing import Any

from repro.engine.errors import EngineError, NoFlowSelectedError
from repro.engine.instance import InstanceState, ProcessInstance, Token, TokenState
from repro.expr import EvaluationError, ExpressionError, compile_expression, run_script
from repro.history.events import EventTypes
from repro.model.elements import (
    ACTIVITY_TYPES,
    BoundaryEvent,
    BusinessRuleTask,
    CallActivity,
    EndEvent,
    EventBasedGateway,
    ExclusiveGateway,
    InclusiveGateway,
    IntermediateMessageEvent,
    IntermediateTimerEvent,
    ManualTask,
    MultiInstanceActivity,
    Node,
    ParallelGateway,
    ReceiveTask,
    ScriptTask,
    SendTask,
    SequenceFlow,
    ServiceTask,
    StartEvent,
    UserTask,
)
from repro.model.process import ProcessDefinition

#: error code the engine synthesizes for technical (non-BPMN) failures.
TECHNICAL_ERROR_CODE = "TECHNICAL_FAILURE"


class ExecutionMixin:
    """Node semantics; mixed into ProcessEngine."""

    # -- main loop ---------------------------------------------------------------

    def _advance(self, instance: ProcessInstance) -> None:
        """Run the instance until quiescence.

        Re-entrant calls (a child completing synchronously, a message
        delivered to the same instance mid-step) are absorbed: the
        outermost frame keeps draining active tokens.
        """
        if instance.state is not InstanceState.RUNNING:
            return
        if instance.id in self._advancing:
            return
        self._advancing.add(instance.id)
        try:
            definition = self._definition_of(instance)
            steps = 0
            while instance.state is InstanceState.RUNNING:
                active = instance.active_tokens()
                if not active:
                    break
                steps += 1
                if steps > self.max_steps:
                    self._fail_instance(
                        instance,
                        f"step budget ({self.max_steps}) exhausted — livelock?",
                    )
                    break
                self._c_token_moves.inc()
                self._execute_token(instance, definition, active[0])
            if instance.state is InstanceState.RUNNING and not instance.tokens:
                self._complete_instance(instance)
        finally:
            self._advancing.discard(instance.id)
        self._dirty.add(instance.id)

    def _execute_token(
        self, instance: ProcessInstance, definition: ProcessDefinition, token: Token
    ) -> None:
        node = definition.node(token.node_id)
        handler = self._HANDLERS.get(type(node))
        if handler is None:
            raise EngineError(f"no handler for node type {type(node).__name__}")
        tracer = self._tracer
        if not tracer.enabled:
            handler(self, instance, definition, token, node)
            return
        # manual span lifecycle (no context-manager dispatch): this is the
        # hottest instrumented site in the engine — benchmark F7 holds the
        # enabled path under 10% of the per-node budget
        span = tracer.span(
            "node",
            parent=self._instance_spans.get(instance.id),
            node_id=node.id,
            node_type=node.type_name,
        )
        stack = tracer._stack
        stack.append(span)
        try:
            handler(self, instance, definition, token, node)
        except BaseException:
            if stack and stack[-1] is span:
                stack.pop()
            span.finish("error")
            raise
        else:
            if stack and stack[-1] is span:
                stack.pop()
            span.end = tracer._now()
            if span.status == "unset":
                span.status = "ok"
            for exporter in tracer.exporters:
                exporter.export(span)

    # -- movement helpers ----------------------------------------------------------

    def _single_outgoing(self, definition: ProcessDefinition, node: Node) -> SequenceFlow:
        outgoing = definition.outgoing(node.id)
        if len(outgoing) != 1:
            raise EngineError(
                f"node {node.id!r} needs exactly one outgoing flow, has {len(outgoing)}"
            )
        return outgoing[0]

    def _move_through(
        self,
        instance: ProcessInstance,
        definition: ProcessDefinition,
        token: Token,
        node: Node,
        is_activity: bool,
        **event_data: Any,
    ) -> None:
        """Complete a 1-out node and move the token along its flow."""
        self._record(
            instance,
            EventTypes.NODE_COMPLETED,
            node_id=node.id,
            is_activity=is_activity,
            **event_data,
        )
        flow = self._single_outgoing(definition, node)
        token.resume(flow.target, arrived_via=flow.id)

    def _enter(
        self,
        instance: ProcessInstance,
        node: Node,
        is_activity: bool,
        **event_data: Any,
    ) -> None:
        self.metrics.count_node(node.type_name)
        tracer = self._tracer
        if tracer.enabled:
            stack = tracer._stack
            if stack:
                # direct write, not .set(): this runs once per executed node
                stack[-1].attributes["entered"] = True
        self._record(
            instance,
            EventTypes.NODE_ENTERED,
            node_id=node.id,
            is_activity=is_activity,
            **event_data,
        )

    # -- events ----------------------------------------------------------------------

    def _execute_start(self, instance, definition, token, node: StartEvent) -> None:
        self._enter(instance, node, is_activity=False)
        self._move_through(instance, definition, token, node, is_activity=False)

    def _execute_end(self, instance, definition, token, node: EndEvent) -> None:
        self._enter(instance, node, is_activity=False)
        self._record(
            instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
        )
        instance.remove_token(token)
        if node.terminate and instance.tokens:
            for other in list(instance.tokens):
                self._cancel_token(instance, other, reason="terminate end event")
            self._terminate_instance(instance, f"terminate end event {node.id!r}")
            return
        if not instance.tokens:
            self._complete_instance(instance)

    def _execute_timer_event(
        self, instance, definition, token, node: IntermediateTimerEvent
    ) -> None:
        self._enter(instance, node, is_activity=False)
        due = self.clock.now() + node.duration
        job = self.scheduler.schedule(
            due,
            "timer",
            instance.id,
            {"token_id": token.id, "node_id": node.id},
        )
        token.wait("timer", job_id=job.id, node_id=node.id)
        self._record(
            instance,
            EventTypes.TIMER_SCHEDULED,
            node_id=node.id,
            due=due,
            job_id=job.id,
        )

    def _execute_message_event(
        self, instance, definition, token, node: IntermediateMessageEvent
    ) -> None:
        self._enter(instance, node, is_activity=False)
        self._await_message(
            instance,
            token,
            node,
            node.message_name,
            node.correlation_expression,
            is_activity=False,
        )

    # -- human / automated tasks -----------------------------------------------------

    def _execute_user_task(self, instance, definition, token, node: UserTask) -> None:
        self._enter(instance, node, is_activity=True)
        data: dict[str, Any] = {
            "token_id": token.id,
            "form_fields": list(node.form_fields),
        }
        if node.separate_from:
            excluded = self._performers_of(instance, node.separate_from)
            if excluded:
                data["excluded_resources"] = sorted(excluded)
        item = self.worklist.create_item(
            instance_id=instance.id,
            node_id=node.id,
            role=node.role,
            priority=node.priority,
            due_seconds=node.due_seconds,
            data=data,
        )
        token.wait("user_task", work_item_id=item.id, node_id=node.id)
        self._schedule_boundary_timers(instance, definition, token, node)

    def _performers_of(
        self, instance: ProcessInstance, node_ids: tuple[str, ...]
    ) -> set[str]:
        """Resources who completed any of the named nodes in this instance."""
        wanted = set(node_ids)
        return {
            event.data["resource"]
            for event in self.history.instance_events(instance.id)
            if event.type == EventTypes.NODE_COMPLETED
            and event.data.get("node_id") in wanted
            and event.data.get("resource")
        }

    def _execute_manual_task(self, instance, definition, token, node: ManualTask) -> None:
        # performed entirely outside any system: the engine only records it
        self._enter(instance, node, is_activity=True)
        self._move_through(instance, definition, token, node, is_activity=True)

    def _execute_script_task(self, instance, definition, token, node: ScriptTask) -> None:
        self._enter(instance, node, is_activity=True)
        scratch = dict(instance.variables)
        try:
            run_script(node.script, scratch)
        except ExpressionError as exc:
            self._record(
                instance,
                EventTypes.ERROR_RAISED,
                node_id=node.id,
                code=TECHNICAL_ERROR_CODE,
                message=str(exc),
            )
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        instance.variables = scratch
        self._record(
            instance, EventTypes.VARIABLES_UPDATED, node_id=node.id,
            keys=sorted(scratch.keys()),
        )
        self._move_through(instance, definition, token, node, is_activity=True)

    def _execute_service_task(self, instance, definition, token, node: ServiceTask) -> None:
        self._enter(instance, node, is_activity=True)
        self._schedule_boundary_timers(instance, definition, token, node)
        if node.async_execution:
            # decouple from the caller: park the token, invoke on the next pump
            job = self.scheduler.schedule(
                self.clock.now(),
                "async_service",
                instance.id,
                {"token_id": token.id, "node_id": node.id},
            )
            token.wait("async_service", job_id=job.id, node_id=node.id)
            return
        self._perform_service_invocation(instance, definition, token, node)

    def _perform_service_invocation(
        self, instance, definition, token, node: ServiceTask
    ) -> None:
        from repro.engine.errors import BpmnError  # cycle guard

        try:
            arguments = {
                name: compile_expression(expr).evaluate(instance.variables)
                for name, expr in node.inputs.items()
            }
        except ExpressionError as exc:
            self._cancel_boundary_jobs(instance, token)
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        self._record(
            instance, EventTypes.SERVICE_INVOKED, node_id=node.id, service=node.service
        )
        try:
            result = self.invoker.invoke(node.service, arguments, retry=node.retry)
        except BpmnError as exc:
            self._cancel_boundary_jobs(instance, token)
            self._record(
                instance,
                EventTypes.ERROR_RAISED,
                node_id=node.id,
                code=exc.code,
                message=exc.detail,
            )
            self._handle_error(instance, definition, token, exc.code, exc.detail)
            return
        self._cancel_boundary_jobs(instance, token)
        if not result.succeeded:
            self._record(
                instance,
                EventTypes.SERVICE_FAILED,
                node_id=node.id,
                service=node.service,
                attempts=result.attempts,
                error=result.error,
            )
            self._handle_error(
                instance, definition, token, TECHNICAL_ERROR_CODE,
                result.error or "service failed",
            )
            return
        if node.output_variable is not None:
            instance.variables[node.output_variable] = result.value
            self._record(
                instance,
                EventTypes.VARIABLES_UPDATED,
                node_id=node.id,
                keys=[node.output_variable],
            )
        self._move_through(
            instance, definition, token, node, is_activity=True,
            attempts=result.attempts,
        )

    def _execute_business_rule_task(
        self, instance, definition, token, node: BusinessRuleTask
    ) -> None:
        from repro.decisions.table import DecisionError

        self._enter(instance, node, is_activity=True)
        try:
            table = self.decisions.get(node.decision)
            outputs = table.evaluate(instance.variables)
        except DecisionError as exc:
            self._record(
                instance,
                EventTypes.ERROR_RAISED,
                node_id=node.id,
                code=TECHNICAL_ERROR_CODE,
                message=str(exc),
            )
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        if node.result_variable is not None:
            instance.variables[node.result_variable] = outputs
            changed = [node.result_variable]
        else:
            instance.variables.update(outputs)
            changed = sorted(outputs)
        self._record(
            instance, EventTypes.VARIABLES_UPDATED, node_id=node.id, keys=changed
        )
        self._move_through(
            instance, definition, token, node, is_activity=True,
            decision=node.decision,
        )

    def _execute_send_task(self, instance, definition, token, node: SendTask) -> None:
        self._enter(instance, node, is_activity=True)
        payload: dict[str, Any] = {}
        if node.payload_expression is not None:
            try:
                value = compile_expression(node.payload_expression).evaluate(
                    instance.variables
                )
            except ExpressionError as exc:
                self._handle_error(
                    instance, definition, token, TECHNICAL_ERROR_CODE, str(exc)
                )
                return
            payload = value if isinstance(value, dict) else {"value": value}
        correlation = payload.get("correlation")
        self.bus.publish(node.message_name, correlation=correlation, payload=payload)
        self._record(
            instance,
            EventTypes.MESSAGE_SENT,
            node_id=node.id,
            message_name=node.message_name,
            correlation=correlation,
        )
        self._move_through(instance, definition, token, node, is_activity=True)

    def _execute_receive_task(self, instance, definition, token, node: ReceiveTask) -> None:
        self._enter(instance, node, is_activity=True)
        self._await_message(
            instance,
            token,
            node,
            node.message_name,
            node.correlation_expression,
            is_activity=True,
        )

    def _execute_call_activity(self, instance, definition, token, node: CallActivity) -> None:
        self._enter(instance, node, is_activity=True)
        try:
            if node.input_mappings:
                child_variables = {
                    name: compile_expression(expr).evaluate(instance.variables)
                    for name, expr in node.input_mappings.items()
                }
            else:
                child_variables = dict(instance.variables)
        except ExpressionError as exc:
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        token.wait("child", node_id=node.id)
        self._schedule_boundary_timers(instance, definition, token, node)
        child = self._start_instance_internal(
            key=node.process_key,
            version=None,
            variables=child_variables,
            business_key=instance.business_key,
            parent_instance_id=instance.id,
            parent_token_id=token.id,
        )
        # record the linkage for recovery and diagnostics — unless the child
        # already completed synchronously and resumed this token
        if token.waiting_on.get("reason") == "child":
            token.waiting_on["child_id"] = child.id

    def _execute_multi_instance(
        self, instance, definition, token, node: MultiInstanceActivity
    ) -> None:
        self._enter(instance, node, is_activity=True)
        try:
            cardinality = compile_expression(node.cardinality_expression).evaluate(
                instance.variables
            )
        except ExpressionError as exc:
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        if isinstance(cardinality, bool) or not isinstance(cardinality, int) or cardinality < 0:
            self._handle_error(
                instance,
                definition,
                token,
                TECHNICAL_ERROR_CODE,
                f"multi-instance cardinality must be a non-negative integer, "
                f"got {cardinality!r}",
            )
            return

        if not node.wait_for_completion:
            # pattern 12: fire-and-forget — no parent link, token moves on
            for index in range(cardinality):
                variables = self._mi_child_variables(instance, definition, token, node, index)
                if variables is None:
                    return
                self._start_instance_internal(
                    key=node.process_key,
                    version=None,
                    variables=variables,
                    business_key=instance.business_key,
                    parent_instance_id=None,
                    parent_token_id=None,
                )
            self._move_through(
                instance, definition, token, node, is_activity=True,
                spawned=cardinality,
            )
            return

        if cardinality == 0:
            if node.output_collection is not None:
                instance.variables[node.output_collection] = []
            self._move_through(
                instance, definition, token, node, is_activity=True, spawned=0
            )
            return

        token.wait(
            "mi",
            node_id=node.id,
            remaining=cardinality,
            total=cardinality,
            next_index=1 if node.sequential else cardinality,
            children=[],
            collected=[],
        )
        self._schedule_boundary_timers(instance, definition, token, node)
        spawn = 1 if node.sequential else cardinality
        for index in range(spawn):
            if token.waiting_on.get("reason") != "mi":
                return  # all children finished synchronously mid-loop
            self._spawn_mi_child(instance, definition, token, node, index)

    def _mi_child_variables(
        self, instance, definition, token, node: MultiInstanceActivity, index: int
    ) -> dict[str, Any] | None:
        try:
            if node.input_mappings:
                variables = {
                    name: compile_expression(expr).evaluate(
                        {**instance.variables, "instance_index": index}
                    )
                    for name, expr in node.input_mappings.items()
                }
            else:
                variables = dict(instance.variables)
        except ExpressionError as exc:
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return None
        variables["instance_index"] = index
        return variables

    def _spawn_mi_child(
        self, instance, definition, token, node: MultiInstanceActivity, index: int
    ) -> None:
        variables = self._mi_child_variables(instance, definition, token, node, index)
        if variables is None:
            return
        child = self._start_instance_internal(
            key=node.process_key,
            version=None,
            variables=variables,
            business_key=instance.business_key,
            parent_instance_id=instance.id,
            parent_token_id=token.id,
        )
        if token.waiting_on.get("reason") == "mi":
            token.waiting_on["children"].append(child.id)

    def _on_mi_child_finished(
        self, parent, definition, token, node: MultiInstanceActivity, child, failed: bool
    ) -> None:
        """One child of a waiting multi-instance activity ended."""
        waiting = token.waiting_on
        if failed:
            children = list(waiting.get("children", ()))
            token.waiting_on = {}
            for child_id in children:
                sibling = self._instances.get(child_id)
                if sibling is not None and not sibling.state.is_finished:
                    self._terminate_instance_internal(sibling, "mi sibling failed")
            self._cancel_boundary_jobs(parent, token)
            self._handle_error(
                parent,
                definition,
                token,
                TECHNICAL_ERROR_CODE,
                f"multi-instance child {child.id!r} failed: {child.failure}",
            )
            self._advance(parent)
            return
        try:
            if node.output_mappings:
                result = {
                    name: compile_expression(expr).evaluate(child.variables)
                    for name, expr in node.output_mappings.items()
                }
            else:
                result = dict(child.variables)
        except ExpressionError as exc:
            token.waiting_on = {}
            self._cancel_boundary_jobs(parent, token)
            self._handle_error(parent, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            self._advance(parent)
            return
        waiting["collected"].append(result)
        waiting["remaining"] -= 1
        if waiting["remaining"] > 0:
            if node.sequential:
                next_index = waiting["next_index"]
                waiting["next_index"] += 1
                self._spawn_mi_child(parent, definition, token, node, next_index)
            return
        # all children done
        collected = waiting["collected"]
        token.waiting_on = {}
        self._cancel_boundary_jobs(parent, token)
        if node.output_collection is not None:
            parent.variables[node.output_collection] = collected
        self._record(
            parent,
            EventTypes.NODE_COMPLETED,
            node_id=node.id,
            is_activity=True,
            children=waiting.get("total"),
        )
        flow = self._single_outgoing(definition, node)
        token.resume(flow.target, arrived_via=flow.id)
        self._advance(parent)

    # -- gateways ------------------------------------------------------------------------

    def _execute_exclusive(self, instance, definition, token, node: ExclusiveGateway) -> None:
        self._enter(instance, node, is_activity=False)
        try:
            flow = self._select_exclusive_flow(definition, node, instance.variables)
        except (NoFlowSelectedError, ExpressionError) as exc:
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        self._record(
            instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False,
            selected_flow=flow.id,
        )
        token.resume(flow.target, arrived_via=flow.id)

    def _select_exclusive_flow(
        self,
        definition: ProcessDefinition,
        node: Node,
        variables: dict[str, Any],
    ) -> SequenceFlow:
        outgoing = definition.outgoing(node.id)
        if len(outgoing) == 1:
            return outgoing[0]
        default = None
        for flow in outgoing:
            if flow.is_default:
                default = flow
                continue
            if flow.condition is None:
                return flow  # unguarded: always true (validator warns)
            if compile_expression(flow.condition).evaluate_bool(variables):
                return flow
        if default is not None:
            return default
        raise NoFlowSelectedError(node.id, variables)

    def _execute_parallel(self, instance, definition, token, node: ParallelGateway) -> None:
        incoming = definition.incoming(node.id)
        outgoing = definition.outgoing(node.id)
        if len(incoming) > 1:
            # join side: wait for one token per incoming flow
            arrived = {
                t.arrived_via
                for t in instance.tokens_at(node.id)
                if t.arrived_via is not None
                and (t is token or t.waiting_on.get("reason") == "join")
            }
            if arrived < {f.id for f in incoming}:
                token.wait("join", node_id=node.id)
                return
            # all partners present: consume them, keep this token
            self._enter(instance, node, is_activity=False)
            for other in list(instance.tokens_at(node.id)):
                if other is not token:
                    instance.remove_token(other)
        else:
            self._enter(instance, node, is_activity=False)
        self._record(
            instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
        )
        first, *rest = outgoing
        for flow in rest:
            instance.new_token(flow.target, arrived_via=flow.id)
        token.resume(first.target, arrived_via=first.id)

    def _execute_inclusive(self, instance, definition, token, node: InclusiveGateway) -> None:
        incoming = definition.incoming(node.id)
        outgoing = definition.outgoing(node.id)
        if len(incoming) > 1:
            if not self._inclusive_join_ready(instance, definition, node, token):
                token.wait("join", node_id=node.id)
                return
            self._enter(instance, node, is_activity=False)
            for other in list(instance.tokens_at(node.id)):
                if other is not token:
                    instance.remove_token(other)
        else:
            self._enter(instance, node, is_activity=False)
        if len(outgoing) == 1:
            self._record(
                instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False
            )
            flow = outgoing[0]
            token.resume(flow.target, arrived_via=flow.id)
            return
        # split: activate every flow whose guard holds; default if none
        try:
            chosen = []
            default = None
            for flow in outgoing:
                if flow.is_default:
                    default = flow
                    continue
                if flow.condition is None or compile_expression(
                    flow.condition
                ).evaluate_bool(instance.variables):
                    chosen.append(flow)
            if not chosen:
                if default is None:
                    raise NoFlowSelectedError(node.id, instance.variables)
                chosen = [default]
        except (NoFlowSelectedError, ExpressionError) as exc:
            self._handle_error(instance, definition, token, TECHNICAL_ERROR_CODE, str(exc))
            return
        self._record(
            instance, EventTypes.NODE_COMPLETED, node_id=node.id, is_activity=False,
            selected_flows=[f.id for f in chosen],
        )
        first, *rest = chosen
        for flow in rest:
            instance.new_token(flow.target, arrived_via=flow.id)
        token.resume(first.target, arrived_via=first.id)

    def _inclusive_join_ready(
        self,
        instance: ProcessInstance,
        definition: ProcessDefinition,
        node: Node,
        arriving: Token,
    ) -> bool:
        """OR-join: ready when no token elsewhere can still reach the join."""
        for other in instance.tokens:
            if other is arriving:
                continue
            if other.node_id == node.id:
                continue  # already here, will be merged
            if self._can_reach(definition, other.node_id, node.id):
                return False
        return True

    def _execute_event_gateway(self, instance, definition, token, node: EventBasedGateway) -> None:
        self._enter(instance, node, is_activity=False)
        job_ids: list[str] = []
        wait_count = 0
        for flow in definition.outgoing(node.id):
            target = definition.node(flow.target)
            if isinstance(target, IntermediateTimerEvent):
                job = self.scheduler.schedule(
                    self.clock.now() + target.duration,
                    "event_race_timer",
                    instance.id,
                    {
                        "token_id": token.id,
                        "gateway_id": node.id,
                        "event_id": target.id,
                    },
                )
                job_ids.append(job.id)
            elif isinstance(target, (IntermediateMessageEvent, ReceiveTask)):
                correlation, match_any = self._correlation_of(
                    target.correlation_expression, instance.variables
                )
                self._message_waits.append(
                    {
                        "instance_id": instance.id,
                        "token_id": token.id,
                        "name": target.message_name,
                        "correlation": correlation,
                        "match_any": match_any,
                        "race_gateway": node.id,
                        "race_event": target.id,
                    }
                )
                self._waits_dirty = True
                wait_count += 1
            else:
                raise EngineError(
                    f"event gateway {node.id!r} leads to non-catch node {target.id!r}"
                )
        if not job_ids and not wait_count:
            raise EngineError(f"event gateway {node.id!r} has nothing to wait for")
        token.wait("event_race", gateway_id=node.id, job_ids=job_ids)
        # a raced message may already be retained on the bus — try immediately
        self._try_retained_for_race(instance, definition, token)

    def _try_retained_for_race(self, instance, definition, token) -> None:
        for wait in [w for w in self._message_waits if w["token_id"] == token.id
                     and w["instance_id"] == instance.id]:
            message = self.bus.consume_retained(
                wait["name"], wait.get("correlation"), wait.get("match_any", False)
            )
            if message is not None:
                # count the delivery: this path bypasses _deliver_to_wait
                self.metrics.messages_delivered += 1
                self._deliver_race_message(instance, definition, token, wait, message.payload)
                return

    # -- boundary events --------------------------------------------------------------------

    def _schedule_boundary_timers(
        self, instance, definition: ProcessDefinition, token: Token, node: Node
    ) -> None:
        for boundary in definition.boundary_events_of(node.id):
            if boundary.kind == "timer":
                self.scheduler.schedule(
                    self.clock.now() + boundary.duration,
                    "boundary_timer",
                    instance.id,
                    {"token_id": token.id, "boundary_id": boundary.id},
                )

    def _cancel_boundary_jobs(self, instance: ProcessInstance, token: Token) -> None:
        self.scheduler.cancel_where(
            lambda job: job.kind == "boundary_timer"
            and job.instance_id == instance.id
            and job.data.get("token_id") == token.id
        )

    def _trigger_boundary(
        self,
        instance: ProcessInstance,
        definition: ProcessDefinition,
        boundary: BoundaryEvent,
        token: Token,
        detail: str = "",
    ) -> None:
        """Interrupt the host activity and route the token via the boundary."""
        self._record(
            instance,
            EventTypes.BOUNDARY_TRIGGERED,
            node_id=boundary.id,
            attached_to=boundary.attached_to,
            kind=boundary.kind,
            detail=detail,
        )
        self._record(
            instance,
            EventTypes.NODE_CANCELLED,
            node_id=boundary.attached_to,
            is_activity=True,
        )
        self._release_waits(instance, token)
        flow = self._single_outgoing(definition, boundary)
        token.resume(flow.target, arrived_via=flow.id)

    def _handle_error(
        self,
        instance: ProcessInstance,
        definition: ProcessDefinition,
        token: Token,
        code: str,
        detail: str,
    ) -> None:
        """Route an error to a matching boundary event or fail the instance."""
        node = definition.nodes.get(token.node_id)
        if node is not None:
            boundaries = definition.boundary_events_of(node.id)
            match = next(
                (b for b in boundaries if b.kind == "error" and b.error_code == code),
                None,
            ) or next(
                (b for b in boundaries if b.kind == "error" and b.error_code is None),
                None,
            )
            if match is not None:
                self._trigger_boundary(instance, definition, match, token, detail=detail)
                return
        self._fail_instance(instance, f"{code}: {detail}")

    # -- messages ------------------------------------------------------------------------------

    def _correlation_of(
        self, expression: str | None, variables: dict[str, Any]
    ) -> tuple[Any, bool]:
        """Evaluate a correlation expression; (value, match_any)."""
        if expression is None:
            return None, True
        return compile_expression(expression).evaluate(variables), False

    def _await_message(
        self,
        instance: ProcessInstance,
        token: Token,
        node: Node,
        message_name: str,
        correlation_expression: str | None,
        is_activity: bool,
    ) -> None:
        correlation, match_any = self._correlation_of(
            correlation_expression, instance.variables
        )
        retained = self.bus.consume_retained(message_name, correlation, match_any)
        if retained is not None:
            # a retained message satisfying the wait *is* a delivery — count
            # it like the live-subscription path does
            self.metrics.messages_delivered += 1
            self._apply_message(instance, node, retained.payload)
            definition = self._definition_of(instance)
            self._move_through(
                instance, definition, token, node, is_activity=is_activity
            )
            return
        self._message_waits.append(
            {
                "instance_id": instance.id,
                "token_id": token.id,
                "name": message_name,
                "correlation": correlation,
                "match_any": match_any,
                "node_id": node.id,
                "is_activity": is_activity,
            }
        )
        self._waits_dirty = True
        token.wait(
            "message",
            message_name=message_name,
            correlation=correlation,
            node_id=node.id,
        )

    def _apply_message(
        self, instance: ProcessInstance, node: Node, payload: dict[str, Any]
    ) -> None:
        if payload:
            instance.variables.update(payload)
        self._record(
            instance,
            EventTypes.MESSAGE_RECEIVED,
            node_id=node.id,
            payload_keys=sorted(payload.keys()),
        )

    def _deliver_race_message(
        self,
        instance: ProcessInstance,
        definition: ProcessDefinition,
        token: Token,
        wait: dict[str, Any],
        payload: dict[str, Any],
    ) -> None:
        """A raced catch event won via message: settle the race."""
        event = definition.node(wait["race_event"])
        self._settle_race(instance, token)
        self._apply_message(instance, event, payload)
        self._enter(instance, event, is_activity=False)
        self._move_through(instance, definition, token, event, is_activity=False)
        self._advance(instance)

    def _settle_race(self, instance: ProcessInstance, token: Token) -> None:
        """Cancel all pending subscriptions of an event race."""
        job_ids = set(token.waiting_on.get("job_ids", ()))
        for job_id in job_ids:
            self.scheduler.cancel(job_id)
        kept = [
            w
            for w in self._message_waits
            if not (w["instance_id"] == instance.id and w["token_id"] == token.id)
        ]
        if len(kept) != len(self._message_waits):
            self._waits_dirty = True
        self._message_waits = kept

    # -- token cancellation ------------------------------------------------------------------------

    def _release_waits(self, instance: ProcessInstance, token: Token) -> None:
        """Cancel everything a waiting token is parked on."""
        reason = token.waiting_on.get("reason")
        if reason == "user_task":
            item_id = token.waiting_on.get("work_item_id")
            if item_id is not None:
                try:
                    item = self.worklist.item(item_id)
                except Exception:  # noqa: BLE001 - already gone is fine
                    item = None
                if item is not None and not item.state.is_terminal:
                    self.worklist.cancel(item_id)
        elif reason == "timer":
            job_id = token.waiting_on.get("job_id")
            if job_id is not None:
                self.scheduler.cancel(job_id)
        elif reason == "message":
            kept = [
                w
                for w in self._message_waits
                if not (
                    w["instance_id"] == instance.id and w["token_id"] == token.id
                )
            ]
            if len(kept) != len(self._message_waits):
                self._waits_dirty = True
            self._message_waits = kept
        elif reason == "event_race":
            self._settle_race(instance, token)
        elif reason == "child":
            child_id = token.waiting_on.get("child_id")
            # clear the linkage FIRST so the child's completion callback
            # cannot resume the token we are cancelling
            token.waiting_on = {}
            if child_id is not None:
                child = self._instances.get(child_id)
                if child is not None and not child.state.is_finished:
                    self._terminate_instance_internal(child, "parent cancelled")
        elif reason == "mi":
            children = list(token.waiting_on.get("children", ()))
            token.waiting_on = {}
            for child_id in children:
                child = self._instances.get(child_id)
                if child is not None and not child.state.is_finished:
                    self._terminate_instance_internal(child, "parent cancelled")
        self._cancel_boundary_jobs(instance, token)
        token.waiting_on = {}

    def _cancel_token(
        self, instance: ProcessInstance, token: Token, reason: str
    ) -> None:
        self._release_waits(instance, token)
        self._record(
            instance,
            EventTypes.NODE_CANCELLED,
            node_id=token.node_id,
            is_activity=isinstance(
                self._definition_of(instance).nodes.get(token.node_id), ACTIVITY_TYPES
            ),
            detail=reason,
        )
        instance.remove_token(token)

    # -- static reachability cache ---------------------------------------------------------------------

    def _can_reach(
        self, definition: ProcessDefinition, source: str, target: str
    ) -> bool:
        """Static flow-graph reachability (includes boundary attachments)."""
        cache = self._reach_cache.setdefault(definition.identifier, {})
        key = (source, target)
        cached = cache.get(key)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [source]
        found = False
        while stack:
            node_id = stack.pop()
            if node_id == target:
                found = True
                break
            if node_id in seen:
                continue
            seen.add(node_id)
            for flow in definition.outgoing(node_id):
                stack.append(flow.target)
            for boundary in definition.boundary_events_of(node_id):
                stack.append(boundary.id)
        cache[key] = found
        return found

    # -- dispatch table ----------------------------------------------------------------------------------

    _HANDLERS = {
        StartEvent: _execute_start,
        EndEvent: _execute_end,
        IntermediateTimerEvent: _execute_timer_event,
        IntermediateMessageEvent: _execute_message_event,
        UserTask: _execute_user_task,
        ManualTask: _execute_manual_task,
        ScriptTask: _execute_script_task,
        ServiceTask: _execute_service_task,
        BusinessRuleTask: _execute_business_rule_task,
        SendTask: _execute_send_task,
        ReceiveTask: _execute_receive_task,
        CallActivity: _execute_call_activity,
        MultiInstanceActivity: _execute_multi_instance,
        ExclusiveGateway: _execute_exclusive,
        ParallelGateway: _execute_parallel,
        InclusiveGateway: _execute_inclusive,
        EventBasedGateway: _execute_event_gateway,
    }
