"""The interpreter core: token-game execution until quiescence.

This module is the shared runtime half of the engine: the advance loop,
token movement, boundary-event routing, message waits, and cancellation.
Node *semantics* live in per-family executor modules under
:mod:`repro.engine.executors`, resolved through the node-type → executor
registry — the old ``ExecutionMixin`` god-class is gone.

Every function takes the engine as its first argument; nothing here
holds state.  All calls happen under the engine's dispatch serialization
gate (see :mod:`repro.engine.dispatch`), so the interpreter remains a
logical single writer even with concurrent clients.
"""

from __future__ import annotations

from typing import Any

from repro.engine.errors import EngineError, NoFlowSelectedError
from repro.engine.executors.registry import EXECUTORS
from repro.engine.instance import InstanceState, ProcessInstance, Token, TokenState
from repro.expr import compile_expression
from repro.history.events import EventTypes
from repro.model.elements import ACTIVITY_TYPES, BoundaryEvent, Node, SequenceFlow
from repro.model.process import ProcessDefinition

#: error code the engine synthesizes for technical (non-BPMN) failures.
TECHNICAL_ERROR_CODE = "TECHNICAL_FAILURE"


# -- main loop ---------------------------------------------------------------


def advance(engine, instance: ProcessInstance) -> None:
    """Run the instance until quiescence.

    Re-entrant calls (a child completing synchronously, a message
    delivered to the same instance mid-step) are absorbed: the
    outermost frame keeps draining active tokens.
    """
    if instance.state is not InstanceState.RUNNING:
        return
    if instance.id in engine._advancing:
        return
    engine._advancing.add(instance.id)
    try:
        definition = engine._definition_of(instance)
        steps = 0
        while instance.state is InstanceState.RUNNING:
            active = instance.active_tokens()
            if not active:
                break
            steps += 1
            if steps > engine.max_steps:
                engine._fail_instance(
                    instance,
                    f"step budget ({engine.max_steps}) exhausted — livelock?",
                )
                break
            engine._c_token_moves.inc()
            execute_token(engine, instance, definition, active[0])
        if instance.state is InstanceState.RUNNING and not instance.tokens:
            engine._complete_instance(instance)
    finally:
        engine._advancing.discard(instance.id)
    engine._dirty.add(instance.id)


def execute_token(
    engine, instance: ProcessInstance, definition: ProcessDefinition, token: Token
) -> None:
    """Execute one active token's node via the executor registry."""
    node = definition.node(token.node_id)
    handler = EXECUTORS.get(type(node))
    if handler is None:
        raise EngineError(f"no executor for node type {type(node).__name__}")
    tracer = engine._tracer
    if not tracer.enabled:
        handler(engine, instance, definition, token, node)
        return
    # manual span lifecycle (no context-manager dispatch): this is the
    # hottest instrumented site in the engine — benchmark F7 holds the
    # enabled path under 10% of the per-node budget
    span = tracer.span(
        "node",
        parent=engine._instance_spans.get(instance.id),
        node_id=node.id,
        node_type=node.type_name,
    )
    stack = tracer._stack
    stack.append(span)
    try:
        handler(engine, instance, definition, token, node)
    except BaseException:
        if stack and stack[-1] is span:
            stack.pop()
        span.finish("error")
        raise
    else:
        if stack and stack[-1] is span:
            stack.pop()
        span.end = tracer._now()
        if span.status == "unset":
            span.status = "ok"
        for exporter in tracer.exporters:
            exporter.export(span)


# -- movement helpers ----------------------------------------------------------


def single_outgoing(definition: ProcessDefinition, node: Node) -> SequenceFlow:
    outgoing = definition.outgoing(node.id)
    if len(outgoing) != 1:
        raise EngineError(
            f"node {node.id!r} needs exactly one outgoing flow, has {len(outgoing)}"
        )
    return outgoing[0]


def move_through(
    engine,
    instance: ProcessInstance,
    definition: ProcessDefinition,
    token: Token,
    node: Node,
    is_activity: bool,
    **event_data: Any,
) -> None:
    """Complete a 1-out node and move the token along its flow."""
    engine._record(
        instance,
        EventTypes.NODE_COMPLETED,
        node_id=node.id,
        is_activity=is_activity,
        **event_data,
    )
    if is_activity:
        record_compensation(engine, instance, node)
    flow = single_outgoing(definition, node)
    token.resume(flow.target, arrived_via=flow.id)


def record_compensation(engine, instance: ProcessInstance, node: Node) -> None:
    """Log a completed activity's compensation handler for later undo.

    The entry joins the instance's persisted ``compensations`` list (same
    record as the token state, same group commit), so the saga log
    survives a crash exactly as far as the completion it describes.
    """
    handler_id = getattr(node, "compensation_handler", None)
    if handler_id is None:
        return
    instance.compensations.append(
        {"node_id": node.id, "handler_id": handler_id}
    )


def enter(
    engine,
    instance: ProcessInstance,
    node: Node,
    is_activity: bool,
    **event_data: Any,
) -> None:
    engine.metrics.count_node(node.type_name)
    tracer = engine._tracer
    if tracer.enabled:
        stack = tracer._stack
        if stack:
            # direct write, not .set(): this runs once per executed node
            stack[-1].attributes["entered"] = True
    engine._record(
        instance,
        EventTypes.NODE_ENTERED,
        node_id=node.id,
        is_activity=is_activity,
        **event_data,
    )


def performers_of(
    engine, instance: ProcessInstance, node_ids: tuple[str, ...]
) -> set[str]:
    """Resources who completed any of the named nodes in this instance."""
    wanted = set(node_ids)
    return {
        event.data["resource"]
        for event in engine.history.instance_events(instance.id)
        if event.type == EventTypes.NODE_COMPLETED
        and event.data.get("node_id") in wanted
        and event.data.get("resource")
    }


# -- boundary events --------------------------------------------------------------


def schedule_boundary_timers(
    engine, instance: ProcessInstance, definition: ProcessDefinition,
    token: Token, node: Node,
) -> None:
    for boundary in definition.boundary_events_of(node.id):
        if boundary.kind == "timer":
            engine.scheduler.schedule(
                engine.clock.now() + boundary.duration,
                "boundary_timer",
                instance.id,
                {"token_id": token.id, "boundary_id": boundary.id},
            )


def cancel_boundary_jobs(engine, instance: ProcessInstance, token: Token) -> None:
    engine.scheduler.cancel_where(
        lambda job: job.kind == "boundary_timer"
        and job.instance_id == instance.id
        and job.data.get("token_id") == token.id
    )


def trigger_boundary(
    engine,
    instance: ProcessInstance,
    definition: ProcessDefinition,
    boundary: BoundaryEvent,
    token: Token,
    detail: str = "",
) -> None:
    """Interrupt the host activity and route the token via the boundary."""
    engine._record(
        instance,
        EventTypes.BOUNDARY_TRIGGERED,
        node_id=boundary.id,
        attached_to=boundary.attached_to,
        kind=boundary.kind,
        detail=detail,
    )
    engine._record(
        instance,
        EventTypes.NODE_CANCELLED,
        node_id=boundary.attached_to,
        is_activity=True,
    )
    release_waits(engine, instance, token)
    flow = single_outgoing(definition, boundary)
    token.resume(flow.target, arrived_via=flow.id)


def handle_error(
    engine,
    instance: ProcessInstance,
    definition: ProcessDefinition,
    token: Token,
    code: str,
    detail: str,
) -> None:
    """Route an error to a matching boundary event or fail the instance."""
    node = definition.nodes.get(token.node_id)
    if node is not None:
        boundaries = definition.boundary_events_of(node.id)
        match = next(
            (b for b in boundaries if b.kind == "error" and b.error_code == code),
            None,
        ) or next(
            (b for b in boundaries if b.kind == "error" and b.error_code is None),
            None,
        )
        if match is not None:
            trigger_boundary(engine, instance, definition, match, token, detail=detail)
            return
    engine._fail_instance(instance, f"{code}: {detail}")


# -- messages ------------------------------------------------------------------------------


def correlation_of(
    expression: str | None, variables: dict[str, Any]
) -> tuple[Any, bool]:
    """Evaluate a correlation expression; (value, match_any)."""
    if expression is None:
        return None, True
    return compile_expression(expression).evaluate(variables), False


def await_message(
    engine,
    instance: ProcessInstance,
    token: Token,
    node: Node,
    message_name: str,
    correlation_expression: str | None,
    is_activity: bool,
) -> None:
    correlation, match_any = correlation_of(
        correlation_expression, instance.variables
    )
    retained = engine.bus.consume_retained(message_name, correlation, match_any)
    if retained is not None:
        # a retained message satisfying the wait *is* a delivery — count
        # it like the live-subscription path does
        engine.metrics.messages_delivered += 1
        apply_message(engine, instance, node, retained.payload)
        definition = engine._definition_of(instance)
        move_through(engine, instance, definition, token, node, is_activity=is_activity)
        return
    engine._message_waits.append(
        {
            "instance_id": instance.id,
            "token_id": token.id,
            "name": message_name,
            "correlation": correlation,
            "match_any": match_any,
            "node_id": node.id,
            "is_activity": is_activity,
        }
    )
    engine._waits_dirty = True
    token.wait(
        "message",
        message_name=message_name,
        correlation=correlation,
        node_id=node.id,
    )


def apply_message(
    engine, instance: ProcessInstance, node: Node, payload: dict[str, Any]
) -> None:
    if payload:
        instance.variables.update(payload)
    engine._record(
        instance,
        EventTypes.MESSAGE_RECEIVED,
        node_id=node.id,
        payload_keys=sorted(payload.keys()),
    )


def deliver_race_message(
    engine,
    instance: ProcessInstance,
    definition: ProcessDefinition,
    token: Token,
    wait: dict[str, Any],
    payload: dict[str, Any],
) -> None:
    """A raced catch event won via message: settle the race."""
    event = definition.node(wait["race_event"])
    settle_race(engine, instance, token)
    apply_message(engine, instance, event, payload)
    enter(engine, instance, event, is_activity=False)
    move_through(engine, instance, definition, token, event, is_activity=False)
    advance(engine, instance)


def settle_race(engine, instance: ProcessInstance, token: Token) -> None:
    """Cancel all pending subscriptions of an event race."""
    job_ids = set(token.waiting_on.get("job_ids", ()))
    for job_id in job_ids:
        engine.scheduler.cancel(job_id)
    kept = [
        w
        for w in engine._message_waits
        if not (w["instance_id"] == instance.id and w["token_id"] == token.id)
    ]
    if len(kept) != len(engine._message_waits):
        engine._waits_dirty = True
    engine._message_waits = kept


# -- token cancellation ------------------------------------------------------------------------


def release_waits(engine, instance: ProcessInstance, token: Token) -> None:
    """Cancel everything a waiting token is parked on."""
    reason = token.waiting_on.get("reason")
    if reason == "user_task":
        item_id = token.waiting_on.get("work_item_id")
        if item_id is not None:
            try:
                item = engine.worklist.item(item_id)
            except Exception:  # noqa: BLE001 - already gone is fine
                item = None
            if item is not None and not item.state.is_terminal:
                engine.worklist.cancel(item_id)
    elif reason == "timer":
        job_id = token.waiting_on.get("job_id")
        if job_id is not None:
            engine.scheduler.cancel(job_id)
    elif reason == "message":
        kept = [
            w
            for w in engine._message_waits
            if not (
                w["instance_id"] == instance.id and w["token_id"] == token.id
            )
        ]
        if len(kept) != len(engine._message_waits):
            engine._waits_dirty = True
        engine._message_waits = kept
    elif reason == "event_race":
        settle_race(engine, instance, token)
    elif reason == "service":
        # pooled invocation: drop the pending record so its completion
        # (possibly already executing) lands as a counted duplicate
        invocation_id = token.waiting_on.get("invocation_id")
        if invocation_id is not None:
            engine._drop_invocation(invocation_id)
    elif reason == "child":
        child_id = token.waiting_on.get("child_id")
        # clear the linkage FIRST so the child's completion callback
        # cannot resume the token we are cancelling
        token.waiting_on = {}
        if child_id is not None:
            child = engine._instances.get(child_id)
            if child is not None and not child.state.is_finished:
                engine._terminate_instance_internal(child, "parent cancelled")
    elif reason == "mi":
        children = list(token.waiting_on.get("children", ()))
        token.waiting_on = {}
        for child_id in children:
            child = engine._instances.get(child_id)
            if child is not None and not child.state.is_finished:
                engine._terminate_instance_internal(child, "parent cancelled")
    cancel_boundary_jobs(engine, instance, token)
    token.waiting_on = {}


def cancel_token(
    engine, instance: ProcessInstance, token: Token, reason: str
) -> None:
    release_waits(engine, instance, token)
    engine._record(
        instance,
        EventTypes.NODE_CANCELLED,
        node_id=token.node_id,
        is_activity=isinstance(
            engine._definition_of(instance).nodes.get(token.node_id), ACTIVITY_TYPES
        ),
        detail=reason,
    )
    instance.remove_token(token)


# -- static reachability cache ---------------------------------------------------------------------


def can_reach(
    engine, definition: ProcessDefinition, source: str, target: str
) -> bool:
    """Static flow-graph reachability (includes boundary attachments)."""
    cache = engine._reach_cache.setdefault(definition.identifier, {})
    key = (source, target)
    cached = cache.get(key)
    if cached is not None:
        return cached
    seen: set[str] = set()
    stack = [source]
    found = False
    while stack:
        node_id = stack.pop()
        if node_id == target:
            found = True
            break
        if node_id in seen:
            continue
        seen.add(node_id)
        for flow in definition.outgoing(node_id):
            stack.append(flow.target)
        for boundary in definition.boundary_events_of(node_id):
            stack.append(boundary.id)
    cache[key] = found
    return found


def _select_exclusive_flow(
    definition: ProcessDefinition,
    node: Node,
    variables: dict[str, Any],
) -> SequenceFlow:
    """XOR flow selection (shared with migration sanity checks/tests)."""
    outgoing = definition.outgoing(node.id)
    if len(outgoing) == 1:
        return outgoing[0]
    default = None
    for flow in outgoing:
        if flow.is_default:
            default = flow
            continue
        if flow.condition is None:
            return flow  # unguarded: always true (validator warns)
        if compile_expression(flow.condition).evaluate_bool(variables):
            return flow
    if default is not None:
        return default
    raise NoFlowSelectedError(node.id, variables)
