"""Typed engine commands: the only way external clients mutate state.

Every public mutation entry point of :class:`~repro.engine.engine.
ProcessEngine` constructs one of these dataclasses and hands it to
``engine.dispatch(cmd)``; the dispatch pipeline (see :mod:`repro.engine.
dispatch`) supplies serialization, idempotency, observability, history,
and the commit policy uniformly, so the commands themselves are pure
data.

Commands are *serializable*: :meth:`Command.to_dict` /
:func:`command_from_dict` round-trip every command through JSON-safe
dicts, which is what the persisted dispatch log stores and what the
concurrent-dispatch stress tests replay.

Taxonomy
--------

*Externally-originated* commands (``external = True``) come from clients
the engine cannot trust to call exactly once — worklist handlers, message
gateways, admin consoles.  They accept an optional ``dedup_key``: two
dispatches with the same key apply once, the second returning the
recorded result (see the idempotency middleware).  *Internal* commands
(``RunDueJobs``, ``AdvanceTime``) originate from the owning driver loop
and carry no dedup key.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar

#: name -> command class, populated by :func:`register_command`.
COMMAND_TYPES: dict[str, type["Command"]] = {}


def register_command(cls: type["Command"]) -> type["Command"]:
    """Class decorator adding a command type to the registry."""
    if not cls.name:
        raise ValueError(f"command class {cls.__name__} has no name")
    if cls.name in COMMAND_TYPES:
        raise ValueError(f"duplicate command name {cls.name!r}")
    COMMAND_TYPES[cls.name] = cls
    return cls


@dataclass(frozen=True)
class Command:
    """Base of all engine commands (pure data; no behaviour)."""

    #: wire/registry name, e.g. ``"start_instance"``.
    name: ClassVar[str] = ""
    #: True for client-originated commands that accept a ``dedup_key``.
    external: ClassVar[bool] = False

    # non-external commands have no dedup field; this class attribute is
    # shadowed by a real dataclass field on external command types
    dedup_key = None  # type: str | None

    def loggable(self, result: Any) -> bool:
        """Whether a successful dispatch is worth a dispatch-log entry.

        Default: always.  Pump commands override this so an *idle* pump
        (nothing due, nothing dirty) stays a true read-only call — zero
        store writes, zero history growth.
        """
        return True

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation, ``{"command": name, **fields}``.

        Shallow on purpose: command fields are scalars or one-level dicts
        (``variables``, ``payload``, ...), and ``dataclasses.asdict``'s
        recursive deep copy is measurable on the dispatch hot path.
        """
        payload: dict[str, Any] = {"command": self.name}
        for field_name in self.__dataclass_fields__:
            value = getattr(self, field_name)
            payload[field_name] = dict(value) if isinstance(value, dict) else value
        return payload

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Command":
        """Rebuild a command of this type from :meth:`to_dict` output."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in raw.items() if k in names})


def command_from_dict(raw: dict[str, Any]) -> Command:
    """Rebuild any registered command from its :meth:`Command.to_dict`."""
    try:
        cls = COMMAND_TYPES[raw["command"]]
    except KeyError:
        raise ValueError(f"unknown command type {raw.get('command')!r}") from None
    return cls.from_dict(raw)


# -- deployment ---------------------------------------------------------------


@register_command
@dataclass(frozen=True)
class DeployDefinition(Command):
    """Deploy a process definition (admin-tool interface)."""

    name: ClassVar[str] = "deploy_definition"

    definition: Any = None  # ProcessDefinition
    verify: bool | None = None
    force: bool = False
    #: the definition already passed the full static analysis in this
    #: deployment (set by the cluster layer when fanning a verified deploy
    #: out to its remaining shards); registration skips re-analysis
    pre_verified: bool = False

    def to_dict(self) -> dict[str, Any]:
        from repro.model.serialization import definition_to_dict

        return {
            "command": self.name,
            "definition": definition_to_dict(self.definition),
            "verify": self.verify,
            "force": self.force,
            "pre_verified": self.pre_verified,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "DeployDefinition":
        from repro.model.serialization import definition_from_dict

        definition = raw.get("definition")
        if isinstance(definition, dict):
            definition = definition_from_dict(definition)
        return cls(
            definition=definition,
            verify=raw.get("verify"),
            force=raw.get("force", False),
            pre_verified=raw.get("pre_verified", False),
        )


# -- instance lifecycle -------------------------------------------------------


@register_command
@dataclass(frozen=True)
class StartInstance(Command):
    """Create and advance a new instance of a deployed definition."""

    name: ClassVar[str] = "start_instance"
    external: ClassVar[bool] = True

    key: str = ""
    variables: dict[str, Any] = field(default_factory=dict)
    business_key: str | None = None
    version: int | None = None
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class TerminateInstance(Command):
    """Administratively cancel a running instance."""

    name: ClassVar[str] = "terminate_instance"
    external: ClassVar[bool] = True

    instance_id: str = ""
    reason: str = "user request"
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class CompensateInstance(Command):
    """Run the instance's compensation handlers in reverse order (saga).

    Each completed activity carrying a ``compensation_handler`` pushed an
    entry onto the instance's compensation log; this command pops and runs
    them newest-first, so a half-done business transaction is undone in
    the opposite order it was done.
    """

    name: ClassVar[str] = "compensate_instance"
    external: ClassVar[bool] = True

    instance_id: str = ""
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class SuspendInstance(Command):
    """Pause an instance: waiting triggers defer until resume."""

    name: ClassVar[str] = "suspend_instance"
    external: ClassVar[bool] = True

    instance_id: str = ""
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class ResumeInstance(Command):
    """Resume a suspended instance and advance it."""

    name: ClassVar[str] = "resume_instance"
    external: ClassVar[bool] = True

    instance_id: str = ""
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class MigrateInstance(Command):
    """Move a running instance to another deployed version."""

    name: ClassVar[str] = "migrate_instance"
    external: ClassVar[bool] = True

    instance_id: str = ""
    target_version: int = 0
    #: ``{old_node_id: new_node_id}``; identity mapping when empty
    node_mapping: dict[str, str] = field(default_factory=dict)
    dedup_key: str | None = None


# -- work items (worklist-handler interface) ----------------------------------


@register_command
@dataclass(frozen=True)
class ClaimWorkItem(Command):
    """A resource pulls an offered item from its role queue."""

    name: ClassVar[str] = "claim_work_item"
    external: ClassVar[bool] = True

    item_id: str = ""
    resource_id: str = ""
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class StartWorkItem(Command):
    """The allocated resource begins work on an item."""

    name: ClassVar[str] = "start_work_item"
    external: ClassVar[bool] = True

    item_id: str = ""
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class CompleteWorkItem(Command):
    """Complete a started work item; the owning token advances."""

    name: ClassVar[str] = "complete_work_item"
    external: ClassVar[bool] = True

    item_id: str = ""
    result: dict[str, Any] = field(default_factory=dict)
    dedup_key: str | None = None


# -- messages -----------------------------------------------------------------


@register_command
@dataclass(frozen=True)
class CorrelateMessage(Command):
    """Publish an external message into the engine's bus."""

    name: ClassVar[str] = "correlate_message"
    external: ClassVar[bool] = True

    message_name: str = ""
    correlation: Any = None
    payload: dict[str, Any] = field(default_factory=dict)
    dedup_key: str | None = None

    def loggable(self, result: Any) -> bool:
        # a publish that found no waiting receiver only parks the message
        # in the bus's in-memory retained buffer — no engine record
        # changed, so logging it would turn a miss into a store write.
        # Deliveries leave the advanced instance dirty, and the dispatch
        # log middleware's dirty-state fallback logs those; a dedup-keyed
        # publish is always logged so the idempotency window survives
        # recovery.
        return self.dedup_key is not None


# -- asynchronous service execution (worker-pool interface) -------------------


@register_command
@dataclass(frozen=True)
class CompleteServiceInvocation(Command):
    """Report a pooled service invocation's outcome.

    Dispatched by worker-pool threads (and by clients retrying on their
    behalf), so it is external and idempotent twice over: the standard
    ``dedup_key`` window, plus the pending-invocation table — a completion
    whose record is already resolved is a recorded no-op, which is what
    makes the enqueue/execute/complete cycle at-least-once in execution
    but exactly-once in effect.
    """

    name: ClassVar[str] = "complete_service_invocation"
    external: ClassVar[bool] = True

    invocation_id: str = ""
    #: ``"success"`` | ``"failure"`` (retries exhausted) | ``"bpmn_error"``
    outcome: str = "success"
    value: Any = None
    error: str | None = None
    error_code: str | None = None
    attempts: int = 0
    dedup_key: str | None = None


@register_command
@dataclass(frozen=True)
class RequeueDeadLetter(Command):
    """Move a dead-lettered invocation back onto its service queue."""

    name: ClassVar[str] = "requeue_dead_letter"
    external: ClassVar[bool] = True

    invocation_id: str = ""
    dedup_key: str | None = None


# -- time (driver-loop interface) ---------------------------------------------


@register_command
@dataclass(frozen=True)
class RunDueJobs(Command):
    """Fire every due job (timer pump)."""

    name: ClassVar[str] = "run_due_jobs"

    def loggable(self, result: Any) -> bool:
        # an idle pump (nothing fired) is a read-only call; logging it
        # would turn every driver tick into a store write.  When the pump
        # *did* change state the commit middleware leaves dirty markers,
        # which the log middleware also checks (see dispatch module).
        return bool(result)


@register_command
@dataclass(frozen=True)
class AdvanceTime(Command):
    """Advance a virtual clock and fire everything that became due.

    Always logged: even a zero-job advance moves the clock, which a
    sequential replay must reproduce.
    """

    name: ClassVar[str] = "advance_time"

    seconds: float = 0.0
