"""Lightweight engine counters for operational monitoring.

Counters are in-memory and monotone; they complement (not replace) the
durable history.  Exposed as ``engine.metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineMetrics:
    """Monotone counters over one engine's lifetime."""

    instances_started: int = 0
    instances_completed: int = 0
    instances_failed: int = 0
    instances_terminated: int = 0
    nodes_executed: dict[str, int] = field(default_factory=dict)
    timers_fired: int = 0
    messages_delivered: int = 0
    migrations: int = 0

    def count_node(self, type_name: str) -> None:
        self.nodes_executed[type_name] = self.nodes_executed.get(type_name, 0) + 1

    @property
    def total_nodes_executed(self) -> int:
        return sum(self.nodes_executed.values())

    @property
    def instances_finished(self) -> int:
        return (
            self.instances_completed
            + self.instances_failed
            + self.instances_terminated
        )

    def snapshot(self) -> dict[str, object]:
        """A JSON-safe copy for dashboards."""
        return {
            "instances_started": self.instances_started,
            "instances_completed": self.instances_completed,
            "instances_failed": self.instances_failed,
            "instances_terminated": self.instances_terminated,
            "nodes_executed": dict(self.nodes_executed),
            "timers_fired": self.timers_fired,
            "messages_delivered": self.messages_delivered,
            "migrations": self.migrations,
        }
