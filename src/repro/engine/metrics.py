"""Engine counters, backed by the observability metrics registry.

Historically this was a standalone dataclass of ad-hoc counters.  It is now
a *facade* over a :class:`repro.obs.metrics.MetricsRegistry` — the same
numbers are readable under ``engine.*`` names through
``engine.obs.registry`` (and therefore the ``repro metrics`` CLI) — while
the original attribute API (``metrics.instances_started += 1``,
``metrics.snapshot()``) keeps working unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

_NODE_PREFIX = "engine.nodes_executed."


def _counter_property(metric_name: str):
    def _get(self: "EngineMetrics") -> int:
        return self.registry.counter(metric_name).value

    def _set(self: "EngineMetrics", value: int) -> None:
        self.registry.counter(metric_name).value = value

    return property(_get, _set)


class EngineMetrics:
    """Monotone counters over one engine's lifetime (registry-backed)."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    instances_started = _counter_property("engine.instances_started")
    instances_completed = _counter_property("engine.instances_completed")
    instances_failed = _counter_property("engine.instances_failed")
    instances_terminated = _counter_property("engine.instances_terminated")
    timers_fired = _counter_property("engine.timers_fired")
    messages_delivered = _counter_property("engine.messages_delivered")
    migrations = _counter_property("engine.migrations")

    def count_node(self, type_name: str) -> None:
        self.registry.counter(_NODE_PREFIX + type_name).inc()

    @property
    def nodes_executed(self) -> dict[str, int]:
        """Execution count per node type name (fresh copy)."""
        return self.registry.counters_with_prefix(_NODE_PREFIX)

    @property
    def total_nodes_executed(self) -> int:
        return sum(self.nodes_executed.values())

    @property
    def instances_finished(self) -> int:
        return (
            self.instances_completed
            + self.instances_failed
            + self.instances_terminated
        )

    def snapshot(self) -> dict[str, object]:
        """A JSON-safe copy for dashboards (legacy key set, unchanged)."""
        return {
            "instances_started": self.instances_started,
            "instances_completed": self.instances_completed,
            "instances_failed": self.instances_failed,
            "instances_terminated": self.instances_terminated,
            "nodes_executed": self.nodes_executed,
            "timers_fired": self.timers_fired,
            "messages_delivered": self.messages_delivered,
            "migrations": self.migrations,
        }
