"""The command dispatch pipeline: serialization gate + middleware chain.

Every public mutation of :class:`~repro.engine.engine.ProcessEngine` is a
typed :class:`~repro.engine.commands.Command` executed through
``engine.dispatch(cmd)``, which runs this composable middleware chain:

1. **serialization gate** — a re-entrant lock making the engine safe for
   concurrent client threads.  All state mutation happens under it, so
   the engine stays a logical single writer; nested dispatch from inside
   a handler (e.g. ``AdvanceTime`` pumping ``RunDueJobs``) re-enters the
   same lock without deadlock and without re-queueing.
2. **idempotency** — externally-originated commands may carry a client
   ``dedup_key``; a repeated key replays the recorded result instead of
   double-applying the command.
3. **observability** — one ``engine.command`` span per dispatch plus
   ``engine.commands.dispatched`` / per-type counters, keyed by command
   name.  No per-entry-point instrumentation code remains in the engine.
4. **commit** — the group-commit/flush policy from the persistence layer
   runs once per dispatch (and honours ``engine.batch()`` deferral), even
   when the handler raises: memory is the source of truth and the store
   must not lag behind it.
5. **dispatch log + history** — a bounded, persisted log of applied
   commands (``dispatch/<seq>`` records; see ``repro commands`` CLI) and
   a unified ``command.dispatched`` history event on the engine stream.

Middleware are plain callables ``(engine, cmd, call_next) -> result`` so
the chain is composable and testable in isolation.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.engine.commands import Command
from repro.engine.instance import ProcessInstance
from repro.history.audit import HistoryService
from repro.history.events import EventTypes
from repro.services.bus import Message
from repro.worklist.items import WorkItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ProcessEngine

#: middleware signature: ``(engine, command, call_next) -> result``
Middleware = Callable[["ProcessEngine", Command, Callable[[Command], Any]], Any]


def summarize_result(result: Any) -> Any:
    """A JSON-safe summary of a handler result for the dispatch log."""
    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    if isinstance(result, dict):
        # completion/requeue handlers return JSON-safe status dicts
        return result
    summarize = getattr(result, "__dispatch_summary__", None)
    if summarize is not None:
        return summarize()
    # duck-typed: the engine's result objects (ProcessInstance, WorkItem,
    # Message) each expose a stable identifier
    if isinstance(result, ProcessInstance):
        return {"instance_id": result.id, "state": result.state.value}
    if isinstance(result, WorkItem):
        return {"work_item_id": result.id, "state": result.state.value}
    if isinstance(result, Message):
        return {"message_id": result.id, "message_name": result.name}
    return repr(result)


# -- the middleware -----------------------------------------------------------


def idempotency_middleware(
    engine: "ProcessEngine", cmd: Command, call_next: Callable[[Command], Any]
) -> Any:
    """Deduplicate externally-originated commands by client key.

    A hit replays the recorded result of the first application (after a
    crash/recovery, the persisted result *summary*: the dispatch log is
    the durable record).  Failed commands are not recorded, so a client
    may retry them under the same key.
    """
    key = cmd.dedup_key
    if key is None:
        return call_next(cmd)
    hit = engine._dedup.get(key)
    if hit is not None:
        engine._c_commands_deduped.inc()
        return hit["result"]
    result = call_next(cmd)
    engine._dedup[key] = {"result": result, "seq": engine._dispatch_seq}
    return result


def observability_middleware(
    engine: "ProcessEngine", cmd: Command, call_next: Callable[[Command], Any]
) -> Any:
    """Span + metrics per dispatch, keyed by command type."""
    engine._c_commands.inc()
    counters = engine._command_counters
    counter = counters.get(cmd.name)
    if counter is None:
        counter = counters[cmd.name] = engine.obs.registry.counter(
            f"engine.commands.{cmd.name}"
        )
    counter.inc()
    if not engine.obs.enabled:
        return call_next(cmd)
    # detached span (not on the tracer scope stack) so the existing
    # engine -> instance -> node hierarchy is unchanged
    span = engine._tracer.start_span(
        "engine.command", parent=engine._engine_span, command=cmd.name
    )
    try:
        result = call_next(cmd)
    except BaseException:
        span.finish("error")
        raise
    span.finish()
    return result


def commit_middleware(
    engine: "ProcessEngine", cmd: Command, call_next: Callable[[Command], Any]
) -> Any:
    """Run the commit policy once per dispatch (PR 3 flush semantics).

    Flushes in a ``finally``: when a handler raises after mutating
    memory, the store must still catch up (same contract as
    ``engine.batch()``).  A clean-failure dispatch (validation error, no
    mutation) leaves nothing dirty, so the flush writes nothing.
    """
    try:
        return call_next(cmd)
    finally:
        engine._flush()


#: above this many combined dirty ids, a log entry's ``touched`` stamp
#: degrades to ``None`` ("unknown") and recovery falls back to a full
#: view rebuild instead of tail replay — bounds per-entry log growth
TOUCHED_STAMP_CAP = 64


def _touched_snapshot(engine: "ProcessEngine") -> dict[str, list[str]] | None:
    """The view-relevant dirty ids at log time, or ``None`` if over cap.

    Dirty sets only grow between flushes, so the stamp on the *last*
    entry of any un-flushed window is a superset of every earlier
    entry's touches — which is exactly what makes replaying only the
    tail's touched entities from final base state sufficient (see
    ``ProjectionManager.recover``).
    """
    # raw dirty sets, not the sorted-tuple accessor: this runs on every
    # logged record, and one sorted() per set is the whole cost
    instance_ids = engine._dirty
    item_ids = engine.worklist._dirty
    if len(instance_ids) + len(item_ids) > TOUCHED_STAMP_CAP:
        return None
    return {"instances": sorted(instance_ids), "items": sorted(item_ids)}


def dispatch_log_middleware(
    engine: "ProcessEngine", cmd: Command, call_next: Callable[[Command], Any]
) -> Any:
    """Record the command in the dispatch log and the history stream.

    Skips only commands that report themselves unloggable (idle pumps)
    *and* left no dirty state behind — everything that mutated the engine
    is in the log, which is what makes a sequential replay of the log
    equivalent to the original concurrent run.

    When read models are enabled, each entry is stamped with the
    ``touched`` entity ids still dirty at log time, so view recovery can
    replay only the tail of the log (cursor → head) instead of
    rebuilding from scratch.
    """
    record: dict[str, Any] = {
        "command": cmd.to_dict(),
        "name": cmd.name,
        "dedup_key": cmd.dedup_key,
        "depth": engine._dispatcher.depth,
        "at": engine.clock.now(),
        "status": "applied",
    }
    try:
        result = call_next(cmd)
    except BaseException as exc:
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        if engine.views is not None:
            record["touched"] = _touched_snapshot(engine)
        _log(engine, record)
        raise
    if cmd.loggable(result) or engine._has_pending_dirty():
        record["result"] = summarize_result(result)
        if engine.views is not None:
            record["touched"] = _touched_snapshot(engine)
        _log(engine, record)
    return result


def _log(engine: "ProcessEngine", record: dict[str, Any]) -> None:
    engine._append_dispatch_record(record)
    engine.history.record(
        HistoryService.ENGINE_STREAM,
        EventTypes.COMMAND_DISPATCHED,
        command=record["name"],
        seq=record["seq"],
        dedup_key=record["dedup_key"],
        depth=record["depth"],
        status=record["status"],
    )


#: default chain, outermost first (the serialization gate is the
#: dispatcher's lock itself).  Note the commit middleware wraps the log
#: middleware so the flush persists the *finalized* log entry.
DEFAULT_MIDDLEWARE: tuple[Middleware, ...] = (
    idempotency_middleware,
    observability_middleware,
    commit_middleware,
    dispatch_log_middleware,
)


class Dispatcher:
    """Executes commands through the middleware chain, single-writer.

    The lock is shared with the worklist service and the message bus
    (``bind_lock``), so even clients that talk to those components
    directly serialize against command dispatch.
    """

    def __init__(
        self,
        engine: "ProcessEngine",
        handlers: dict[type[Command], Callable[[Command], Any]],
        middleware: tuple[Middleware, ...] = DEFAULT_MIDDLEWARE,
        lock: "threading.RLock | None" = None,
    ) -> None:
        self.engine = engine
        self.handlers = dict(handlers)
        self.middleware = tuple(middleware)
        self.lock = lock if lock is not None else threading.RLock()
        #: current dispatch nesting depth (1 = outermost), valid only
        #: while the lock is held
        self.depth = 0
        self._pipeline = self._compose()

    def _compose(self) -> Callable[[Command], Any]:
        """Fold the middleware chain around the terminal handler call."""

        def terminal(cmd: Command) -> Any:
            handler = self.handlers.get(type(cmd))
            if handler is None:
                from repro.engine.errors import EngineError

                raise EngineError(
                    f"no handler registered for command {cmd.name!r}"
                )
            return handler(cmd)

        call = terminal
        for mw in reversed(self.middleware):
            call = _bind(mw, self.engine, call)
        return call

    def dispatch(self, command: Command) -> Any:
        """Execute one command through the full pipeline."""
        if not isinstance(command, Command):
            raise TypeError(
                f"dispatch expects a Command, got {type(command).__name__}"
            )
        with self.lock:
            self.depth += 1
            try:
                return self._pipeline(command)
            finally:
                self.depth -= 1


def _bind(
    mw: Middleware, engine: "ProcessEngine", call_next: Callable[[Command], Any]
) -> Callable[[Command], Any]:
    def call(cmd: Command) -> Any:
        return mw(engine, cmd, call_next)

    return call
