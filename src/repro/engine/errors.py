"""Errors raised by the process engine."""


class EngineError(Exception):
    """Base class for engine errors."""


class DefinitionNotFoundError(EngineError):
    """No deployed definition matches the requested key/version."""


class InstanceNotFoundError(EngineError):
    """No instance with the requested id."""


class IllegalInstanceStateError(EngineError):
    """The operation is not allowed in the instance's current state."""


class NoFlowSelectedError(EngineError):
    """An exclusive/inclusive gateway found no outgoing flow to take."""

    def __init__(self, node_id: str, variables: dict) -> None:
        super().__init__(
            f"gateway {node_id!r}: no condition matched and no default flow "
            f"(variables: {sorted(variables)})"
        )
        self.node_id = node_id


class MigrationError(EngineError):
    """Instance migration between versions was rejected."""


class BpmnError(Exception):
    """A *business* error raised inside a service or script.

    Unlike technical failures, BPMN errors are part of the process design:
    they are caught by error boundary events with a matching ``code``
    (``None`` catches any) and routed along the boundary's flow.

    >>> raise BpmnError("OUT_OF_STOCK", "item unavailable")
    Traceback (most recent call last):
    ...
    repro.engine.errors.BpmnError: [OUT_OF_STOCK] item unavailable
    """

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(f"[{code}] {message}" if message else f"[{code}]")
        self.code = code
        self.detail = message
