"""repro — a complete Business Process Management System (BPMS) in pure Python.

The package reproduces the system described by the ICDE 2003 overview paper
"Business Process Management Systems": a process-aware information system
with a formal Petri-net kernel, a BPMN-style process metamodel, a token-game
execution engine, human-task worklists, service integration, durable
persistence, history/audit, process mining, and discrete-event simulation.

Quickstart
----------
>>> from repro import ProcessBuilder, ProcessEngine
>>> model = (
...     ProcessBuilder("hello")
...     .start()
...     .script_task("greet", script="result = 'hello ' + str(who)")
...     .end()
...     .build()
... )
>>> engine = ProcessEngine()
>>> engine.deploy(model)
'hello:1'
>>> instance = engine.start_instance("hello", variables={"who": "world"})
>>> instance.state.name
'COMPLETED'
>>> instance.variables["result"]
'hello world'
"""

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "ProcessBuilder",
    "ProcessDefinition",
    "ProcessEngine",
    "ProcessInstance",
    "InstanceState",
    "__version__",
]

# Lazy re-exports (PEP 562) keep `import repro.petri` usable without pulling
# the whole engine stack, and avoid import cycles between subpackages.
_LAZY = {
    "ProcessBuilder": ("repro.model.builder", "ProcessBuilder"),
    "ProcessDefinition": ("repro.model.process", "ProcessDefinition"),
    "ProcessEngine": ("repro.engine.engine", "ProcessEngine"),
    "ProcessInstance": ("repro.engine.instance", "ProcessInstance"),
    "InstanceState": ("repro.engine.instance", "InstanceState"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
