"""Clock abstraction shared by the engine, worklists, services, and simulator.

Everything time-dependent (timers, deadlines, retry backoff, circuit-breaker
resets, history timestamps) reads time through a :class:`Clock` so that:

* production uses :class:`WallClock` (real time);
* tests and the discrete-event simulator use :class:`VirtualClock`, which
  only moves when explicitly advanced — deterministic and instant.
"""

from __future__ import annotations

import time


class Clock:
    """Time source interface."""

    def now(self) -> float:
        """Current time in seconds (epoch-like; only differences matter)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds``."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, for production use."""

    def now(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Manually advanced time, for tests and simulation.

    >>> clock = VirtualClock(start=100.0)
    >>> clock.now()
    100.0
    >>> clock.advance(5)
    105.0
    >>> clock.sleep(2.5)   # sleeping just advances
    >>> clock.now()
    107.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        if timestamp < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(timestamp)
