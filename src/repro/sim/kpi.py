"""KPI computation over simulation output (engine history + counters)."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median

from repro.history.audit import HistoryService
from repro.sim.runner import SimulationResult
from repro.worklist.items import WorkItemState
from repro.worklist.service import WorklistService


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(q * (len(ordered) - 1) + 0.5), len(ordered) - 1)
    return ordered[index]


@dataclass
class KpiReport:
    """The classic BPM performance dashboard."""

    cases_started: int = 0
    cases_completed: int = 0
    horizon: float = 0.0
    cycle_times: list[float] = field(default_factory=list)
    waiting_times: list[float] = field(default_factory=list)
    service_times: list[float] = field(default_factory=list)
    utilization: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed cases per time unit."""
        return self.cases_completed / self.horizon if self.horizon else 0.0

    @property
    def mean_cycle_time(self) -> float:
        return mean(self.cycle_times) if self.cycle_times else 0.0

    @property
    def median_cycle_time(self) -> float:
        return median(self.cycle_times) if self.cycle_times else 0.0

    @property
    def p95_cycle_time(self) -> float:
        return _percentile(self.cycle_times, 0.95)

    @property
    def mean_waiting_time(self) -> float:
        return mean(self.waiting_times) if self.waiting_times else 0.0

    @property
    def mean_service_time(self) -> float:
        return mean(self.service_times) if self.service_times else 0.0

    @property
    def mean_utilization(self) -> float:
        return mean(self.utilization.values()) if self.utilization else 0.0

    def summary(self) -> str:
        """A one-screen text dashboard."""
        lines = [
            f"cases            : {self.cases_completed}/{self.cases_started} completed",
            f"horizon          : {self.horizon:.2f}",
            f"throughput       : {self.throughput:.4f} cases/unit",
            f"cycle time       : mean={self.mean_cycle_time:.2f} "
            f"median={self.median_cycle_time:.2f} p95={self.p95_cycle_time:.2f}",
            f"waiting time     : mean={self.mean_waiting_time:.2f}",
            f"service time     : mean={self.mean_service_time:.2f}",
            f"utilization      : mean={self.mean_utilization:.2%}",
        ]
        for resource, value in sorted(self.utilization.items()):
            lines.append(f"  {resource:<14} : {value:.2%}")
        return "\n".join(lines)


def compute_kpis(
    history: HistoryService,
    worklist: WorklistService,
    result: SimulationResult,
) -> KpiReport:
    """Aggregate KPIs from history, work items, and simulation counters."""
    report = KpiReport(
        cases_started=result.started_cases,
        cases_completed=result.completed_cases,
        horizon=result.horizon,
    )
    for instance_id in history.completed_instances():
        duration = history.instance_duration(instance_id)
        if duration is not None:
            report.cycle_times.append(duration)
    for item in worklist.items(WorkItemState.COMPLETED):
        waiting = item.waiting_time()
        if waiting is not None:
            report.waiting_times.append(waiting)
        service = item.service_time()
        if service is not None:
            report.service_times.append(service)
    if result.horizon > 0:
        for resource, busy in result.busy_time.items():
            report.utilization[resource] = min(busy / result.horizon, 1.0)
    return report
