"""Seedable sampling distributions for arrivals and service times."""

from __future__ import annotations

import math
import random


class Distribution:
    """Interface: ``sample(rng)`` draws one non-negative value."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Analytic mean, used by workload calibration."""
        raise NotImplementedError


class Fixed(Distribution):
    """A constant (deterministic) duration."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("duration must be non-negative")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fixed({self.value})"


class Uniform(Distribution):
    """Uniform on [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given rate (mean = 1/rate): Poisson arrivals."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate})"


class LogNormal(Distribution):
    """Log-normal via underlying normal(mu, sigma) — skewed service times."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu}, sigma={self.sigma})"


class Erlang(Distribution):
    """Erlang-k (sum of k exponentials) — lower-variance service times."""

    def __init__(self, k: int, rate: float) -> None:
        if k < 1 or rate <= 0:
            raise ValueError("need k >= 1 and rate > 0")
        self.k = int(k)
        self.rate = float(rate)

    def sample(self, rng: random.Random) -> float:
        return sum(rng.expovariate(self.rate) for _ in range(self.k))

    @property
    def mean(self) -> float:
        return self.k / self.rate

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, rate={self.rate})"
