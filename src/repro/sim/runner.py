"""The simulation driver: arrivals + simulated resources over a real engine."""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.errors import EngineError
from repro.sim.distributions import Distribution, Exponential, Fixed
from repro.worklist.items import WorkItemState


@dataclass
class SimulationResult:
    """Raw counters; compute KPIs with :func:`repro.sim.kpi.compute_kpis`."""

    started_cases: int = 0
    completed_cases: int = 0
    end_time: float = 0.0
    start_time: float = 0.0
    busy_time: dict[str, float] = field(default_factory=dict)
    items_processed: dict[str, int] = field(default_factory=dict)

    @property
    def horizon(self) -> float:
        return max(self.end_time - self.start_time, 0.0)


class SimulationRunner:
    """Feeds an engine with cases and plays its human resources.

    The engine must run on a :class:`~repro.clock.VirtualClock`.  Resources
    work one item at a time: when idle they take the best item from their
    queue (or claim from their role queues), 'work' for a sampled service
    time, then complete the item with ``result_fn``'s payload.
    """

    def __init__(
        self,
        engine: ProcessEngine,
        process_key: str,
        n_cases: int,
        arrival: Distribution | None = None,
        service_times: dict[str, Distribution] | None = None,
        default_service: Distribution | None = None,
        variables_fn: Callable[[random.Random, int], dict[str, Any]] | None = None,
        result_fn: Callable[[random.Random, str], dict[str, Any]] | None = None,
        seed: int = 0,
    ) -> None:
        if not isinstance(engine.clock, VirtualClock):
            raise EngineError("simulation requires an engine on a VirtualClock")
        self.engine = engine
        self.process_key = process_key
        self.n_cases = n_cases
        self.arrival = arrival if arrival is not None else Exponential(rate=1.0)
        self.service_times = dict(service_times or {})
        self.default_service = (
            default_service if default_service is not None else Fixed(1.0)
        )
        self.variables_fn = variables_fn or (lambda rng, k: {})
        self.result_fn = result_fn or (lambda rng, node_id: {})
        self.rng = random.Random(seed)
        self._events: list[tuple[float, int, str, dict[str, Any]]] = []
        self._seq = itertools.count()
        self._busy: set[str] = set()
        self.result = SimulationResult()

    # -- event plumbing -----------------------------------------------------------

    def _push(self, time: float, kind: str, data: dict[str, Any]) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, data))

    def _service_for(self, node_id: str) -> Distribution:
        return self.service_times.get(node_id, self.default_service)

    # -- main loop ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run until all cases are finished; returns raw counters."""
        obs = self.engine.obs
        if not obs.enabled:
            return self._run()
        # the span clock is the engine's VirtualClock, so start/end are
        # *simulated* time — the span duration is the simulated horizon
        with obs.span(
            "sim.run", process_key=self.process_key, n_cases=self.n_cases
        ) as span:
            result = self._run()
            span.set(
                started_cases=result.started_cases,
                completed_cases=result.completed_cases,
                sim_horizon=result.horizon,
            )
            return result

    def _run(self) -> SimulationResult:
        clock: VirtualClock = self.engine.clock  # type: ignore[assignment]
        self.result.start_time = clock.now()
        self._push(clock.now() + self.arrival.sample(self.rng), "arrival", {"k": 0})

        while self._events or len(self.engine.scheduler):
            next_event_time = self._events[0][0] if self._events else None
            next_job_time = self.engine.scheduler.next_due()
            if next_event_time is None and next_job_time is None:
                break
            if next_job_time is not None and (
                next_event_time is None or next_job_time < next_event_time
            ):
                clock.set(max(clock.now(), next_job_time))
                self.engine.run_due_jobs()
                self._dispatch_idle_resources()
                continue
            time, _, kind, data = heapq.heappop(self._events)
            clock.set(max(clock.now(), time))
            self.engine.run_due_jobs()
            if kind == "arrival":
                self._handle_arrival(data["k"])
            elif kind == "completion":
                self._handle_completion(data["resource_id"], data["item_id"])
            self._dispatch_idle_resources()
        self.result.end_time = clock.now()
        from repro.engine.instance import InstanceState

        self.result.completed_cases = sum(
            1
            for i in self.engine.instances(InstanceState.COMPLETED)
            if i.definition_key == self.process_key
        )
        return self.result

    # -- handlers ----------------------------------------------------------------------

    def _handle_arrival(self, k: int) -> None:
        self.engine.start_instance(
            self.process_key, variables=self.variables_fn(self.rng, k)
        )
        self.result.started_cases += 1
        if k + 1 < self.n_cases:
            self._push(
                self.engine.clock.now() + self.arrival.sample(self.rng),
                "arrival",
                {"k": k + 1},
            )

    def _handle_completion(self, resource_id: str, item_id: str) -> None:
        self._busy.discard(resource_id)
        item = self.engine.worklist.item(item_id)
        if item.state is not WorkItemState.STARTED:
            return  # withdrawn while 'being worked on' (boundary fired, ...)
        self.engine.complete_work_item(
            item_id, self.result_fn(self.rng, item.node_id)
        )
        self.result.items_processed[resource_id] = (
            self.result.items_processed.get(resource_id, 0) + 1
        )

    def _dispatch_idle_resources(self) -> None:
        """Every idle resource starts its best available item."""
        progressed = True
        while progressed:
            progressed = False
            for resource in self.engine.organization.all():
                if resource.id in self._busy:
                    continue
                item = self._take_item(resource.id)
                if item is None:
                    continue
                self.engine.start_work_item(item.id)
                duration = self._service_for(item.node_id).sample(self.rng)
                self._busy.add(resource.id)
                self.result.busy_time[resource.id] = (
                    self.result.busy_time.get(resource.id, 0.0) + duration
                )
                self._push(
                    self.engine.clock.now() + duration,
                    "completion",
                    {"resource_id": resource.id, "item_id": item.id},
                )
                progressed = True

    def _take_item(self, resource_id: str):
        queue = self.engine.worklist.queue_of(resource_id)
        for item in queue:
            if item.state is WorkItemState.ALLOCATED:
                return item
        offered = self.engine.worklist.offered_for_resource(resource_id)
        if offered:
            return self.engine.claim_work_item(offered[0].id, resource_id)
        return None
