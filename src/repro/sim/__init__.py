"""Discrete-event simulation of processes with simulated human resources.

The simulator drives a real :class:`~repro.engine.engine.ProcessEngine`
(on a virtual clock) with stochastic case arrivals and simulated resources
that claim, start, and complete work items with sampled service times.
Because the *actual* engine executes every case, simulation results
exercise exactly the code paths production would — the substitution for
"human participants" documented in DESIGN.md.

KPIs (cycle time, waiting time, utilization, throughput) are computed from
the engine's own history, and experiment F3 reproduces the M/M/c
hockey-stick from them.
"""

from repro.sim.distributions import (
    Distribution,
    Erlang,
    Exponential,
    Fixed,
    LogNormal,
    Uniform,
)
from repro.sim.kpi import KpiReport, compute_kpis
from repro.sim.runner import SimulationResult, SimulationRunner

__all__ = [
    "Distribution",
    "Erlang",
    "Exponential",
    "Fixed",
    "KpiReport",
    "LogNormal",
    "SimulationResult",
    "SimulationRunner",
    "Uniform",
    "compute_kpis",
]
