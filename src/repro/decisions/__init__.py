"""Decision tables: declarative business rules for process routing.

The BPMS suites of the paper's generation bundled a rules component so
that volatile business logic (pricing bands, approval thresholds, risk
classes) lived in *tables* owned by business users rather than in code or
in gateway guards.  This package provides:

* :class:`~repro.decisions.table.DecisionTable` — typed inputs/outputs,
  rules with expression-language conditions, and the classic hit policies
  (UNIQUE, FIRST, PRIORITY, COLLECT);
* a :class:`~repro.decisions.table.DecisionRegistry` the engine resolves
  tables from;
* the :class:`~repro.model.elements.BusinessRuleTask` node type executes a
  table against instance variables and merges the outputs.
"""

from repro.decisions.table import (
    DecisionError,
    DecisionRegistry,
    DecisionRule,
    DecisionTable,
    HitPolicy,
)

__all__ = [
    "DecisionError",
    "DecisionRegistry",
    "DecisionRule",
    "DecisionTable",
    "HitPolicy",
]
