"""Decision tables with expression-language conditions and hit policies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.expr import EvaluationError, ParseError, compile_expression


class DecisionError(Exception):
    """Table definition or evaluation failure."""


class HitPolicy(enum.Enum):
    """How multiple matching rules combine.

    * ``UNIQUE``   — exactly one rule may match; several matching is an error.
    * ``FIRST``    — the first matching rule (table order) wins.
    * ``PRIORITY`` — the matching rule with the highest ``priority`` wins.
    * ``COLLECT``  — all matches contribute; each output name collects a list.
    """

    UNIQUE = "unique"
    FIRST = "first"
    PRIORITY = "priority"
    COLLECT = "collect"


@dataclass
class DecisionRule:
    """One row: conditions per input name, output expressions per output name.

    A missing condition for an input means "any value".  Conditions and
    outputs are expression-language strings evaluated against the decision
    context (the instance variables, for business-rule tasks).
    """

    conditions: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    priority: int = 0
    annotation: str = ""


@dataclass
class DecisionTable:
    """A named decision: inputs, outputs, rules, hit policy."""

    name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    rules: list[DecisionRule] = field(default_factory=list)
    hit_policy: HitPolicy = HitPolicy.FIRST

    def __post_init__(self) -> None:
        if not self.name:
            raise DecisionError("decision table requires a name")
        if not self.outputs:
            raise DecisionError(f"table {self.name!r} declares no outputs")

    def add_rule(
        self,
        conditions: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        priority: int = 0,
        annotation: str = "",
    ) -> "DecisionTable":
        """Append a rule (fluent); validates names and expression syntax."""
        rule = DecisionRule(
            conditions=dict(conditions or {}),
            outputs=dict(outputs or {}),
            priority=priority,
            annotation=annotation,
        )
        for input_name in rule.conditions:
            if input_name not in self.inputs:
                raise DecisionError(
                    f"table {self.name!r}: condition on undeclared input "
                    f"{input_name!r}"
                )
        for output_name in rule.outputs:
            if output_name not in self.outputs:
                raise DecisionError(
                    f"table {self.name!r}: value for undeclared output "
                    f"{output_name!r}"
                )
        missing = set(self.outputs) - set(rule.outputs)
        if missing:
            raise DecisionError(
                f"table {self.name!r}: rule lacks outputs {sorted(missing)}"
            )
        for expression in (*rule.conditions.values(), *rule.outputs.values()):
            try:
                compile_expression(expression)
            except ParseError as exc:
                raise DecisionError(
                    f"table {self.name!r}: bad expression {expression!r}: {exc}"
                ) from exc
        self.rules.append(rule)
        return self

    # -- evaluation -----------------------------------------------------------

    def _matches(self, rule: DecisionRule, context: Mapping[str, Any]) -> bool:
        for input_name, condition in rule.conditions.items():
            if input_name not in context:
                raise DecisionError(
                    f"table {self.name!r}: input {input_name!r} missing from context"
                )
            try:
                if not compile_expression(condition).evaluate_bool(context):
                    return False
            except EvaluationError as exc:
                raise DecisionError(
                    f"table {self.name!r}: condition {condition!r} failed: {exc}"
                ) from exc
        return True

    def _rule_outputs(
        self, rule: DecisionRule, context: Mapping[str, Any]
    ) -> dict[str, Any]:
        try:
            return {
                name: compile_expression(expr).evaluate(context)
                for name, expr in rule.outputs.items()
            }
        except EvaluationError as exc:
            raise DecisionError(
                f"table {self.name!r}: output evaluation failed: {exc}"
            ) from exc

    def evaluate(self, context: Mapping[str, Any]) -> dict[str, Any]:
        """Evaluate the table; returns the output assignment.

        Raises :class:`DecisionError` when no rule matches, or when UNIQUE
        finds several matches.  COLLECT returns each output as a list (in
        table order).
        """
        matches = [rule for rule in self.rules if self._matches(rule, context)]
        if not matches:
            raise DecisionError(
                f"table {self.name!r}: no rule matches "
                f"(inputs: { {k: context.get(k) for k in self.inputs} })"
            )
        if self.hit_policy is HitPolicy.UNIQUE:
            if len(matches) > 1:
                raise DecisionError(
                    f"table {self.name!r}: UNIQUE policy violated, "
                    f"{len(matches)} rules match"
                )
            return self._rule_outputs(matches[0], context)
        if self.hit_policy is HitPolicy.FIRST:
            return self._rule_outputs(matches[0], context)
        if self.hit_policy is HitPolicy.PRIORITY:
            best = max(matches, key=lambda r: r.priority)
            return self._rule_outputs(best, context)
        # COLLECT
        collected: dict[str, list[Any]] = {name: [] for name in self.outputs}
        for rule in matches:
            values = self._rule_outputs(rule, context)
            for name in self.outputs:
                collected[name].append(values[name])
        return dict(collected)

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "hit_policy": self.hit_policy.value,
            "rules": [
                {
                    "conditions": dict(rule.conditions),
                    "outputs": dict(rule.outputs),
                    "priority": rule.priority,
                    "annotation": rule.annotation,
                }
                for rule in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "DecisionTable":
        table = cls(
            name=raw["name"],
            inputs=tuple(raw.get("inputs", ())),
            outputs=tuple(raw.get("outputs", ())),
            hit_policy=HitPolicy(raw.get("hit_policy", "first")),
        )
        for rule_raw in raw.get("rules", ()):
            table.add_rule(
                conditions=rule_raw.get("conditions", {}),
                outputs=rule_raw.get("outputs", {}),
                priority=rule_raw.get("priority", 0),
                annotation=rule_raw.get("annotation", ""),
            )
        return table


class DecisionRegistry:
    """Named decision tables the engine resolves business-rule tasks from."""

    def __init__(self) -> None:
        self._tables: dict[str, DecisionTable] = {}

    def register(self, table: DecisionTable) -> None:
        if table.name in self._tables:
            raise DecisionError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def replace(self, table: DecisionTable) -> None:
        """Hot-swap a table (the whole point of externalized rules)."""
        if table.name not in self._tables:
            raise DecisionError(f"table {table.name!r} not registered")
        self._tables[table.name] = table

    def get(self, name: str) -> DecisionTable:
        try:
            return self._tables[name]
        except KeyError:
            raise DecisionError(f"unknown decision table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def names(self) -> list[str]:
        return sorted(self._tables)
