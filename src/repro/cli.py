"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``validate FILE.bpmn [--soundness]`` — structural (and optionally
  behavioural) verification; exit code 1 on errors.
* ``lint FILE.bpmn [--json] ...``      — full static analysis: structural,
  data-flow, behavioural, and reference rules with fix hints.
* ``lint DIR --deployment``            — deployment-wide analysis: every
  definition in a directory of BPMN files (or a DurableKV store), plus
  the interprocess message/call rules (MSG*/CALL*/CHOR*).
* ``choreography DIR [--json]``        — render the deployment's message
  channels, call edges, and recursion cycles.
* ``info FILE.bpmn``                   — model summary.
* ``run FILE.bpmn [--var k=v ...]``    — deploy and run one instance of a
  fully automated model, printing the outcome and final variables.
* ``mine LOG.json [--threshold X]``    — discovery summary for an event
  log (``EventLog.to_json`` format).
* ``trace FILE.bpmn [--jsonl OUT]``    — run one instance with tracing on
  and print the span tree.
* ``metrics FILE.bpmn [--json]``       — run one instance and print the
  full metrics snapshot.
* ``patterns``                         — the pattern support matrix.
* ``commands [--store DIR]``           — list the registered command types;
  with a store, dump the recent dispatch history (idempotency keys,
  status, depth) recorded by the command pipeline.
* ``cluster status --store DIR``       — per-shard topology and state
  counts for a sharded runtime's ``shard-<n>`` store directories.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.bpmn import BpmnParseError, parse_bpmn
from repro.history.log import EventLog
from repro.model.mapping import to_workflow_net
from repro.model.validation import validate as validate_model
from repro.petri.workflow_net import check_soundness


def _load_model(path: str):
    try:
        with open(path, encoding="utf-8") as fh:
            return parse_bpmn(fh.read(), source=path)
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {path}")
    except BpmnParseError as exc:
        raise SystemExit(f"error: cannot parse {path}: {exc}")


def _parse_var(raw: str):
    name, sep, value = raw.partition("=")
    if not sep:
        raise SystemExit(f"error: --var expects name=value, got {raw!r}")
    try:
        return name, json.loads(value)
    except json.JSONDecodeError:
        return name, value  # plain string


def cmd_validate(args: argparse.Namespace) -> int:
    model = _load_model(args.file)
    report = validate_model(model)
    for issue in report.issues:
        print(issue)
    if not report.ok:
        print(f"INVALID: {len(report.errors)} error(s)")
        return 1
    print(f"valid: {len(model.nodes)} nodes, {len(model.flows)} flows"
          + (f", {len(report.warnings)} warning(s)" if report.warnings else ""))
    if args.soundness:
        soundness = check_soundness(
            to_workflow_net(model).net, max_states=args.max_states
        )
        if soundness.sound:
            print(f"sound: verified over {soundness.state_count} states")
        else:
            print("UNSOUND:")
            for problem in soundness.problems:
                print(f"  - {problem}")
            return 1
    return 0


def _load_deployment(path: str):
    """Definitions for ``lint --deployment`` / ``choreography``.

    ``path`` may be a directory of ``*.bpmn`` files (recursive), a
    DurableKV store directory (its ``definition/`` records are read, the
    latest version of each key winning), or a cluster directory of
    ``shard-<n>`` partitions (shard 0 is read — deployments are identical
    on every shard).
    """
    import os

    from repro.model.serialization import definition_from_dict
    from repro.storage.kvstore import DurableKV

    if not os.path.isdir(path):
        raise SystemExit(f"error: not a directory: {path}")
    entries = sorted(os.listdir(path))
    shard_dirs = [
        e for e in entries
        if e.startswith("shard-") and os.path.isdir(os.path.join(path, e))
    ]
    if shard_dirs:
        shard_dirs.sort(
            key=lambda d: (
                int(d.rsplit("-", 1)[-1]) if d.rsplit("-", 1)[-1].isdigit() else 0
            )
        )
        path = os.path.join(path, shard_dirs[0])
        entries = sorted(os.listdir(path))
    if "journal.log" in entries or "snapshot.json" in entries:
        store = DurableKV(path, sync_writes=False)
        definitions = [
            definition_from_dict(raw) for _, raw in store.scan("definition/")
        ]
        store.close()
        if not definitions:
            raise SystemExit(f"error: no definition/ records in store {path}")
        return definitions
    models = []
    for root, _dirs, files in sorted(os.walk(path)):
        for name in sorted(files):
            if name.endswith(".bpmn"):
                models.append(_load_model(os.path.join(root, name)))
    if not models:
        raise SystemExit(f"error: no *.bpmn files under {path}")
    return models


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisCache,
        AnalysisContext,
        analyze,
        analyze_deployment,
        exit_code,
        render_console,
        render_deployment_console,
        render_deployment_json,
        render_json,
    )

    use_json = args.json or args.format == "json"
    if args.write_baseline and not args.baseline:
        raise SystemExit("error: --write-baseline requires --baseline FILE")
    context = None
    if args.service or args.role or args.decision or args.process_key:
        context = AnalysisContext(
            services=frozenset(args.service) if args.service else None,
            roles=frozenset(args.role) if args.role else None,
            decisions=frozenset(args.decision) if args.decision else None,
            process_keys=(
                frozenset(args.process_key) if args.process_key else None
            ),
        )

    if args.deployment:
        report = analyze_deployment(
            _load_deployment(args.file),
            context=context,
            behavioral=not args.no_behavioral,
            max_states=args.max_states,
            cache=AnalysisCache(),
        )
        if args.write_baseline:
            _write_baseline(args.baseline, report.fingerprints())
            return 0
        if args.baseline:
            report = report.apply_baseline(_read_baseline(args.baseline))
        print(
            render_deployment_json(report)
            if use_json
            else render_deployment_console(report)
        )
        return exit_code(report, args.fail_on)

    model = _load_model(args.file)
    report = analyze(
        model,
        context=context,
        behavioral=not args.no_behavioral,
        max_states=args.max_states,
    )
    if args.write_baseline:
        _write_baseline(
            args.baseline, sorted(d.fingerprint for d in report.diagnostics)
        )
        return 0
    if args.baseline:
        report = _read_baseline(args.baseline).apply(report)
    print(render_json(report) if use_json else render_console(report))
    return exit_code(report, args.fail_on)


def _read_baseline(path: str):
    from repro.analysis import Baseline

    try:
        return Baseline.load(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read baseline: {exc}")


def _write_baseline(path: str, fingerprints: list) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(fingerprints, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(fingerprints)} fingerprint(s) to {path}")


def cmd_choreography(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DeploymentGraph,
        choreography_summary,
        render_choreography,
    )

    graph = DeploymentGraph.build(_load_deployment(args.path))
    if args.json:
        print(json.dumps(choreography_summary(graph), indent=2, sort_keys=True))
    else:
        print(render_choreography(graph))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    model = _load_model(args.file)
    print(f"process   : {model.key} (name={model.name!r}, version={model.version})")
    if model.description:
        print(f"docs      : {model.description}")
    by_type: dict[str, int] = {}
    for node in model.nodes.values():
        by_type[node.type_name] = by_type.get(node.type_name, 0) + 1
    print(f"nodes     : {len(model.nodes)}")
    for type_name, count in sorted(by_type.items()):
        print(f"  {type_name:<26} {count}")
    guarded = sum(1 for f in model.flows.values() if f.condition)
    print(f"flows     : {len(model.flows)} ({guarded} guarded)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.engine.engine import ProcessEngine
    from repro.model.elements import ReceiveTask, UserTask

    model = _load_model(args.file)
    human = [n.id for n in model.nodes.values() if isinstance(n, (UserTask, ReceiveTask))]
    if human:
        print(f"note: model has waiting nodes {human}; the run may not complete")
    engine = ProcessEngine()
    engine.deploy(model)
    variables = dict(_parse_var(raw) for raw in args.var or [])
    instance = engine.start_instance(model.key, variables)
    print(f"instance  : {instance.id}")
    print(f"state     : {instance.state.value}")
    if instance.failure:
        print(f"failure   : {instance.failure}")
    print("variables :")
    for name in sorted(instance.variables):
        print(f"  {name} = {instance.variables[name]!r}")
    trace = [
        e.data["node_id"]
        for e in engine.history.instance_events(instance.id)
        if e.type == "node.completed" and e.data.get("is_activity")
    ]
    print(f"trace     : {' -> '.join(trace) if trace else '(no activities)'}")
    return 0 if instance.state.value in ("completed", "running") else 1


def _traced_run(args: argparse.Namespace):
    """Shared setup for ``trace``/``metrics``: one observed instance run."""
    from repro.engine.engine import ProcessEngine
    from repro.obs import InMemorySpanExporter, Observability

    model = _load_model(args.file)
    exporter = InMemorySpanExporter()
    obs = Observability(enabled=True, exporters=[exporter])
    engine = ProcessEngine(obs=obs)
    engine.deploy(model)
    variables = dict(_parse_var(raw) for raw in getattr(args, "var", None) or [])
    instance = engine.start_instance(model.key, variables)
    return engine, instance, exporter


def cmd_trace(args: argparse.Namespace) -> int:
    engine, instance, exporter = _traced_run(args)
    print(f"instance  : {instance.id}")
    print(f"state     : {instance.state.value}")
    print("spans     :")
    print(exporter.render_tree())
    if args.jsonl:
        from repro.obs import JsonLinesSpanExporter

        try:
            sink = JsonLinesSpanExporter(args.jsonl)
        except OSError as exc:
            raise SystemExit(f"error: cannot write {args.jsonl}: {exc}")
        for span in exporter.spans:
            sink.export(span)
        sink.close()
        print(f"wrote     : {sink.exported} spans to {args.jsonl}")
    return 0 if instance.state.value in ("completed", "running") else 1


def cmd_metrics(args: argparse.Namespace) -> int:
    engine, instance, _ = _traced_run(args)
    # reading the legacy facade materializes every engine.* counter, so the
    # registry dump is always a superset of EngineMetrics.snapshot() keys
    engine.metrics.snapshot()
    snapshot = engine.obs.registry.snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"instance  : {instance.id} ({instance.state.value})")
    print("counters  :")
    for name, value in snapshot["counters"].items():
        print(f"  {name:<44} {value}")
    print("gauges    :")
    for name, value in snapshot["gauges"].items():
        print(f"  {name:<44} {value}")
    print("histograms:")
    for name, data in snapshot["histograms"].items():
        mean = data["mean"]
        print(
            f"  {name:<44} count={data['count']}"
            + (f" mean={mean * 1000:.3f}ms max={data['max'] * 1000:.3f}ms"
               if data["count"] else "")
        )
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    from repro.mining.alpha import alpha_miner
    from repro.mining.conformance import token_replay
    from repro.mining.dfg import DirectlyFollowsGraph
    from repro.mining.heuristics import heuristics_miner

    try:
        with open(args.file, encoding="utf-8") as fh:
            payload = fh.read()
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {args.file}")
    if args.file.endswith(".xes") or payload.lstrip().startswith("<"):
        from repro.history.xes import XesParseError, parse_xes

        try:
            log = parse_xes(payload)
        except XesParseError as exc:
            raise SystemExit(f"error: not an XES file: {exc}")
    else:
        try:
            log = EventLog.from_json(payload)
        except (json.JSONDecodeError, KeyError) as exc:
            raise SystemExit(f"error: not an EventLog JSON file: {exc}")

    print(f"log       : {len(log)} traces, {len(log.variants())} variants, "
          f"{len(log.activities)} activities")
    dfg = DirectlyFollowsGraph.from_log(log)
    print("top edges :")
    for a, b, count in dfg.edges()[:8]:
        print(f"  {a} -> {b}  ({count})")
    net = alpha_miner(log)
    replay = token_replay(net, log)
    print(f"alpha net : |P|={len(net.places)} |T|={len(net.transitions)} "
          f"fitness={replay.fitness:.3f}")
    graph = heuristics_miner(log, dependency_threshold=args.threshold)
    print(f"heuristics: {len(graph.dependencies)} dependencies "
          f"at threshold {args.threshold}")
    if args.footprint:
        from repro.mining.footprint import FootprintMatrix

        print("footprint :")
        print(FootprintMatrix.from_log(log).render())
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.model.render import to_ascii, to_dot

    model = _load_model(args.file)
    if args.format == "dot":
        print(to_dot(model))
    else:
        print(to_ascii(model))
    return 0


def cmd_commands(args: argparse.Namespace) -> int:
    from repro.engine.commands import COMMAND_TYPES

    registry = [
        {
            "command": name,
            "external": cls.external,
            "fields": [f for f in cls.__dataclass_fields__],
        }
        for name, cls in sorted(COMMAND_TYPES.items())
    ]
    history = None
    if args.store:
        from repro.storage.kvstore import DurableKV

        store = DurableKV(args.store, sync_writes=False)
        history = sorted(
            (raw for _, raw in store.scan("dispatch/")),
            key=lambda r: r.get("seq", 0),
        )
        if args.limit:
            history = history[-args.limit:]
    if args.json:
        payload = {"commands": registry}
        if history is not None:
            payload["history"] = history
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("registered command types:")
    for entry in registry:
        kind = "external" if entry["external"] else "internal"
        print(f"  {entry['command']:<22} [{kind}]  "
              f"fields: {', '.join(entry['fields']) or '(none)'}")
    if history is not None:
        print(f"dispatch history ({len(history)} entries):")
        for record in history:
            dedup = record.get("dedup_key")
            print(
                f"  #{record.get('seq', '?'):>4} {record.get('name', '?'):<22} "
                f"status={record.get('status', '?'):<8} "
                f"depth={record.get('depth', '?')} "
                f"at={record.get('at', 0):.3f}"
                + (f" dedup_key={dedup}" if dedup is not None else "")
            )
    return 0


def _max_dispatch_seq(store: Any) -> int:
    """Highest persisted dispatch sequence in a store (0 when empty)."""
    seq = 0
    for _, raw in store.scan("dispatch/"):
        seq = max(seq, int(raw.get("seq", 0)))
    return seq


def _store_view_summary(store: Any) -> dict[str, Any] | None:
    """Fresh read-model summary of one store, or ``None`` if absent/stale.

    Fresh means every projection cursor agrees with the store's highest
    dispatch seq — then the compact ``view/`` records answer the status
    questions without scanning ``instance/`` or ``workitem/``.
    """
    seqs = set()
    for name in ("by_state", "by_key", "def_stats", "worklist"):
        raw = store.get(f"view/{name}/__cursor", None)
        if raw is None:
            return None
        seqs.add(int(raw.get("seq", 0)))
    if len(seqs) != 1:
        return None
    seq = seqs.pop()
    if seq != _max_dispatch_seq(store):
        return None
    by_state: dict[str, int] = {}
    instances = 0
    for key, record in store.scan("view/def_stats/"):
        if key.endswith("/__cursor"):
            continue
        instances += int(record.get("total", 0))
        for state, count in record.get("states", {}).items():
            if count:
                by_state[state] = by_state.get(state, 0) + count
    queues = store.get("view/worklist/__queues", None) or {}
    return {
        "seq": seq,
        "instances": instances,
        "by_state": by_state,
        "open_work_items": int(queues.get("open", 0)),
        "roles": dict(queues.get("roles", {})),
    }


def cmd_cluster_status(args: argparse.Namespace) -> int:
    """Offline inspection of a sharded cluster's store directories.

    Expects the bench/test layout: one ``shard-<n>`` DurableKV directory
    per shard under ``--store``.  Reads each partition's persisted
    topology record and per-record state counts without an engine.
    """
    import os

    from repro.storage.kvstore import DurableKV

    try:
        entries = sorted(os.listdir(args.store))
    except OSError as exc:
        raise SystemExit(f"error: cannot read {args.store}: {exc}")
    shard_dirs = [
        entry
        for entry in entries
        if entry.startswith("shard-")
        and os.path.isdir(os.path.join(args.store, entry))
    ]
    shard_dirs.sort(
        key=lambda d: (
            int(d.rsplit("-", 1)[-1]) if d.rsplit("-", 1)[-1].isdigit() else 0
        )
    )
    if not shard_dirs:
        raise SystemExit(f"error: no shard-* store directories under {args.store}")
    rows = []
    for directory in shard_dirs:
        store = DurableKV(os.path.join(args.store, directory), sync_writes=False)
        meta = store.get("cluster/meta", None)
        # prefer the materialized read models: a fresh view summary
        # answers the census from O(definitions) compact records instead
        # of scanning every instance — the CQRS win, offline too
        summary = _store_view_summary(store)
        if summary is not None:
            by_state: dict[str, int] = dict(summary["by_state"])
        else:
            by_state = {}
            for _, raw in store.scan("instance/"):
                state = raw.get("state", "?")
                by_state[state] = by_state.get(state, 0) + 1
        row = {
            "directory": directory,
            "topology": meta,
            "instances": sum(by_state.values()),
            "by_state": by_state,
            "jobs": len(store.keys("jobs/")),
            "workitems": len(store.keys("workitem/")),
            "commands": len(store.keys("dispatch/")),
            # outbox records persisted but not yet drained to their
            # target shard — nonzero after a crash means recovery will
            # redeliver these cross-shard messages
            "pending_forwards": len(store.keys("outbox/")),
        }
        if summary is not None:
            row["views"] = {
                "seq": summary["seq"],
                "open_work_items": summary["open_work_items"],
            }
        rows.append(row)
        store.close()
    widths = {row["topology"]["shards"] for row in rows if row["topology"]}
    consistent = (
        len(widths) == 1
        and len(rows) == next(iter(widths))
        and all(
            row["topology"] and row["topology"].get("shard") == index
            for index, row in enumerate(rows)
        )
    )
    if args.json:
        print(
            json.dumps(
                {"consistent": consistent, "shards": rows},
                indent=2,
                sort_keys=True,
            )
        )
        return 0 if consistent else 1
    print(
        f"cluster   : {len(rows)} shard store(s), topology "
        + ("consistent" if consistent else "INCONSISTENT")
    )
    for index, row in enumerate(rows):
        states = ", ".join(
            f"{state}={count}" for state, count in sorted(row["by_state"].items())
        )
        recorded = row["topology"]
        tag = (
            f"{recorded.get('shard')}/{recorded.get('shards')}"
            if recorded
            else "missing"
        )
        print(
            f"  shard {index} ({row['directory']}, topology {tag}): "
            f"instances={row['instances']}"
            + (f" [{states}]" if states else "")
            + f" jobs={row['jobs']} workitems={row['workitems']}"
            f" commands={row['commands']}"
            + (
                f" pending_forwards={row['pending_forwards']}"
                if row["pending_forwards"]
                else ""
            )
            + (
                f" open_work_items={row['views']['open_work_items']}"
                f" (views@{row['views']['seq']})"
                if "views" in row
                else ""
            )
        )
    return 0 if consistent else 1


def _dlq_store_paths(root: str) -> list[tuple[str, str]]:
    """``(label, path)`` per DurableKV under ``root``.

    Accepts either a single engine's store directory or a cluster
    directory holding ``shard-<n>`` partitions (the bench/test layout).
    """
    import os

    try:
        entries = sorted(os.listdir(root))
    except OSError as exc:
        raise SystemExit(f"error: cannot read {root}: {exc}")
    shard_dirs = [
        entry
        for entry in entries
        if entry.startswith("shard-") and os.path.isdir(os.path.join(root, entry))
    ]
    if shard_dirs:
        shard_dirs.sort(
            key=lambda d: (
                int(d.rsplit("-", 1)[-1]) if d.rsplit("-", 1)[-1].isdigit() else 0
            )
        )
        return [(d, os.path.join(root, d)) for d in shard_dirs]
    return [("store", root)]


def cmd_dlq_list(args: argparse.Namespace) -> int:
    """Offline listing of dead-lettered invocations in one or N stores."""
    from repro.storage.kvstore import DurableKV

    rows = []
    for label, path in _dlq_store_paths(args.store):
        store = DurableKV(path, sync_writes=False)
        for _, raw in store.scan("dlq/"):
            entry = dict(raw)
            entry["store"] = label
            rows.append(entry)
        store.close()
    rows.sort(key=lambda r: (r.get("failed_at", 0.0), r.get("id", "")))
    if args.json:
        print(json.dumps({"dead_letters": rows}, indent=2, sort_keys=True))
        return 0
    if not rows:
        print("dead-letter queue is empty")
        return 0
    print(f"{len(rows)} dead-lettered invocation(s):")
    for row in rows:
        print(
            f"  {row.get('id', '?'):<14} service={row.get('service', '?'):<16} "
            f"instance={row.get('instance_id', '?'):<12} "
            f"attempts={row.get('attempts', '?')} "
            f"requeues={row.get('requeues', 0)} "
            f"error={row.get('error', '')!r}"
        )
    return 0


def cmd_dlq_show(args: argparse.Namespace) -> int:
    """Full record of one dead-lettered invocation."""
    from repro.storage.kvstore import DurableKV

    for label, path in _dlq_store_paths(args.store):
        store = DurableKV(path, sync_writes=False)
        raw = store.get(f"dlq/{args.invocation_id}", None)
        store.close()
        if raw is not None:
            payload = dict(raw)
            payload["store"] = label
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
    raise SystemExit(
        f"error: no dead-lettered invocation {args.invocation_id!r} "
        f"under {args.store}"
    )


def cmd_dlq_requeue(args: argparse.Namespace) -> int:
    """Move a dead-lettered invocation back to the pending table, offline.

    The record's ``requeues`` counter increments (so its completion dedup
    key is fresh) and the move is one store transaction; the owning
    engine re-enqueues it to the pool on its next ``recover()``.
    """
    from repro.storage.kvstore import DurableKV
    from repro.workers.records import InvocationRecord

    for _label, path in _dlq_store_paths(args.store):
        store = DurableKV(path)
        raw = store.get(f"dlq/{args.invocation_id}", None)
        if raw is None:
            store.close()
            continue
        record = InvocationRecord.from_dict(raw)
        record.requeues += 1
        with store.transaction():
            store.delete(f"dlq/{record.id}")
            store.put(f"invocation/{record.id}", record.to_dict())
        store.sync()
        store.close()
        print(
            f"requeued {record.id} (service={record.service}, "
            f"requeues={record.requeues}); it will run on the owning "
            f"engine's next recovery"
        )
        return 0
    raise SystemExit(
        f"error: no dead-lettered invocation {args.invocation_id!r} "
        f"under {args.store}"
    )


def cmd_views_status(args: argparse.Namespace) -> int:
    """Projection cursors, record counts, and lag for one or N stores."""
    from repro.storage.kvstore import DurableKV

    rows = []
    for label, path in _dlq_store_paths(args.store):
        store = DurableKV(path, sync_writes=False)
        dispatch_seq = _max_dispatch_seq(store)
        cursors: dict[str, int] = {}
        records: dict[str, int] = {}
        for key, raw in store.scan("view/"):
            name, _, suffix = key[len("view/"):].partition("/")
            if suffix == "__cursor":
                cursors[name] = int(raw.get("seq", 0))
            else:
                records[name] = records.get(name, 0) + 1
        store.close()
        rows.append(
            {
                "store": label,
                "dispatch_seq": dispatch_seq,
                "cursors": cursors,
                "records": records,
                "lag": (
                    dispatch_seq - min(cursors.values()) if cursors else None
                ),
            }
        )
    if args.json:
        print(json.dumps({"stores": rows}, indent=2, sort_keys=True))
        return 0
    for row in rows:
        if not row["cursors"]:
            print(
                f"{row['store']}: no view records "
                f"(dispatch_seq={row['dispatch_seq']}) — run `repro views "
                f"rebuild` or recover with views enabled"
            )
            continue
        print(
            f"{row['store']}: dispatch_seq={row['dispatch_seq']} "
            f"lag={row['lag']}"
        )
        for name in sorted(row["cursors"]):
            print(
                f"  {name:<10} cursor={row['cursors'][name]:>6} "
                f"records={row['records'].get(name, 0)}"
            )
    return 0


def cmd_views_query(args: argparse.Namespace) -> int:
    """Query persisted view records offline (no engine, no recovery).

    Cross-store results merge exactly like the live ``ClusterViews``
    facade: instance lists interleave by creation rank, analytics
    aggregate across shards.
    """
    from repro.analytics.kpis import CycleTimeAggregate
    from repro.storage.kvstore import DurableKV
    from repro.views.projections import creation_rank

    def view_records(store: Any, name: str) -> list[tuple[str, Any]]:
        prefix = f"view/{name}/"
        return [
            (key[len(prefix):], raw)
            for key, raw in store.scan(prefix)
            if not key.endswith("/__cursor")
        ]

    stores = _dlq_store_paths(args.store)
    payload: dict[str, Any]
    if args.view == "by_state":
        collected = []
        for _label, path in stores:
            store = DurableKV(path, sync_writes=False)
            for _suffix, record in view_records(store, "by_state"):
                if args.state is None or record.get("state") == args.state:
                    collected.append(record)
            store.close()
        collected.sort(key=lambda r: (r.get("rank", 0), r.get("id", "")))
        payload = {"instances": collected}
    elif args.view == "by_key":
        if args.key is None:
            raise SystemExit("error: --key is required for the by_key view")
        ids: list[str] = []
        for _label, path in stores:
            store = DurableKV(path, sync_writes=False)
            record = store.get(f"view/by_key/{args.key}", None)
            if record is not None:
                ids.extend(record.get("ids", []))
            store.close()
        ids.sort(key=lambda i: (creation_rank(i), i))
        payload = {"business_key": args.key, "ids": ids}
    elif args.view == "def_stats":
        merged: dict[str, dict[str, Any]] = {}
        for _label, path in stores:
            store = DurableKV(path, sync_writes=False)
            for definition, record in view_records(store, "def_stats"):
                if args.definition is not None and definition != args.definition:
                    continue
                slot = merged.get(definition)
                if slot is None:
                    merged[definition] = {
                        "total": record.get("total", 0),
                        "states": dict(record.get("states", {})),
                        "cycle": dict(record.get("cycle") or {}),
                    }
                    continue
                slot["total"] += record.get("total", 0)
                for state, count in record.get("states", {}).items():
                    slot["states"][state] = slot["states"].get(state, 0) + count
                slot["cycle"] = (
                    CycleTimeAggregate.from_dict(slot["cycle"])
                    .merge(CycleTimeAggregate.from_dict(record.get("cycle") or {}))
                    .to_dict()
                )
            store.close()
        payload = {
            "definitions": {name: merged[name] for name in sorted(merged)}
        }
    else:  # worklist
        open_total = 0
        roles: dict[str, int] = {}
        items = []
        for _label, path in stores:
            store = DurableKV(path, sync_writes=False)
            for suffix, record in view_records(store, "worklist"):
                if suffix == "__queues":
                    open_total += int(record.get("open", 0))
                    for role, count in record.get("roles", {}).items():
                        roles[role] = roles.get(role, 0) + count
                elif args.state is None or record.get("state") == args.state:
                    items.append(record)
            store.close()
        items.sort(key=lambda r: (r.get("rank", 0), r.get("id", "")))
        payload = {
            "open": open_total,
            "roles": {role: roles[role] for role in sorted(roles)},
            "items": items,
        }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_views_rebuild(args: argparse.Namespace) -> int:
    """Offline full projection rebuild by store replay (linear in size)."""
    from repro.storage.kvstore import DurableKV
    from repro.views.rebuild import rebuild_store_views

    for label, path in _dlq_store_paths(args.store):
        store = DurableKV(path)
        counts = rebuild_store_views(store)
        store.close()
        print(
            f"{label}: rebuilt {counts['records']} view record(s) from "
            f"{counts['instances']} instance(s) and {counts['work_items']} "
            f"work item(s) at seq {counts['seq']}"
            + (
                f", deleted {counts['deleted']} stale"
                if counts["deleted"]
                else ""
            )
        )
    return 0


def cmd_patterns(args: argparse.Namespace) -> int:
    from repro.patterns.catalog import PATTERNS

    for spec in PATTERNS:
        mark = "yes" if spec.supported else " no"
        print(f"{spec.number:>2} [{mark}] {spec.name:<30} {spec.note}")
    total = sum(1 for p in PATTERNS if p.supported)
    print(f"supported: {total}/20")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="BPMS command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate", help="validate a BPMN model")
    p_validate.add_argument("file")
    p_validate.add_argument("--soundness", action="store_true",
                            help="also run the WF-net soundness check")
    p_validate.add_argument("--max-states", type=int, default=100_000)
    p_validate.set_defaults(func=cmd_validate)

    p_lint = sub.add_parser(
        "lint", help="static analysis: data-flow, anti-patterns, references"
    )
    p_lint.add_argument(
        "file",
        help="a BPMN file, or with --deployment a directory of *.bpmn "
             "files / a DurableKV store / a cluster of shard-<n> stores",
    )
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report")
    p_lint.add_argument("--format", choices=("console", "json"),
                        default="console",
                        help="output format (--format json == --json)")
    p_lint.add_argument("--deployment", action="store_true",
                        help="lint a whole deployment: per-model rules plus "
                             "interprocess message/call checks (MSG*/CALL*/"
                             "CHOR*) across every definition")
    p_lint.add_argument("--no-behavioral", action="store_true",
                        help="skip the state-space (SND*) rules")
    p_lint.add_argument("--max-states", type=int, default=50_000)
    p_lint.add_argument("--fail-on", default="error",
                        choices=("error", "warning", "info", "never"),
                        help="lowest severity that causes exit code 1")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="JSON list of known 'RULE:element' fingerprints "
                             "to ignore ('KEY::RULE:element' in deployment "
                             "mode)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="regenerate the --baseline file from the "
                             "current findings instead of reporting")
    p_lint.add_argument("--service", action="append", metavar="NAME",
                        help="declare a registered service (enables REF001)")
    p_lint.add_argument("--role", action="append", metavar="NAME",
                        help="declare a staffed role (enables REF002)")
    p_lint.add_argument("--decision", action="append", metavar="NAME",
                        help="declare a decision table (enables REF003)")
    p_lint.add_argument("--process-key", action="append", metavar="KEY",
                        help="declare a deployed process key (enables REF004)")
    p_lint.set_defaults(func=cmd_lint)

    p_info = sub.add_parser("info", help="summarize a BPMN model")
    p_info.add_argument("file")
    p_info.set_defaults(func=cmd_info)

    p_run = sub.add_parser("run", help="run one instance of an automated model")
    p_run.add_argument("file")
    p_run.add_argument("--var", action="append", metavar="NAME=VALUE")
    p_run.set_defaults(func=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="run one instance with tracing on; print the span tree"
    )
    p_trace.add_argument("file")
    p_trace.add_argument("--var", action="append", metavar="NAME=VALUE")
    p_trace.add_argument("--jsonl", metavar="OUT",
                         help="also write the spans as JSON lines")
    p_trace.set_defaults(func=cmd_trace)

    p_metrics = sub.add_parser(
        "metrics", help="run one instance; print the metrics snapshot"
    )
    p_metrics.add_argument("file")
    p_metrics.add_argument("--var", action="append", metavar="NAME=VALUE")
    p_metrics.add_argument("--json", action="store_true",
                           help="print the snapshot as JSON")
    p_metrics.set_defaults(func=cmd_metrics)

    p_mine = sub.add_parser(
        "mine", help="discovery summary for an event log (JSON or XES)"
    )
    p_mine.add_argument("file")
    p_mine.add_argument("--threshold", type=float, default=0.9)
    p_mine.add_argument("--footprint", action="store_true",
                        help="also print the footprint matrix")
    p_mine.set_defaults(func=cmd_mine)

    p_render = sub.add_parser("render", help="render a model (dot/ascii)")
    p_render.add_argument("file")
    p_render.add_argument("--format", choices=("dot", "ascii"), default="ascii")
    p_render.set_defaults(func=cmd_render)

    p_patterns = sub.add_parser("patterns", help="pattern support matrix")
    p_patterns.set_defaults(func=cmd_patterns)

    p_chor = sub.add_parser(
        "choreography",
        help="render a deployment's message/call graph (channels, call "
             "edges, recursion cycles)",
    )
    p_chor.add_argument(
        "path",
        help="directory of *.bpmn files, a DurableKV store, or a cluster "
             "directory of shard-<n> stores",
    )
    p_chor.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_chor.set_defaults(func=cmd_choreography)

    p_commands = sub.add_parser(
        "commands",
        help="list command types; with --store, dump dispatch history",
    )
    p_commands.add_argument(
        "--store", metavar="DIR",
        help="DurableKV directory to read the dispatch log from",
    )
    p_commands.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="show only the last N history entries",
    )
    p_commands.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_commands.set_defaults(func=cmd_commands)

    p_cluster = sub.add_parser(
        "cluster", help="sharded-runtime tools (see repro.cluster)"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)
    p_cluster_status = cluster_sub.add_parser(
        "status", help="inspect a cluster's shard-<n> store directories"
    )
    p_cluster_status.add_argument(
        "--store", required=True, metavar="DIR",
        help="directory containing one shard-<n> DurableKV per shard",
    )
    p_cluster_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_cluster_status.set_defaults(func=cmd_cluster_status)

    p_dlq = sub.add_parser(
        "dlq", help="dead-letter queue tools (see repro.workers)"
    )
    dlq_sub = p_dlq.add_subparsers(dest="dlq_command", required=True)
    p_dlq_list = dlq_sub.add_parser(
        "list", help="list dead-lettered invocations in a store directory"
    )
    p_dlq_list.add_argument(
        "--store", required=True, metavar="DIR",
        help="DurableKV directory, or a cluster directory of shard-<n> stores",
    )
    p_dlq_list.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_dlq_list.set_defaults(func=cmd_dlq_list)
    p_dlq_show = dlq_sub.add_parser(
        "show", help="print one dead-lettered invocation record"
    )
    p_dlq_show.add_argument("invocation_id")
    p_dlq_show.add_argument("--store", required=True, metavar="DIR")
    p_dlq_show.set_defaults(func=cmd_dlq_show)
    p_dlq_requeue = dlq_sub.add_parser(
        "requeue",
        help="move a dead-lettered invocation back to pending (offline)",
    )
    p_dlq_requeue.add_argument("invocation_id")
    p_dlq_requeue.add_argument("--store", required=True, metavar="DIR")
    p_dlq_requeue.set_defaults(func=cmd_dlq_requeue)

    p_views = sub.add_parser(
        "views", help="read-model projection tools (see repro.views)"
    )
    views_sub = p_views.add_subparsers(dest="views_command", required=True)
    p_views_status = views_sub.add_parser(
        "status", help="projection cursors, record counts, and lag"
    )
    p_views_status.add_argument(
        "--store", required=True, metavar="DIR",
        help="DurableKV directory, or a cluster directory of shard-<n> stores",
    )
    p_views_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_views_status.set_defaults(func=cmd_views_status)
    p_views_query = views_sub.add_parser(
        "query", help="query persisted view records offline"
    )
    p_views_query.add_argument(
        "view", choices=("by_state", "by_key", "def_stats", "worklist"),
    )
    p_views_query.add_argument("--store", required=True, metavar="DIR")
    p_views_query.add_argument(
        "--state", metavar="STATE",
        help="filter by_state/worklist records by state",
    )
    p_views_query.add_argument(
        "--key", metavar="BUSINESS_KEY", help="business key for by_key"
    )
    p_views_query.add_argument(
        "--definition", metavar="KEY", help="filter def_stats by definition"
    )
    p_views_query.set_defaults(func=cmd_views_query)
    p_views_rebuild = views_sub.add_parser(
        "rebuild",
        help="rebuild all projections by store replay (offline, full scan)",
    )
    p_views_rebuild.add_argument("--store", required=True, metavar="DIR")
    p_views_rebuild.set_defaults(func=cmd_views_rebuild)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
