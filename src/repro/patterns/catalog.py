"""Pattern definitions, fragments, and runtime verifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.history.events import EventTypes
from repro.model.builder import ProcessBuilder
from repro.worklist.allocation import ShortestQueueAllocator


def _fresh_engine() -> ProcessEngine:
    engine = ProcessEngine(
        clock=VirtualClock(0), allocator=ShortestQueueAllocator()
    )
    engine.organization.add("worker", roles=["staff"])
    return engine


def _activity_completions(engine: ProcessEngine, instance_id: str) -> list[str]:
    return [
        e.data["node_id"]
        for e in engine.history.instance_events(instance_id)
        if e.type == EventTypes.NODE_COMPLETED and e.data.get("is_activity")
    ]


@dataclass(frozen=True)
class PatternSpec:
    """One control-flow pattern and how (whether) this BPMS realizes it."""

    number: int
    name: str
    supported: bool
    baseline_supported: bool
    note: str
    verify: Callable[[], bool] | None = None

    def check(self) -> bool:
        """Execute the verification; unsupported patterns return False."""
        if not self.supported or self.verify is None:
            return False
        return self.verify()


# -- verifications (one per supported pattern) ---------------------------------


def _verify_sequence() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p01")
        .start()
        .script_task("a", script="x = 1")
        .script_task("b", script="y = x + 1")
        .end()
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p01")
    return (
        instance.state is InstanceState.COMPLETED
        and _activity_completions(engine, instance.id) == ["a", "b"]
    )


def _parallel_block(key: str):
    return (
        ProcessBuilder(key)
        .start()
        .parallel_gateway("fork")
        .branch()
        .script_task("a", script="a = 1")
        .parallel_gateway("sync")
        .branch_from("fork")
        .script_task("b", script="b = 1")
        .connect_to("sync")
        .move_to("sync")
        .script_task("after", script="after = a + b")
        .end()
        .build()
    )


def _verify_parallel_split() -> bool:
    engine = _fresh_engine()
    engine.deploy(_parallel_block("p02"))
    instance = engine.start_instance("p02")
    done = set(_activity_completions(engine, instance.id))
    return instance.state is InstanceState.COMPLETED and {"a", "b"} <= done


def _verify_synchronization() -> bool:
    engine = _fresh_engine()
    engine.deploy(_parallel_block("p03"))
    instance = engine.start_instance("p03")
    completions = _activity_completions(engine, instance.id)
    # 'after' runs exactly once, and only after both branches
    return (
        completions.count("after") == 1
        and completions.index("after") > completions.index("a")
        and completions.index("after") > completions.index("b")
    )


def _choice_model(key: str):
    return (
        ProcessBuilder(key)
        .start()
        .exclusive_gateway("choose")
        .branch(condition="go_left == true")
        .script_task("left", script="taken = 'left'")
        .exclusive_gateway("merge")
        .branch_from("choose", default=True)
        .script_task("right", script="taken = 'right'")
        .connect_to("merge")
        .move_to("merge")
        .script_task("after", script="done = true")
        .end()
        .build()
    )


def _verify_exclusive_choice() -> bool:
    engine = _fresh_engine()
    engine.deploy(_choice_model("p04"))
    left = engine.start_instance("p04", {"go_left": True})
    right = engine.start_instance("p04", {"go_left": False})
    return (
        left.variables["taken"] == "left"
        and right.variables["taken"] == "right"
        and "right" not in _activity_completions(engine, left.id)
    )


def _verify_simple_merge() -> bool:
    engine = _fresh_engine()
    engine.deploy(_choice_model("p05"))
    instance = engine.start_instance("p05", {"go_left": True})
    completions = _activity_completions(engine, instance.id)
    return completions.count("after") == 1


def _multi_choice_model(key: str):
    return (
        ProcessBuilder(key)
        .start()
        .inclusive_gateway("or_split")
        .branch(condition="want_a == true")
        .script_task("a", script="a_done = true")
        .inclusive_gateway("or_join")
        .branch_from("or_split", condition="want_b == true")
        .script_task("b", script="b_done = true")
        .connect_to("or_join")
        .branch_from("or_split", default=True)
        .script_task("neither", script="neither_done = true")
        .connect_to("or_join")
        .move_to("or_join")
        .script_task("after", script="after_done = true")
        .end()
        .build()
    )


def _verify_multi_choice() -> bool:
    engine = _fresh_engine()
    engine.deploy(_multi_choice_model("p06"))
    both = engine.start_instance("p06", {"want_a": True, "want_b": True})
    only_a = engine.start_instance("p06", {"want_a": True, "want_b": False})
    return (
        both.variables.get("a_done") and both.variables.get("b_done")
        and only_a.variables.get("a_done")
        and "b_done" not in only_a.variables
    )


def _verify_synchronizing_merge() -> bool:
    engine = _fresh_engine()
    engine.deploy(_multi_choice_model("p07"))
    both = engine.start_instance("p07", {"want_a": True, "want_b": True})
    completions = _activity_completions(engine, both.id)
    return completions.count("after") == 1  # OR-join synchronized both


def _verify_multi_merge() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p08")
        .start()
        .parallel_gateway("fork")
        .branch()
        .script_task("a", script="a = 1")
        .exclusive_gateway("xor_merge")
        .branch_from("fork")
        .script_task("b", script="b = 1")
        .connect_to("xor_merge")
        .move_to("xor_merge")
        .script_task("after", script="count = 0")
        .end()
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p08")
    completions = _activity_completions(engine, instance.id)
    # multi-merge: 'after' executes once per incoming token (twice)
    return (
        instance.state is InstanceState.COMPLETED
        and completions.count("after") == 2
    )


def _verify_arbitrary_cycles() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p10")
        .start()
        .script_task("init", script="n = 0")
        .exclusive_gateway("back")
        .script_task("work", script="n = n + 1")
        .exclusive_gateway("test")
        .branch(condition="n < 3")
        .connect_to("back")
        .branch_from("test", default=True)
        .end()
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p10")
    return instance.variables.get("n") == 3


def _verify_implicit_termination() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p11")
        .start()
        .parallel_gateway("fork")
        .branch()
        .script_task("a", script="a = 1")
        .end("end_a")
        .branch_from("fork")
        .script_task("b", script="b = 1")
        .end("end_b")
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p11")
    # completes when no tokens remain, despite two separate end events
    return instance.state is InstanceState.COMPLETED


def _verify_mi_design_time() -> bool:
    engine = _fresh_engine()
    child = (
        ProcessBuilder("p13_child")
        .start()
        .script_task("inspect", script="inspected = true")
        .end()
        .build()
    )
    engine.deploy(child)
    builder = ProcessBuilder("p13").start().parallel_gateway("fork")
    for k in range(3):
        builder.branch_from("fork").call_activity(
            f"instance_{k}", process_key="p13_child"
        )
        if k == 0:
            builder.parallel_gateway("sync")
        else:
            builder.connect_to("sync")
    engine.deploy(builder.move_to("sync").end().build())
    instance = engine.start_instance("p13")
    children = [
        i for i in engine.instances() if i.parent_instance_id == instance.id
    ]
    return instance.state is InstanceState.COMPLETED and len(children) == 3


def _verify_mi_without_sync() -> bool:
    engine = _fresh_engine()
    child = (
        ProcessBuilder("p12_child")
        .start()
        .user_task("linger", role="staff")
        .end()
        .build()
    )
    engine.deploy(child)
    parent = (
        ProcessBuilder("p12")
        .start()
        .multi_instance(
            "spawn",
            process_key="p12_child",
            cardinality="2",
            wait_for_completion=False,
        )
        .script_task("carry_on", script="moved = true")
        .end()
        .build()
    )
    engine.deploy(parent)
    instance = engine.start_instance("p12")
    spawned = [i for i in engine.instances() if i.definition_key == "p12_child"]
    return (
        instance.state is InstanceState.COMPLETED
        and instance.variables.get("moved") is True
        and len(spawned) == 2
        and all(i.state is InstanceState.RUNNING for i in spawned)
    )


def _verify_mi_run_time() -> bool:
    engine = _fresh_engine()
    child = (
        ProcessBuilder("p14_child")
        .start()
        .script_task("handle", script="handled = instance_index")
        .end()
        .build()
    )
    engine.deploy(child)
    parent = (
        ProcessBuilder("p14")
        .start()
        .multi_instance(
            "per_item",
            process_key="p14_child",
            cardinality="len(items)",  # known only when the case runs
            output_mappings={"handled": "handled"},
            output_collection="outcomes",
        )
        .end()
        .build()
    )
    engine.deploy(parent)
    short = engine.start_instance("p14", {"items": [1, 2]})
    long = engine.start_instance("p14", {"items": [1, 2, 3, 4, 5]})
    return (
        short.state is InstanceState.COMPLETED
        and long.state is InstanceState.COMPLETED
        and len(short.variables["outcomes"]) == 2
        and len(long.variables["outcomes"]) == 5
    )


def _verify_deferred_choice() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p16")
        .start()
        .event_gateway("defer")
        .branch()
        .message_catch("on_msg", message_name="go")
        .script_task("via_msg", script="path = 'msg'")
        .exclusive_gateway("merge")
        .branch_from("defer")
        .timer("on_time", duration=100)
        .script_task("via_timer", script="path = 'timer'")
        .connect_to("merge")
        .move_to("merge")
        .end()
        .build()
    )
    engine.deploy(model)
    msg_instance = engine.start_instance("p16")
    engine.correlate_message("go")
    timer_instance = engine.start_instance("p16")
    engine.advance_time(101)
    return (
        msg_instance.variables.get("path") == "msg"
        and timer_instance.variables.get("path") == "timer"
    )


def _verify_cancel_activity() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p19")
        .start()
        .user_task("long_task", role="staff")
        .end("done")
        .boundary_timer("deadline", attached_to="long_task", duration=50)
        .script_task("cancelled_path", script="cancelled = true")
        .end("cancel_end")
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p19")
    engine.advance_time(51)
    from repro.worklist.items import WorkItemState

    item = engine.worklist.items()[0]
    return (
        instance.state is InstanceState.COMPLETED
        and instance.variables.get("cancelled") is True
        and item.state is WorkItemState.CANCELLED
    )


def _verify_cancel_case() -> bool:
    engine = _fresh_engine()
    model = (
        ProcessBuilder("p20")
        .start()
        .parallel_gateway("fork")
        .branch()
        .script_task("fast", script="f = 1")
        .end("killer", terminate=True)
        .branch_from("fork")
        .user_task("slow", role="staff")
        .end("never")
        .build()
    )
    engine.deploy(model)
    instance = engine.start_instance("p20")
    return instance.state is InstanceState.TERMINATED and not instance.tokens


#: The catalog, in the original numbering.
PATTERNS: list[PatternSpec] = [
    PatternSpec(1, "Sequence", True, True, "sequence flows", _verify_sequence),
    PatternSpec(2, "Parallel Split", True, False, "AND gateway split", _verify_parallel_split),
    PatternSpec(3, "Synchronization", True, False, "AND gateway join", _verify_synchronization),
    PatternSpec(4, "Exclusive Choice", True, True, "XOR gateway with guards", _verify_exclusive_choice),
    PatternSpec(5, "Simple Merge", True, True, "XOR gateway join", _verify_simple_merge),
    PatternSpec(6, "Multi-Choice", True, False, "OR gateway split", _verify_multi_choice),
    PatternSpec(7, "Synchronizing Merge", True, False, "OR gateway join (can-still-arrive)", _verify_synchronizing_merge),
    PatternSpec(8, "Multi-Merge", True, False, "XOR join passes each token", _verify_multi_merge),
    PatternSpec(
        9, "Discriminator", False, False,
        "needs an n-out-of-m join; not offered by the gateway set", None,
    ),
    PatternSpec(10, "Arbitrary Cycles", True, True, "back-edges through XOR gateways", _verify_arbitrary_cycles),
    PatternSpec(11, "Implicit Termination", True, False, "instance ends when no tokens remain", _verify_implicit_termination),
    PatternSpec(
        12, "MI Without Synchronization", True, False,
        "multi-instance activity with wait_for_completion=False",
        _verify_mi_without_sync,
    ),
    PatternSpec(13, "MI Design-Time Knowledge", True, False, "fixed parallel call activities", _verify_mi_design_time),
    PatternSpec(
        14, "MI Run-Time Knowledge", True, False,
        "multi-instance activity with run-time cardinality expression",
        _verify_mi_run_time,
    ),
    PatternSpec(
        15, "MI No A Priori Knowledge", False, False,
        "cannot add instances after the multi-instance activity started", None,
    ),
    PatternSpec(16, "Deferred Choice", True, False, "event-based gateway", _verify_deferred_choice),
    PatternSpec(
        17, "Interleaved Parallel Routing", False, False,
        "no mutual-exclusion construct over unordered activities", None,
    ),
    PatternSpec(
        18, "Milestone", False, False,
        "no state-condition-gated enablement", None,
    ),
    PatternSpec(19, "Cancel Activity", True, False, "interrupting boundary events", _verify_cancel_activity),
    PatternSpec(20, "Cancel Case", True, True, "terminate end events (baseline: abort)", _verify_cancel_case),
]


def evaluate_pattern(number: int) -> bool:
    """Run one pattern's verification on a fresh engine."""
    spec = next(p for p in PATTERNS if p.number == number)
    return spec.check()


def evaluate_all() -> dict[int, bool]:
    """Run every supported pattern's verification; unsupported → False."""
    return {spec.number: spec.check() for spec in PATTERNS}
