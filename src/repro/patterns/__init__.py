"""The 20 classical control-flow workflow patterns (van der Aalst et al.).

Each pattern is a :class:`~repro.patterns.catalog.PatternSpec` with a
runnable process fragment and a *verification* that executes it on a real
engine and checks the pattern's defining behaviour — pattern support is
demonstrated, not declared.  Unsupported patterns carry the reason.

Experiment T1 evaluates this catalog against the BPMS engine and the rigid
first-generation baseline (:mod:`repro.baseline`).
"""

from repro.patterns.catalog import (
    PATTERNS,
    PatternSpec,
    evaluate_all,
    evaluate_pattern,
)

__all__ = ["PATTERNS", "PatternSpec", "evaluate_all", "evaluate_pattern"]
