"""Resilient service invocation: retry with backoff behind a breaker."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.clock import Clock, WallClock
from repro.model.elements import RetryPolicy
from repro.obs import Observability
from repro.services.breaker import CircuitBreaker, CircuitOpenError, CircuitState
from repro.services.errors import ServiceFailure
from repro.services.registry import ServiceRegistry


@dataclass
class InvocationResult:
    """Outcome of one logical invocation (possibly several attempts)."""

    service: str
    value: Any = None
    succeeded: bool = False
    attempts: int = 0
    total_backoff: float = 0.0
    error: str | None = None
    rejected_by_breaker: bool = False


@dataclass
class InvokerStats:
    """Aggregate counters, for dashboards and the T6 bench."""

    calls: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    breaker_rejections: int = 0
    per_service: dict[str, int] = field(default_factory=dict)


class ServiceInvoker:
    """Invokes registry services with retry + circuit-breaker protection.

    ``use_breaker=False`` and ``RetryPolicy(max_attempts=1)`` reduce this to
    the 'naive invocation' baseline of experiment T6.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        clock: Clock | None = None,
        use_breaker: bool = True,
        breaker_failure_threshold: int = 5,
        breaker_reset_timeout: float = 30.0,
        obs: Observability | None = None,
    ) -> None:
        self.registry = registry
        self.clock = clock or WallClock()
        self.use_breaker = use_breaker
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        self._breakers: dict[str, CircuitBreaker] = {}
        # worker-pool threads invoke concurrently; guard lazy creation so
        # two first-callers cannot race distinct breakers for one service
        self._breakers_lock = threading.Lock()
        self.stats = InvokerStats()
        self.obs = obs if obs is not None else Observability()
        self._h_invoke = self.obs.registry.histogram("services.invoke_seconds")

    def breaker_for(self, service: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one service."""
        breaker = self._breakers.get(service)
        if breaker is None:
            with self._breakers_lock:
                breaker = self._breakers.get(service)
                if breaker is None:
                    breaker = CircuitBreaker(
                        service,
                        failure_threshold=self.breaker_failure_threshold,
                        reset_timeout=self.breaker_reset_timeout,
                        clock=self.clock,
                    )
                    breaker.on_state_change = self._on_breaker_change
                    self._breakers[service] = breaker
        return breaker

    def _on_breaker_change(
        self, breaker: CircuitBreaker, old: CircuitState, new: CircuitState
    ) -> None:
        """Record breaker transitions as metrics and trace events."""
        self.obs.registry.counter("services.breaker.transitions").inc()
        self.obs.registry.counter(f"services.breaker.to_{new.value}").inc()
        self.obs.event(
            "breaker.transition",
            service=breaker.service,
            from_state=old.value,
            to_state=new.value,
        )

    def invoke(
        self,
        service: str,
        arguments: dict[str, Any] | None = None,
        retry: RetryPolicy | None = None,
    ) -> InvocationResult:
        """Call a service with the given keyword arguments.

        Returns an :class:`InvocationResult` — the caller decides whether a
        failure is fatal (engine: boundary event or incident).  Permanent
        failures (``ServiceFailure.transient=False`` or any
        ``repro.engine.errors.BpmnError``) skip remaining retries.
        """
        if not self.obs.enabled:
            return self._invoke(service, arguments, retry)
        with self.obs.span("service.call", service=service) as span:
            result = self._invoke(service, arguments, retry)
            span.set(
                attempts=result.attempts,
                succeeded=result.succeeded,
                rejected_by_breaker=result.rejected_by_breaker,
            )
            if not result.succeeded:
                span.finish("error")
            return result

    def _invoke(
        self,
        service: str,
        arguments: dict[str, Any] | None = None,
        retry: RetryPolicy | None = None,
    ) -> InvocationResult:
        from repro.engine.errors import BpmnError  # local import: avoid cycle

        policy = retry or RetryPolicy()
        handler = self.registry.get(service)
        result = InvocationResult(service=service)
        self.stats.calls += 1
        self.stats.per_service[service] = self.stats.per_service.get(service, 0) + 1
        breaker = self.breaker_for(service) if self.use_breaker else None

        invoke_started = time.perf_counter()
        for attempt in range(1, policy.max_attempts + 1):
            if breaker is not None:
                try:
                    breaker.before_call()
                except CircuitOpenError as exc:
                    result.error = str(exc)
                    result.rejected_by_breaker = True
                    self.stats.breaker_rejections += 1
                    self.stats.failures += 1
                    # a rejection is still an invocation the caller waited
                    # on: observe it, or breaker-open storms vanish from
                    # the latency histogram and skew its percentiles
                    self._h_invoke.observe(time.perf_counter() - invoke_started)
                    return result
            result.attempts = attempt
            call_started = time.perf_counter()
            try:
                # inner try: time the downstream call alone (not backoff)
                try:
                    result.value = handler(**(arguments or {}))
                finally:
                    self._h_invoke.observe(time.perf_counter() - call_started)
            except BpmnError:
                # business errors propagate to boundary-event routing
                if breaker is not None:
                    breaker.record_success()  # the service *worked*
                raise
            except Exception as exc:  # noqa: BLE001 - downstream code is untrusted
                if breaker is not None:
                    breaker.record_failure()
                transient = getattr(exc, "transient", True)
                result.error = f"{type(exc).__name__}: {exc}"
                if not transient or attempt >= policy.max_attempts:
                    self.stats.failures += 1
                    return result
                backoff = policy.backoff(attempt)
                result.total_backoff += backoff
                self.stats.retries += 1
                self.clock.sleep(backoff)
            else:
                if breaker is not None:
                    breaker.record_success()
                result.succeeded = True
                result.error = None
                self.stats.successes += 1
                return result
        return result

    def invoke_or_raise(
        self,
        service: str,
        arguments: dict[str, Any] | None = None,
        retry: RetryPolicy | None = None,
    ) -> Any:
        """Like :meth:`invoke` but raises :class:`ServiceFailure` on failure."""
        result = self.invoke(service, arguments, retry)
        if not result.succeeded:
            raise ServiceFailure(
                service, RuntimeError(result.error or "unknown failure")
            )
        return result.value
