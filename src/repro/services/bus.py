"""In-memory message bus: publish/subscribe with correlation payloads.

Send tasks publish; the engine subscribes a catch-all and correlates
messages to waiting receive tasks / message events.  Undelivered messages
are retained per message name so a message arriving *before* its receiver
is not lost (at-least-once, buffer semantics).

Mutating operations are serialized by a re-entrant lock.  An engine binds
its dispatch lock here (:meth:`MessageBus.bind_lock`) so bus traffic and
command dispatch share one serialization gate — a publish arriving from a
foreign thread queues behind the running command instead of interleaving
with it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

Subscriber = Callable[["Message"], bool]


@dataclass(frozen=True)
class Message:
    """One published message."""

    id: int
    name: str
    correlation: Any = None
    payload: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)


class MessageBus:
    """Named-topic bus with retained undelivered messages.

    Subscribers return ``True`` when they consumed the message; consumed
    messages are not retained.  ``deliver_retained`` lets late subscribers
    (a receive task activating after the send) drain the buffer.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        self._retained: dict[str, list[Message]] = {}
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self.published_count = 0
        self.delivered_count = 0

    def bind_lock(self, lock: threading.RLock) -> None:
        """Share the caller's (engine's) serialization lock.

        Re-entrant, so a publish issued from inside a dispatched command
        (send task) does not deadlock against the dispatch gate.
        """
        self._lock = lock

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a consumer; called for every published message."""
        with self._lock:
            self._subscribers.append(subscriber)

    def adjust_delivered(self, delta: int) -> None:
        """Atomically shift ``delivered_count`` (cluster forwarder hook).

        The counter is a bare int mutated under the bus lock everywhere
        else; an unguarded read-modify-write from a forwarder claiming a
        message would race the ``+= 1`` in :meth:`publish` /
        :meth:`consume_retained` and lose increments.
        """
        with self._lock:
            self.delivered_count += delta

    def publish(
        self,
        name: str,
        correlation: Any = None,
        payload: dict[str, Any] | None = None,
    ) -> Message:
        """Publish a message; retained if no subscriber consumes it."""
        if not name:
            raise ValueError("message name must be non-empty")
        with self._lock:
            message = Message(
                id=next(self._ids),
                name=name,
                correlation=correlation,
                payload=dict(payload or {}),
            )
            self.published_count += 1
            for subscriber in self._subscribers:
                if subscriber(message):
                    self.delivered_count += 1
                    return message
            self._retain(message)
            return message

    def _retain(self, message: Message) -> None:
        """Buffer an unconsumed message (hook: the cluster's shard buses
        redirect this into one shared, cluster-wide buffer)."""
        self._retained.setdefault(message.name, []).append(message)

    def retained(self, name: str) -> list[Message]:
        """Undelivered messages for a name, oldest first."""
        with self._lock:
            return list(self._retained.get(name, ()))

    def consume_retained(
        self, name: str, correlation: Any = None, match_any: bool = False
    ) -> Message | None:
        """Pop the oldest retained message matching name (and correlation).

        ``match_any=True`` ignores the correlation value (used by catch
        events without a correlation expression).
        """
        with self._lock:
            queue = self._retained.get(name)
            if not queue:
                return None
            for index, message in enumerate(queue):
                if match_any or message.correlation == correlation:
                    self.delivered_count += 1
                    return queue.pop(index)
            return None

    @property
    def retained_count(self) -> int:
        """Total undelivered messages across names."""
        with self._lock:
            return sum(len(q) for q in self._retained.values())
