"""Service integration: the 'invoked applications' of the WfMC architecture.

Service tasks call named services through a
:class:`~repro.services.invoker.ServiceInvoker` that layers retry (with
backoff) and a circuit breaker over a plain
:class:`~repro.services.registry.ServiceRegistry`.  A lightweight in-memory
:class:`~repro.services.bus.MessageBus` carries messages between processes
and external parties, and :mod:`repro.services.edi` provides an
EDIFACT-style flat-file codec for the legacy-integration scenarios the BPM
literature of the era cares about (cargo manifests, customs declarations).
Fault injection (:mod:`repro.services.faults`) drives the resilience
experiment T6.
"""

from repro.services.breaker import CircuitBreaker, CircuitOpenError, CircuitState
from repro.services.bus import Message, MessageBus
from repro.services.edi import EdiDecodeError, EdiMessage, EdiSegment, decode_edi, encode_edi
from repro.services.errors import (
    ServiceError,
    ServiceFailure,
    ServiceNotFoundError,
)
from repro.services.faults import FaultInjector
from repro.services.invoker import InvocationResult, ServiceInvoker
from repro.services.registry import ServiceRegistry

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "EdiDecodeError",
    "EdiMessage",
    "EdiSegment",
    "FaultInjector",
    "InvocationResult",
    "Message",
    "MessageBus",
    "ServiceError",
    "ServiceFailure",
    "ServiceInvoker",
    "ServiceNotFoundError",
    "ServiceRegistry",
    "decode_edi",
    "encode_edi",
]
