"""A small EDIFACT-style flat-file codec.

Port logistics of the paper's era ran on EDI messages (IFTMIN transport
instructions, CUSDEC customs declarations, cargo manifests).  This module
provides a faithful-enough codec so examples and benchmarks can exercise
the legacy-integration path of service tasks: segments separated by ``'``,
elements by ``+``, components by ``:``, with ``?`` as the escape character.

    UNH+1+CUSDEC:D:96B'BGM+929+DOC123'...'UNT+4+1'

No external format dependency: this is a self-contained substitute for the
proprietary EDI gateways the paper-era systems integrated with (see
DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass, field

SEGMENT_TERMINATOR = "'"
ELEMENT_SEPARATOR = "+"
COMPONENT_SEPARATOR = ":"
ESCAPE = "?"

_SPECIAL = (ESCAPE, SEGMENT_TERMINATOR, ELEMENT_SEPARATOR, COMPONENT_SEPARATOR)


class EdiDecodeError(ValueError):
    """The EDI text is malformed."""


@dataclass(frozen=True)
class EdiSegment:
    """One segment: a 3-letter tag plus elements (each a component tuple)."""

    tag: str
    elements: tuple[tuple[str, ...], ...] = ()

    def element(self, index: int, component: int = 0, default: str = "") -> str:
        """Safe positional accessor."""
        try:
            return self.elements[index][component]
        except IndexError:
            return default


@dataclass
class EdiMessage:
    """An ordered list of segments."""

    segments: list[EdiSegment] = field(default_factory=list)

    def first(self, tag: str) -> EdiSegment | None:
        """The first segment with the tag, if any."""
        return next((s for s in self.segments if s.tag == tag), None)

    def all(self, tag: str) -> list[EdiSegment]:
        """All segments with the tag, in order."""
        return [s for s in self.segments if s.tag == tag]

    def __len__(self) -> int:
        return len(self.segments)


def _escape(text: str) -> str:
    for char in _SPECIAL:
        text = text.replace(char, ESCAPE + char)
    return text


def encode_edi(message: EdiMessage) -> str:
    """Serialize a message to EDI text."""
    parts = []
    for segment in message.segments:
        if not segment.tag or not segment.tag.isalnum():
            raise ValueError(f"bad segment tag {segment.tag!r}")
        rendered_elements = [
            COMPONENT_SEPARATOR.join(_escape(c) for c in components)
            for components in segment.elements
        ]
        parts.append(ELEMENT_SEPARATOR.join([segment.tag, *rendered_elements]))
    return SEGMENT_TERMINATOR.join(parts) + (SEGMENT_TERMINATOR if parts else "")


def _split_escaped(text: str, separator: str, keep_escapes: bool = False) -> list[str]:
    """Split on an unescaped separator.

    ``keep_escapes=True`` preserves escape sequences verbatim for a later
    splitting stage (segments → elements → components unescape only at the
    innermost level).
    """
    pieces: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(text):
        char = text[i]
        if char == ESCAPE:
            if i + 1 >= len(text):
                raise EdiDecodeError("dangling escape character")
            if keep_escapes:
                current.append(char)
            current.append(text[i + 1])
            i += 2
        elif char == separator:
            pieces.append("".join(current))
            current = []
            i += 1
        else:
            current.append(char)
            i += 1
    pieces.append("".join(current))
    return pieces


def decode_edi(text: str) -> EdiMessage:
    """Parse EDI text into a message; raises :class:`EdiDecodeError`."""
    message = EdiMessage()
    stripped = text.strip()
    if not stripped:
        return message
    # split into segments honouring escapes
    raw_segments: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(stripped):
        char = stripped[i]
        if char == ESCAPE:
            if i + 1 >= len(stripped):
                raise EdiDecodeError("dangling escape character")
            current.append(char)
            current.append(stripped[i + 1])
            i += 2
        elif char == SEGMENT_TERMINATOR:
            raw_segments.append("".join(current))
            current = []
            i += 1
        else:
            current.append(char)
            i += 1
    if "".join(current).strip():
        raise EdiDecodeError("unterminated final segment")
    for raw in raw_segments:
        if not raw:
            continue
        element_parts = _split_escaped(raw, ELEMENT_SEPARATOR, keep_escapes=True)
        tag = element_parts[0]
        if not tag or len(tag) > 3 or not tag.isalnum():
            raise EdiDecodeError(f"bad segment tag {tag!r}")
        elements = tuple(
            tuple(_split_escaped(e, COMPONENT_SEPARATOR)) for e in element_parts[1:]
        )
        message.segments.append(EdiSegment(tag=tag.upper(), elements=elements))
    return message
