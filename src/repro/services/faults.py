"""Fault injection for resilience experiments.

Wraps a service callable so it fails with a configured probability (seeded,
reproducible) or for a deterministic failure window.  Used by experiment T6
and the failure-injection tests.
"""

from __future__ import annotations

import random
from typing import Any, Callable


class InjectedFault(RuntimeError):
    """The failure raised by the injector (transient by default)."""

    transient = True


class FaultInjector:
    """Probabilistic / windowed fault wrapper around a callable.

    >>> injector = FaultInjector(lambda: "ok", failure_rate=0.0)
    >>> injector()
    'ok'
    """

    def __init__(
        self,
        handler: Callable[..., Any],
        failure_rate: float = 0.0,
        fail_first: int = 0,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        self.handler = handler
        self.failure_rate = failure_rate
        self.fail_first = fail_first
        self._rng = random.Random(seed)
        self.calls = 0
        self.faults = 0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.calls <= self.fail_first:
            self.faults += 1
            raise InjectedFault(f"injected fault (deterministic window, call {self.calls})")
        if self.failure_rate and self._rng.random() < self.failure_rate:
            self.faults += 1
            raise InjectedFault(f"injected fault (rate {self.failure_rate})")
        return self.handler(*args, **kwargs)
