"""The service registry: names bound to callables."""

from __future__ import annotations

from typing import Any, Callable

from repro.services.errors import ServiceNotFoundError

Service = Callable[..., Any]


class ServiceRegistry:
    """Registry mapping service names to Python callables.

    >>> registry = ServiceRegistry()
    >>> @registry.service("credit_check")
    ... def credit_check(customer_id, amount):
    ...     return {"approved": amount < 1000}
    >>> registry.get("credit_check")(customer_id="c1", amount=50)
    {'approved': True}
    """

    def __init__(self) -> None:
        self._services: dict[str, Service] = {}

    def register(self, name: str, handler: Service) -> None:
        """Bind a callable; raises ``ValueError`` on duplicate names."""
        if not name:
            raise ValueError("service name must be non-empty")
        if name in self._services:
            raise ValueError(f"service {name!r} already registered")
        if not callable(handler):
            raise ValueError(f"service {name!r} handler is not callable")
        self._services[name] = handler

    def service(self, name: str) -> Callable[[Service], Service]:
        """Decorator form of :meth:`register`."""

        def decorator(handler: Service) -> Service:
            self.register(name, handler)
            return handler

        return decorator

    def replace(self, name: str, handler: Service) -> None:
        """Rebind an existing name (hot swap for tests / fault injection)."""
        if name not in self._services:
            raise ServiceNotFoundError(f"unknown service {name!r}")
        self._services[name] = handler

    def get(self, name: str) -> Service:
        """Look up a service; raises :class:`ServiceNotFoundError`."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceNotFoundError(f"unknown service {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._services)
