"""Errors raised by the service-integration subsystem."""


class ServiceError(Exception):
    """Base class for service errors."""


class ServiceNotFoundError(ServiceError):
    """No service registered under the requested name."""


class ServiceFailure(ServiceError):
    """A service raised; wraps the original exception.

    ``transient=True`` marks failures worth retrying (the default);
    permanent failures bypass the retry loop.
    """

    def __init__(self, service: str, cause: Exception, transient: bool = True) -> None:
        super().__init__(f"service {service!r} failed: {cause}")
        self.service = service
        self.cause = cause
        self.transient = transient
