"""Circuit breaker for service invocation.

Classic three-state breaker: CLOSED (normal) → OPEN after
``failure_threshold`` consecutive failures (calls rejected instantly) →
HALF_OPEN after ``reset_timeout`` (one trial call; success closes, failure
re-opens).  Keeps a failing downstream from eating every instance's retry
budget.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable

from repro.clock import Clock, WallClock
from repro.services.errors import ServiceError


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitOpenError(ServiceError):
    """The breaker rejected the call without invoking the service."""

    def __init__(self, service: str, retry_at: float) -> None:
        super().__init__(f"circuit open for service {service!r} until {retry_at:.3f}")
        self.service = service
        self.retry_at = retry_at


class CircuitBreaker:
    """Per-service breaker; thread-safe.

    State transitions (including the timeout-driven OPEN → HALF_OPEN probe
    performed lazily by :attr:`state`) happen under an internal re-entrant
    lock, so breakers shared across concurrently dispatching clients never
    lose a failure count or double-admit the half-open trial call.  The
    ``on_state_change`` listener fires inside the lock: keep it fast and
    do not call back into the breaker's mutating API from it.
    """

    def __init__(
        self,
        service: str,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Clock | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.service = service
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock = clock or WallClock()
        self._lock = threading.RLock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.rejected_calls = 0
        #: optional observer fired on every state change as
        #: ``listener(breaker, old_state, new_state)``
        self.on_state_change: Callable[
            ["CircuitBreaker", CircuitState, CircuitState], None
        ] | None = None

    def _set_state(self, new_state: CircuitState) -> None:
        old_state = self._state
        if old_state is new_state:
            return
        self._state = new_state
        if self.on_state_change is not None:
            self.on_state_change(self, old_state, new_state)

    @property
    def state(self) -> CircuitState:
        """Current state, accounting for timeout-driven OPEN → HALF_OPEN."""
        with self._lock:
            if (
                self._state is CircuitState.OPEN
                and self.clock.now() - self._opened_at >= self.reset_timeout
            ):
                self._set_state(CircuitState.HALF_OPEN)
            return self._state

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` when OPEN."""
        with self._lock:
            if self.state is CircuitState.OPEN:
                self.rejected_calls += 1
                raise CircuitOpenError(
                    self.service, self._opened_at + self.reset_timeout
                )

    def record_success(self) -> None:
        """Feed back a successful call."""
        with self._lock:
            self._consecutive_failures = 0
            self._set_state(CircuitState.CLOSED)

    def record_failure(self) -> None:
        """Feed back a failed call; may trip the breaker."""
        with self._lock:
            if self.state is CircuitState.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._opened_at = self.clock.now()
        self._consecutive_failures = 0
        self._set_state(CircuitState.OPEN)

    def reset(self) -> None:
        """Force-close (administrative override)."""
        with self._lock:
            self._consecutive_failures = 0
            self._set_state(CircuitState.CLOSED)
