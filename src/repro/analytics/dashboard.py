"""Plain-text monitoring dashboard over a fleet report."""

from __future__ import annotations

from repro.analytics.kpis import FleetReport


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_dashboard(report: FleetReport, title: str = "process monitor") -> str:
    """Render the fleet report as a fixed-width text dashboard."""
    lines = [
        f"== {title} ==",
        f"instances  : {report.total_instances} total | "
        f"{report.completed} completed | {report.running} running | "
        f"{report.failed} failed | {report.terminated} terminated",
        f"completion : [{_bar(report.completion_rate)}] {report.completion_rate:.1%}",
    ]
    if report.cycle_times:
        lines.append(
            f"cycle time : mean={report.mean_cycle_time:.2f} "
            f"median={report.median_cycle_time:.2f}"
        )
    bottlenecks = report.bottleneck_activities()
    if bottlenecks:
        lines.append("bottlenecks:")
        worst = bottlenecks[0].mean_duration or 1.0
        for stats in bottlenecks:
            lines.append(
                f"  {stats.node_id:<20} [{_bar(stats.mean_duration / worst, 16)}] "
                f"mean={stats.mean_duration:.2f} n={stats.executions}"
            )
    if report.failures:
        lines.append("recent failures:")
        for instance_id, reason in report.failures[-3:]:
            lines.append(f"  {instance_id}: {reason[:70]}")
    return "\n".join(lines)
