"""Fleet-level KPIs aggregated from engine history."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median

from repro.history.audit import HistoryService
from repro.history.events import EventTypes


@dataclass
class CycleTimeAggregate:
    """A mergeable, constant-size cycle-time summary (count/total/min/max).

    Unlike the raw duration lists kept by :class:`FleetReport`, this
    aggregate is O(1) in memory and supports both incremental
    ``observe`` (the read-model maintenance path in :mod:`repro.views`)
    and cross-shard ``merge`` — the two operations a materialized
    per-definition analytics view needs.
    """

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.min = duration if self.min is None else builtins_min(self.min, duration)
        self.max = duration if self.max is None else builtins_max(self.max, duration)

    def merge(self, other: "CycleTimeAggregate") -> "CycleTimeAggregate":
        """A new aggregate combining both (neither operand mutated)."""
        if other.count == 0:
            return CycleTimeAggregate(self.count, self.total, self.min, self.max)
        if self.count == 0:
            return CycleTimeAggregate(other.count, other.total, other.min, other.max)
        return CycleTimeAggregate(
            count=self.count + other.count,
            total=self.total + other.total,
            min=builtins_min(self.min, other.min),
            max=builtins_max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "CycleTimeAggregate":
        return cls(
            count=int(raw.get("count", 0)),
            total=float(raw.get("total", 0.0)),
            min=raw.get("min"),
            max=raw.get("max"),
        )


# dataclass fields shadow the builtins inside the class body
builtins_min = min
builtins_max = max


@dataclass
class ActivityStats:
    """Aggregate statistics for one activity across instances."""

    node_id: str
    executions: int = 0
    durations: list[float] = field(default_factory=list)

    @property
    def mean_duration(self) -> float:
        return mean(self.durations) if self.durations else 0.0

    @property
    def max_duration(self) -> float:
        return max(self.durations, default=0.0)


@dataclass
class FleetReport:
    """Everything the monitoring dashboard needs."""

    total_instances: int = 0
    completed: int = 0
    failed: int = 0
    terminated: int = 0
    running: int = 0
    cycle_times: list[float] = field(default_factory=list)
    activity_stats: dict[str, ActivityStats] = field(default_factory=dict)
    failures: list[tuple[str, str]] = field(default_factory=list)  # (instance, reason)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.total_instances if self.total_instances else 0.0

    @property
    def mean_cycle_time(self) -> float:
        return mean(self.cycle_times) if self.cycle_times else 0.0

    @property
    def median_cycle_time(self) -> float:
        return median(self.cycle_times) if self.cycle_times else 0.0

    def bottleneck_activities(self, top: int = 3) -> list[ActivityStats]:
        """Activities with the largest mean enter→complete duration."""
        scored = [s for s in self.activity_stats.values() if s.durations]
        scored.sort(key=lambda s: (-s.mean_duration, s.node_id))
        return scored[:top]


def fleet_report(history: HistoryService) -> FleetReport:
    """Aggregate per-instance history into a fleet report."""
    report = FleetReport()
    for instance_id in history.instances():
        events = history.instance_events(instance_id)
        if not any(e.type == EventTypes.INSTANCE_STARTED for e in events):
            continue
        report.total_instances += 1
        terminal = next(
            (
                e
                for e in events
                if e.type
                in (
                    EventTypes.INSTANCE_COMPLETED,
                    EventTypes.INSTANCE_FAILED,
                    EventTypes.INSTANCE_TERMINATED,
                )
            ),
            None,
        )
        if terminal is None:
            report.running += 1
        elif terminal.type == EventTypes.INSTANCE_COMPLETED:
            report.completed += 1
            duration = history.instance_duration(instance_id)
            if duration is not None:
                report.cycle_times.append(duration)
        elif terminal.type == EventTypes.INSTANCE_FAILED:
            report.failed += 1
            report.failures.append(
                (instance_id, terminal.data.get("reason", "unknown"))
            )
        else:
            report.terminated += 1
        for node_id, durations in history.node_durations(instance_id).items():
            stats = report.activity_stats.setdefault(
                node_id, ActivityStats(node_id=node_id)
            )
            stats.executions += len(durations)
            stats.durations.extend(durations)
    return report
