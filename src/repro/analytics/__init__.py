"""Analytics over engine history: fleet KPIs, bottlenecks, dashboards.

Where :mod:`repro.sim.kpi` reports on one simulation run, this package
aggregates across everything an engine has executed — the monitoring
component of the WfMC reference architecture.
"""

from repro.analytics.kpis import ActivityStats, FleetReport, fleet_report
from repro.analytics.dashboard import render_dashboard

__all__ = ["ActivityStats", "FleetReport", "fleet_report", "render_dashboard"]
