"""A rigid first-generation 'workflow system' — the comparison baseline.

Before BPMS, process automation meant hard-coded workflow scripts: an
ordered set of steps wired together in code, executed sequentially, with
no parallelism, no events, no timers, and — critically for experiment T5 —
no way to change the process without draining or aborting in-flight work.

The baseline is deliberately capable enough to be a fair paper-era
comparator (sequential steps, conditional routing, loops, manual steps,
abort) and deliberately missing everything the BPMS adds (T1's support
matrix quantifies the gap).
"""

from repro.baseline.engine import (
    RigidCase,
    RigidCaseState,
    RigidEngine,
    RigidWorkflow,
    Step,
    WorkflowChangeError,
)

__all__ = [
    "RigidCase",
    "RigidCaseState",
    "RigidEngine",
    "RigidWorkflow",
    "Step",
    "WorkflowChangeError",
]
