"""The rigid workflow engine: hard-coded steps, drain-or-abort change."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

Action = Callable[[dict[str, Any]], None]
Router = Callable[[dict[str, Any]], str | None]


class WorkflowChangeError(RuntimeError):
    """Redeploying over in-flight cases is not possible in a rigid system."""


@dataclass
class Step:
    """One hard-coded workflow step.

    ``action`` mutates the case state (None for manual steps, which pause
    the case until :meth:`RigidEngine.complete_manual`); ``next_step``
    names the successor, or ``router`` computes it from state (returning
    ``None`` ends the case).
    """

    name: str
    action: Action | None = None
    next_step: str | None = None
    router: Router | None = None
    manual: bool = False

    def successor(self, state: dict[str, Any]) -> str | None:
        if self.router is not None:
            return self.router(state)
        return self.next_step


@dataclass
class RigidWorkflow:
    """An ordered, code-wired set of steps."""

    name: str
    steps: dict[str, Step] = field(default_factory=dict)
    entry: str | None = None

    def add_step(self, step: Step) -> "RigidWorkflow":
        if step.name in self.steps:
            raise ValueError(f"duplicate step {step.name!r}")
        self.steps[step.name] = step
        if self.entry is None:
            self.entry = step.name
        return self

    def step(self, name: str) -> Step:
        try:
            return self.steps[name]
        except KeyError:
            raise ValueError(f"unknown step {name!r}") from None


class RigidCaseState(enum.Enum):
    RUNNING = "running"
    WAITING_MANUAL = "waiting_manual"
    COMPLETED = "completed"
    ABORTED = "aborted"
    FAILED = "failed"


@dataclass
class RigidCase:
    """One execution of a rigid workflow."""

    id: str
    workflow_name: str
    state: RigidCaseState = RigidCaseState.RUNNING
    current_step: str | None = None
    variables: dict[str, Any] = field(default_factory=dict)
    history: list[str] = field(default_factory=list)
    failure: str | None = None


class RigidEngine:
    """Runs rigid workflows; process change aborts in-flight cases.

    The deliberately painful part: :meth:`redeploy` refuses while cases are
    in flight unless ``force=True``, which aborts them — the behaviour the
    T5 flexibility experiment contrasts with BPMS hot migration.
    """

    def __init__(self) -> None:
        self._workflows: dict[str, RigidWorkflow] = {}
        self._cases: dict[str, RigidCase] = {}
        self._seq = itertools.count(1)
        self.max_steps = 10_000

    # -- deployment --------------------------------------------------------------

    def deploy(self, workflow: RigidWorkflow) -> None:
        """Install a workflow; rejects overwriting (use redeploy)."""
        if workflow.name in self._workflows:
            raise WorkflowChangeError(
                f"workflow {workflow.name!r} already deployed; redeploy() to change"
            )
        if workflow.entry is None:
            raise ValueError("workflow has no steps")
        self._workflows[workflow.name] = workflow

    def redeploy(self, workflow: RigidWorkflow, force: bool = False) -> list[str]:
        """Replace a workflow version.

        With in-flight cases this raises :class:`WorkflowChangeError`
        unless ``force=True``, which ABORTS them all (their ids are
        returned) — rigid systems cannot migrate running work.
        """
        in_flight = [
            c
            for c in self._cases.values()
            if c.workflow_name == workflow.name
            and c.state in (RigidCaseState.RUNNING, RigidCaseState.WAITING_MANUAL)
        ]
        if in_flight and not force:
            raise WorkflowChangeError(
                f"{len(in_flight)} case(s) in flight; rigid systems must drain "
                f"or abort (force=True) before changing the process"
            )
        aborted = []
        for case in in_flight:
            case.state = RigidCaseState.ABORTED
            case.failure = "aborted by redeploy"
            aborted.append(case.id)
        self._workflows[workflow.name] = workflow
        return aborted

    # -- execution ------------------------------------------------------------------

    def start_case(
        self, workflow_name: str, variables: dict[str, Any] | None = None
    ) -> RigidCase:
        """Start and run a case until completion or the first manual step."""
        workflow = self._workflows.get(workflow_name)
        if workflow is None:
            raise ValueError(f"unknown workflow {workflow_name!r}")
        case = RigidCase(
            id=f"case-{next(self._seq)}",
            workflow_name=workflow_name,
            current_step=workflow.entry,
            variables=dict(variables or {}),
        )
        self._cases[case.id] = case
        self._run(case)
        return case

    def _run(self, case: RigidCase) -> None:
        workflow = self._workflows[case.workflow_name]
        steps = 0
        while case.state is RigidCaseState.RUNNING and case.current_step is not None:
            steps += 1
            if steps > self.max_steps:
                case.state = RigidCaseState.FAILED
                case.failure = "step budget exhausted"
                return
            step = workflow.step(case.current_step)
            if step.manual:
                case.state = RigidCaseState.WAITING_MANUAL
                return
            case.history.append(step.name)
            if step.action is not None:
                try:
                    step.action(case.variables)
                except Exception as exc:  # noqa: BLE001 - steps are user code
                    case.state = RigidCaseState.FAILED
                    case.failure = f"{type(exc).__name__}: {exc}"
                    return
            case.current_step = step.successor(case.variables)
        if case.state is RigidCaseState.RUNNING:
            case.state = RigidCaseState.COMPLETED

    def complete_manual(
        self, case_id: str, result: dict[str, Any] | None = None
    ) -> RigidCase:
        """Finish the pending manual step and continue the case."""
        case = self.case(case_id)
        if case.state is not RigidCaseState.WAITING_MANUAL:
            raise ValueError(f"case {case_id!r} is not waiting on a manual step")
        workflow = self._workflows[case.workflow_name]
        step = workflow.step(case.current_step)
        case.variables.update(result or {})
        case.history.append(step.name)
        case.state = RigidCaseState.RUNNING
        case.current_step = step.successor(case.variables)
        self._run(case)
        return case

    def abort_case(self, case_id: str) -> RigidCase:
        """Cancel a case (pattern 20 is the one cancellation rigid systems had)."""
        case = self.case(case_id)
        if case.state in (RigidCaseState.RUNNING, RigidCaseState.WAITING_MANUAL):
            case.state = RigidCaseState.ABORTED
        return case

    # -- queries ----------------------------------------------------------------------

    def case(self, case_id: str) -> RigidCase:
        try:
            return self._cases[case_id]
        except KeyError:
            raise ValueError(f"unknown case {case_id!r}") from None

    def cases(self, state: RigidCaseState | None = None) -> list[RigidCase]:
        values = list(self._cases.values())
        if state is not None:
            values = [c for c in values if c.state is state]
        return values
