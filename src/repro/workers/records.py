"""The durable unit of asynchronous service execution.

An :class:`InvocationRecord` is written under ``invocation/<id>`` in the
same group commit as the dispatch that enqueued it, and deleted in the
same commit as the :class:`~repro.engine.commands.CompleteServiceInvocation`
that resolved it — so at any crash point the store holds exactly the set
of acknowledged-but-unresolved invocations, and ``recover()`` re-enqueues
precisely those.  Dead-lettered records move to ``dlq/<id>`` with the
failure context attached (see the ``repro dlq`` CLI).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.model.elements import RetryPolicy


@dataclass
class InvocationRecord:
    """One pending service invocation, serializable for the store."""

    id: str
    instance_id: str
    token_id: int
    node_id: str
    service: str
    arguments: dict[str, Any] = field(default_factory=dict)
    #: snapshot of the node's :class:`RetryPolicy` at enqueue time, so a
    #: recovery (or a requeue after redeployment) retries under the policy
    #: the invocation was admitted with
    retry: dict[str, Any] = field(default_factory=dict)
    enqueued_at: float = 0.0
    #: times this record came back from the dead-letter queue; part of the
    #: completion dedup key so a requeued execution is a *new* completion
    requeues: int = 0

    @classmethod
    def for_node(
        cls,
        invocation_id: str,
        instance_id: str,
        token_id: int,
        node: Any,
        arguments: dict[str, Any],
        enqueued_at: float,
    ) -> "InvocationRecord":
        policy = getattr(node, "retry", None)
        retry = (
            {
                "max_attempts": policy.max_attempts,
                "initial_backoff": policy.initial_backoff,
                "backoff_multiplier": policy.backoff_multiplier,
            }
            if policy is not None
            else {}
        )
        return cls(
            id=invocation_id,
            instance_id=instance_id,
            token_id=token_id,
            node_id=node.id,
            service=node.service,
            arguments=dict(arguments),
            retry=retry,
            enqueued_at=enqueued_at,
        )

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(**self.retry) if self.retry else RetryPolicy()

    def completion_dedup_key(self) -> str:
        return f"inv:{self.id}:{self.requeues}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "instance_id": self.instance_id,
            "token_id": self.token_id,
            "node_id": self.node_id,
            "service": self.service,
            "arguments": dict(self.arguments),
            "retry": dict(self.retry),
            "enqueued_at": self.enqueued_at,
            "requeues": self.requeues,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "InvocationRecord":
        # dead-letter records carry extra context (error, failed_at, ...);
        # rebuilding for a requeue keeps only the record fields
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in raw.items() if k in names})
