"""Non-blocking service execution: pool, records, dead-letter queue.

See DESIGN.md §Asynchronous service execution for the full cycle; the
short version: service tasks enqueue durable
:class:`~repro.workers.records.InvocationRecord`\\ s under the shard lock,
a :class:`~repro.workers.pool.WorkerPool` of competing consumers executes
them with no lock held, and outcomes return as idempotent
``CompleteServiceInvocation`` commands through the dispatch pipeline.
"""

from repro.workers.pool import WorkerPool
from repro.workers.records import InvocationRecord

__all__ = ["InvocationRecord", "WorkerPool"]
