"""Competing-consumers worker pool for non-blocking service execution.

The enqueue/execute/complete cycle (see DESIGN.md §Asynchronous service
execution):

* **enqueue under the lock** — the service-task executor, running inside
  a dispatch, parks the token and registers an
  :class:`~repro.workers.records.InvocationRecord`; the engine hands the
  record to :meth:`WorkerPool.submit` only *after* the group commit that
  made it durable.
* **execute in the pool** — worker threads drain one bounded queue per
  service (queue-based load leveling) under a per-service in-flight cap
  (bulkhead), and run the engine's invoker/retry/breaker stack while
  holding **no** shard lock — the 2 ms service call that capped a shard
  at ~370 inst/s in F11 now overlaps with dispatch.
* **complete via dispatch** — the outcome returns as an idempotent
  :class:`~repro.engine.commands.CompleteServiceInvocation` through the
  normal middleware chain: serialized, deduped, logged, group-committed.

Admission control is producer-pays: :meth:`admit` refuses when the
service's queue is full (or the service is outside ``only_services``),
and the executor falls back to the synchronous inline path — callers feel
backpressure instead of the queue growing without bound.

``workers=0`` builds a *manual* pool: no threads, entries execute on the
caller's thread via :meth:`run_next` — what the crash-matrix and property
tests use to pin exact interleavings.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engine import commands as cmds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ProcessEngine
    from repro.workers.records import InvocationRecord


@dataclass
class _Entry:
    engine: "ProcessEngine"
    record: "InvocationRecord"
    submitted: float


class WorkerPool:
    """Bounded per-service queues drained by competing consumer threads."""

    def __init__(
        self,
        workers: int = 4,
        queue_capacity: int = 64,
        max_inflight_per_service: int | None = None,
        only_services: set[str] | None = None,
        name: str = "workers",
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.name = name
        self.queue_capacity = queue_capacity
        self.max_inflight_per_service = (
            max_inflight_per_service
            if max_inflight_per_service is not None
            else max(1, workers)
        )
        self.only_services = (
            frozenset(only_services) if only_services is not None else None
        )
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_Entry]] = {}
        self._services: list[str] = []  # round-robin order over queues
        self._rr_cursor = 0
        self._inflight: dict[str, int] = {}
        self._total_inflight = 0
        self._closed = False
        # observability: bound to the first engine's registry (one registry
        # per engine/cluster; shards share it, so these are cluster-wide)
        self._obs: Any = None
        self._g_inflight: Any = None
        self._g_depth: dict[str, Any] = {}
        self._h_queue_wait: Any = None
        self._h_execute: Any = None
        self._c_throttled: Any = None
        self._c_completion_errors: Any = None
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- engine binding ---------------------------------------------------------

    def bind(self, engine: "ProcessEngine") -> None:
        """Attach observability instruments (called by ``attach_workers``)."""
        with self._cond:
            if self._obs is not None:
                return
            self._obs = engine.obs
            registry = engine.obs.registry
            self._g_inflight = registry.gauge("workers.inflight")
            self._h_queue_wait = registry.histogram("workers.queue_wait_seconds")
            self._h_execute = registry.histogram("workers.execute_seconds")
            self._c_throttled = registry.counter("workers.throttled")
            self._c_completion_errors = registry.counter(
                "workers.completion_errors"
            )

    # -- admission (called under the enqueueing shard's lock) -------------------

    def accepts(self, service: str) -> bool:
        """Whether this pool executes the named service at all."""
        return self.only_services is None or service in self.only_services

    def admit(self, service: str) -> bool:
        """Admission check for one enqueue: bulkhead scope + queue bound.

        ``False`` sends the caller down the synchronous inline path — the
        load-leveling contract is that a full queue pushes latency back to
        the producer instead of growing without bound.
        """
        if not self.accepts(service):
            return False
        with self._cond:
            if self._closed:
                return False
            queue = self._queues.get(service)
            if queue is not None and len(queue) >= self.queue_capacity:
                if self._c_throttled is not None:
                    self._c_throttled.inc()
                return False
        return True

    def submit(self, engine: "ProcessEngine", record: "InvocationRecord") -> None:
        """Queue one durable record for execution.

        Called by the engine *after* the group commit that persisted the
        record (and on ``recover()`` for records found in the store), so a
        crash can only lose work the client was never acknowledged for.
        """
        entry = _Entry(engine=engine, record=record, submitted=time.perf_counter())
        with self._cond:
            service = record.service
            queue = self._queues.get(service)
            if queue is None:
                queue = self._queues[service] = deque()
                self._services.append(service)
            queue.append(entry)
            self._set_depth_gauge(service, len(queue))
            self._cond.notify()

    # -- the consumer side ------------------------------------------------------

    def _set_depth_gauge(self, service: str, depth: int) -> None:
        if self._obs is None:
            return
        gauge = self._g_depth.get(service)
        if gauge is None:
            gauge = self._g_depth[service] = self._obs.registry.gauge(
                f"workers.queue_depth.{service}"
            )
        gauge.set(depth)

    def _next_entry(self) -> _Entry | None:
        """Pop the next runnable entry (round-robin across services,
        skipping services at their bulkhead cap).  Caller holds the lock."""
        count = len(self._services)
        for offset in range(count):
            index = (self._rr_cursor + offset) % count
            service = self._services[index]
            queue = self._queues[service]
            if not queue:
                continue
            if self._inflight.get(service, 0) >= self.max_inflight_per_service:
                continue
            self._rr_cursor = (index + 1) % count
            entry = queue.popleft()
            self._set_depth_gauge(service, len(queue))
            return entry
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                entry = self._next_entry()
                while entry is None:
                    if self._closed:
                        return
                    self._cond.wait(0.1)
                    entry = self._next_entry()
                service = entry.record.service
                self._inflight[service] = self._inflight.get(service, 0) + 1
                self._total_inflight += 1
                if self._g_inflight is not None:
                    self._g_inflight.set(self._total_inflight)
            try:
                self._execute(entry)
            finally:
                with self._cond:
                    self._inflight[service] -= 1
                    self._total_inflight -= 1
                    if self._g_inflight is not None:
                        self._g_inflight.set(self._total_inflight)
                    self._cond.notify_all()

    def _execute(self, entry: _Entry) -> None:
        if self._h_queue_wait is not None:
            self._h_queue_wait.observe(time.perf_counter() - entry.submitted)
        started = time.perf_counter()
        command = self._run_invocation(entry.engine, entry.record)
        if self._h_execute is not None:
            self._h_execute.observe(time.perf_counter() - started)
        try:
            entry.engine.dispatch(command)
        except Exception:  # noqa: BLE001 - a worker thread must not die
            # the pending record is still durable; recovery re-runs it
            if self._c_completion_errors is not None:
                self._c_completion_errors.inc()
            if self._obs is not None:
                self._obs.event(
                    "workers.completion_error",
                    invocation_id=entry.record.id,
                    service=entry.record.service,
                )

    def _run_invocation(
        self, engine: "ProcessEngine", record: "InvocationRecord"
    ) -> cmds.CompleteServiceInvocation:
        """Run the invoker/retry/breaker stack; fold the outcome into an
        idempotent completion command.  Holds no engine lock."""
        from repro.engine.errors import BpmnError  # cycle guard

        dedup_key = record.completion_dedup_key()
        try:
            result = engine.invoker.invoke(
                record.service, dict(record.arguments), retry=record.retry_policy()
            )
        except BpmnError as exc:
            return cmds.CompleteServiceInvocation(
                invocation_id=record.id,
                outcome="bpmn_error",
                error_code=exc.code,
                error=exc.detail,
                attempts=1,
                dedup_key=dedup_key,
            )
        except Exception as exc:  # noqa: BLE001 - defensive: invoker bug
            return cmds.CompleteServiceInvocation(
                invocation_id=record.id,
                outcome="failure",
                error=f"{type(exc).__name__}: {exc}",
                dedup_key=dedup_key,
            )
        if result.succeeded:
            return cmds.CompleteServiceInvocation(
                invocation_id=record.id,
                outcome="success",
                value=result.value,
                attempts=result.attempts,
                dedup_key=dedup_key,
            )
        return cmds.CompleteServiceInvocation(
            invocation_id=record.id,
            outcome="failure",
            error=result.error or "service failed",
            attempts=result.attempts,
            dedup_key=dedup_key,
        )

    # -- manual mode (workers=0) ------------------------------------------------

    def run_next(
        self, complete: bool = True
    ) -> cmds.CompleteServiceInvocation | None:
        """Execute the next queued entry on the calling thread.

        ``complete=False`` runs the service but does *not* dispatch the
        completion — the crash window between execution and
        completion-dispatch, pinned deterministically.  Returns the
        completion command (dispatched or not), or ``None`` when idle.
        """
        with self._cond:
            entry = self._next_entry()
            if entry is None:
                return None
            service = entry.record.service
            self._inflight[service] = self._inflight.get(service, 0) + 1
            self._total_inflight += 1
        try:
            command = self._run_invocation(entry.engine, entry.record)
            if complete:
                entry.engine.dispatch(command)
            return command
        finally:
            with self._cond:
                self._inflight[service] -= 1
                self._total_inflight -= 1
                self._cond.notify_all()

    def drain(self) -> int:
        """Run every queued entry to completion (manual mode); count."""
        ran = 0
        while self.run_next() is not None:
            ran += 1
        return ran

    # -- coordination -----------------------------------------------------------

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no entry is queued or in flight (or timeout).

        Quiescence here means every submitted record's completion command
        has been dispatched; callers using deferred commit policies still
        need a ``flush()`` for durability.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._total_inflight == 0 and not any(
                    self._queues.values()
                ):
                    return True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))

    def close(self, timeout: float = 10.0) -> None:
        """Stop the consumers.  Queued-but-unexecuted records stay durable
        in their engines' stores and re-enqueue on the next recovery."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    def status(self) -> dict[str, Any]:
        """Point-in-time queue/bulkhead occupancy (CLI + cluster status)."""
        with self._cond:
            return {
                "workers": len(self._threads),
                "queue_capacity": self.queue_capacity,
                "max_inflight_per_service": self.max_inflight_per_service,
                "only_services": (
                    sorted(self.only_services)
                    if self.only_services is not None
                    else None
                ),
                "queued": {
                    service: len(queue)
                    for service, queue in self._queues.items()
                    if queue
                },
                "inflight": {
                    service: count
                    for service, count in self._inflight.items()
                    if count
                },
                "closed": self._closed,
            }
