"""Materialized read-model projections (the CQRS read side).

The engine's write side is already event-sourced: every mutation is a
typed command appended to the persisted dispatch log (``dispatch/<seq>``,
PR 4) and committed as a differential write-set in one group commit
(PR 3).  This module builds the read side: compact, incrementally-
maintained projections of that state, each persisting records under
``view/<name>/<key>`` plus a per-projection ``view/<name>/__cursor``
holding the last applied dispatch sequence.

The projection contract is *transition-based*: every apply receives
``(old, new)`` compact records for one entity, where ``old`` is the
snapshot the projection system last applied (``None`` on first sight)
and ``new`` is the entity's current compact form.  Per-entity records
are pure functions of ``new``; aggregates (counters, queue depths,
cycle-time summaries) adjust by diffing ``old`` against ``new``.  Both
properties together make a projection *rebuildable*: feeding the final
base records through the same code path as ``(None, record)``
transitions reproduces the incrementally-maintained image byte for
byte — the invariant the F15 property test pins.

Determinism rules the implementations below follow (and custom
projections must follow) so that incremental maintenance, tail replay,
and full rebuild converge on identical persisted bytes:

* batches are applied in ``(rank, id)`` order (``creation_rank``);
* ordered containers insert by ``(rank, id)``, never by arrival time;
* persisted records are built with a fixed key order, aggregate maps
  with sorted or fixed-enumeration keys.

Suffixes beginning with ``__`` (``__cursor``, ``__queues``) are
reserved for projection bookkeeping — a business key starting with
``__`` is therefore not indexed by :class:`ByBusinessKey`.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.analytics.kpis import CycleTimeAggregate

T = TypeVar("T")

#: reserved record suffix holding a projection's applied dispatch seq
CURSOR_SUFFIX = "__cursor"

#: instance states in persisted-record enumeration order
INSTANCE_STATES = ("running", "suspended", "completed", "failed", "terminated")
TERMINAL_INSTANCE_STATES = frozenset(("completed", "failed", "terminated"))

#: work-item states in persisted-record enumeration order
ITEM_STATES = (
    "created", "offered", "allocated", "started", "completed", "cancelled",
)
TERMINAL_ITEM_STATES = frozenset(("completed", "cancelled"))


def creation_rank(entity_id: str) -> int:
    """Creation order of an entity (generated ids end in the sequence)."""
    # slice after rfind, not rsplit: no list allocation on a call that
    # runs twice per materialized entity (rfind < 0 slices from 0 — the
    # whole id — matching rsplit's no-separator behaviour)
    tail = entity_id[entity_id.rfind("-") + 1:]
    return int(tail) if tail.isdigit() else 0


#: memoized ``definition_id -> definition key`` (id minus the ``:version``
#: suffix) — one entry per deployed definition version, split once instead
#: of once per materialized instance record on the flush hot path
_DEFINITION_KEYS: dict[str, str] = {}


def _definition_key(definition_id: str) -> str:
    key = _DEFINITION_KEYS.get(definition_id)
    if key is None:
        key = _DEFINITION_KEYS[definition_id] = definition_id.rsplit(":", 1)[0]
    return key


#: memoized ``enum member -> .value`` — ``.value`` is a
#: ``DynamicClassAttribute`` descriptor call, and the flush hot path
#: reads it twice per completed work item; a dict hit is ~3x cheaper.
#: Keyed by member identity, so the map stays one-entry-per-state small.
_ENUM_VALUES: dict[Any, str] = {}


def _enum_value(member: Any) -> str:
    value = _ENUM_VALUES.get(member)
    if value is None:
        value = _ENUM_VALUES[member] = member.value
    return value


def merge_ranked(
    per_source: Iterable[Sequence[T]], rank_of: Callable[[T], int]
) -> list[T]:
    """K-way merge of per-source lists already ordered by rank.

    Returns one flat list ordered by ``(rank, source_index)`` — the
    cluster's canonical cross-shard creation order (ranks are per-shard
    sequences: exact within a shard, interleaved across shards).  Each
    source must be rank-nondecreasing; the merge is then O(T log k)
    instead of the collect-then-sort O(T log T).
    """
    keyed = (
        [(rank_of(entry), index, position, entry)
         for position, entry in enumerate(source)]
        for index, source in enumerate(per_source)
    )
    return [entry for _, _, _, entry in heapq.merge(*keyed)]


# -- compact records ----------------------------------------------------------
#
# The two constructors per entity kind (live object / persisted raw dict)
# MUST produce identical dicts — rebuild reads raw records from the
# store, incremental maintenance reads live objects, and the byte-
# identity invariant compares their persisted results.


def compact_instance(raw: dict[str, Any]) -> dict[str, Any]:
    """Compact view record from a persisted ``instance/<id>`` dict."""
    return {
        "id": raw["id"],
        "rank": creation_rank(raw["id"]),
        "state": raw["state"],
        "definition": _definition_key(raw["definition_id"]),
        "business_key": raw["business_key"],
        "created_at": raw["created_at"],
        "ended_at": raw["ended_at"],
    }


def compact_instance_obj(instance: Any) -> dict[str, Any]:
    """Compact view record from a live ``ProcessInstance``."""
    # rank is a pure function of the immutable id — stash it on the live
    # object so an entity recompacted every drain window parses it once
    try:
        rank = instance._view_rank
    except AttributeError:
        rank = instance._view_rank = creation_rank(instance.id)
    return {
        "id": instance.id,
        "rank": rank,
        "state": _enum_value(instance.state),
        "definition": _definition_key(instance.definition_id),
        "business_key": instance.business_key,
        "created_at": instance.created_at,
        "ended_at": instance.ended_at,
    }


def compact_item(raw: dict[str, Any]) -> dict[str, Any]:
    """Compact view record from a persisted ``workitem/<id>`` dict."""
    return {
        "id": raw["id"],
        "rank": creation_rank(raw["id"]),
        "instance_id": raw["instance_id"],
        "node_id": raw["node_id"],
        "role": raw["role"],
        "priority": raw["priority"],
        "state": raw["state"],
        "created_at": raw["created_at"],
        "allocated_to": raw["allocated_to"],
    }


def compact_item_obj(item: Any) -> dict[str, Any]:
    """Compact view record from a live ``WorkItem``."""
    try:
        rank = item._view_rank
    except AttributeError:
        rank = item._view_rank = creation_rank(item.id)
    return {
        "id": item.id,
        "rank": rank,
        "instance_id": item.instance_id,
        "node_id": item.node_id,
        "role": item.role,
        "priority": item.priority,
        "state": _enum_value(item.state),
        "created_at": item.created_at,
        "allocated_to": item.allocated_to,
    }


# -- the projection contract --------------------------------------------------


class Projection:
    """Base class: transition consumers with a differential write-set.

    ``on_instance``/``on_item`` receive ``(old, new)`` compact records
    (``old is None`` on first sight).  ``dirty_records()`` materializes
    the records changed since the last ``clear_dirty()`` — values are
    built at call time, so a retried flush after a failed transaction
    re-emits the *current* (converged) image.

    The manager feeds whole batches through ``apply_instances`` /
    ``apply_items`` (a list of ``(old, new)`` pairs in ``(rank, id)``
    order, one pair per entity).  Custom projections usually just
    override the per-transition hooks — the base batch methods loop
    them.  The built-ins override the batch methods instead (binding
    their hot state to locals once per batch rather than once per
    record) and delegate the per-transition hooks to a one-pair batch,
    so either entry point runs the same logic.
    """

    name: str = ""

    def __init__(self) -> None:
        self._dirty_keys: set[str] = set()

    # -- maintenance
    def on_instance(self, old: dict | None, new: dict) -> None:
        pass

    def on_item(self, old: dict | None, new: dict) -> None:
        pass

    def apply_instances(
        self, pairs: Sequence[tuple[dict | None, dict]]
    ) -> None:
        on_instance = self.on_instance
        for old, new in pairs:
            on_instance(old, new)

    def apply_items(self, pairs: Sequence[tuple[dict | None, dict]]) -> None:
        on_item = self.on_item
        for old, new in pairs:
            on_item(old, new)

    # -- persistence
    def dirty_records(self) -> dict[str, Any]:
        raise NotImplementedError

    def clear_dirty(self) -> None:
        self._dirty_keys.clear()

    # -- recovery
    def load_record(self, suffix: str, value: Any) -> None:
        raise NotImplementedError

    def finish_load(self) -> None:
        """Rebuild derived in-memory structures after ``load_record``s."""

    def reset(self) -> None:
        raise NotImplementedError

    def record_count(self) -> int:
        raise NotImplementedError


class InstancesByState(Projection):
    """The applied-instance table, bucketed by state.

    Persists one compact record per instance (``view/by_state/<id>``).
    In memory it keeps the rank-ordered creation sequence and per-state
    buckets, so ``instances(state=...)`` is O(matches log matches) and
    the manager's transition computation (``previous()``) is O(1).
    """

    name = "by_state"

    def __init__(self) -> None:
        super().__init__()
        self.records: dict[str, dict[str, Any]] = {}
        # (rank, id) appended at first sight — ranks are per-engine
        # creation sequences and batches apply in rank order, so the
        # list stays sorted without re-sorting
        self.order: list[tuple[int, str]] = []
        self.buckets: dict[str, dict[str, int]] = {}
        # memoized rank-ordered id lists per query key (state or None for
        # all): repeated queries over a quiesced engine are the dashboard
        # steady state, and re-sorting a bucket per call would hand back
        # the scatter-scan cost the projection exists to avoid.  Entries
        # invalidate only when a transition changes bucket membership.
        self._id_cache: dict[str | None, list[str]] = {}

    def previous(self, instance_id: str) -> dict[str, Any] | None:
        return self.records.get(instance_id)

    def on_instance(self, old: dict | None, new: dict) -> None:
        self.apply_instances(((old, new),))

    def apply_instances(
        self, pairs: Sequence[tuple[dict | None, dict]]
    ) -> None:
        if not pairs:
            return
        records = self.records
        buckets = self.buckets
        order = self.order
        dirty = self._dirty_keys
        for old, new in pairs:
            instance_id = new["id"]
            new_state = new["state"]
            if old is None:
                order.append((new["rank"], instance_id))
            elif old["state"] != new_state:
                buckets.get(old["state"], {}).pop(instance_id, None)
            bucket = buckets.get(new_state)
            if bucket is None:
                bucket = buckets[new_state] = {}
            bucket[instance_id] = new["rank"]
            records[instance_id] = new
            dirty.add(instance_id)
        self._id_cache.clear()

    def dirty_records(self) -> dict[str, Any]:
        return {key: self.records[key] for key in self._dirty_keys}

    def load_record(self, suffix: str, value: Any) -> None:
        self.records[suffix] = value

    def finish_load(self) -> None:
        self.order = sorted(
            (record["rank"], record["id"]) for record in self.records.values()
        )
        self.buckets = {}
        self._id_cache = {}
        for rank, instance_id in self.order:
            record = self.records[instance_id]
            self.buckets.setdefault(record["state"], {})[instance_id] = rank

    def reset(self) -> None:
        self.records.clear()
        self.order = []
        self.buckets = {}
        self._id_cache = {}
        self._dirty_keys.clear()

    def record_count(self) -> int:
        return len(self.records)

    # -- queries (returned lists are cached — callers must not mutate)
    def all_ids(self) -> list[str]:
        ids = self._id_cache.get(None)
        if ids is None:
            ids = self._id_cache[None] = [
                instance_id for _, instance_id in self.order
            ]
        return ids

    def ids_in_state(self, state: str) -> list[str]:
        ids = self._id_cache.get(state)
        if ids is None:
            bucket = self.buckets.get(state) or {}
            ids = self._id_cache[state] = [
                instance_id
                for _, instance_id in sorted(
                    (rank, instance_id) for instance_id, rank in bucket.items()
                )
            ]
        return ids


class ByBusinessKey(Projection):
    """Instance ids per business key (``view/by_key/<key>``).

    Each record is ``{"ids": [...]}`` in creation-rank order; inserts go
    through ``bisect.insort`` on ``(rank, id)`` so incremental
    maintenance and rebuild produce the same ordering whatever the
    arrival order.
    """

    name = "by_key"

    def __init__(self) -> None:
        super().__init__()
        self.keys: dict[str, list[tuple[int, str]]] = {}

    def on_instance(self, old: dict | None, new: dict) -> None:
        self.apply_instances(((old, new),))

    def apply_instances(
        self, pairs: Sequence[tuple[dict | None, dict]]
    ) -> None:
        keys = self.keys
        dirty = self._dirty_keys
        for old, new in pairs:
            new_key = new["business_key"]
            old_key = old["business_key"] if old is not None else None
            if new_key is None and old_key is None:
                continue  # the common keyless case: nothing to index
            if old is not None and old_key == new_key:
                continue  # keys are assigned at start; nothing to reindex
            if old_key is not None and not old_key.startswith("__"):
                bucket = keys.get(old_key, [])
                entry = (old["rank"], old["id"])
                if entry in bucket:
                    bucket.remove(entry)
                dirty.add(old_key)
            if new_key is not None and not new_key.startswith("__"):
                bisect.insort(
                    keys.setdefault(new_key, []), (new["rank"], new["id"])
                )
                dirty.add(new_key)

    def dirty_records(self) -> dict[str, Any]:
        return {
            key: {"ids": [entry_id for _, entry_id in self.keys.get(key, [])]}
            for key in self._dirty_keys
        }

    def load_record(self, suffix: str, value: Any) -> None:
        self.keys[suffix] = [
            (creation_rank(entry_id), entry_id) for entry_id in value["ids"]
        ]

    def reset(self) -> None:
        self.keys.clear()
        self._dirty_keys.clear()

    def record_count(self) -> int:
        return len(self.keys)

    # -- queries
    def ids_for_key(self, business_key: str) -> list[str]:
        return [entry_id for _, entry_id in self.keys.get(business_key, [])]


class DefinitionStats(Projection):
    """Per-definition analytics (``view/def_stats/<key>``).

    Tracks total instances started, a per-state census maintained by
    +1/-1 state-transition diffs (always consistent with a final-state
    rebuild), and a :class:`CycleTimeAggregate` over completed
    instances' ``ended_at - created_at``.
    """

    name = "def_stats"

    def __init__(self) -> None:
        super().__init__()
        self.stats: dict[str, dict[str, Any]] = {}

    def _slot(self, definition: str) -> dict[str, Any]:
        slot = self.stats.get(definition)
        if slot is None:
            slot = self.stats[definition] = {
                "total": 0,
                "states": {state: 0 for state in INSTANCE_STATES},
                "cycle": CycleTimeAggregate(),
            }
        return slot

    def on_instance(self, old: dict | None, new: dict) -> None:
        self.apply_instances(((old, new),))

    def apply_instances(
        self, pairs: Sequence[tuple[dict | None, dict]]
    ) -> None:
        slot_of = self._slot
        observe_cycle = self._observe_cycle
        dirty = self._dirty_keys
        for old, new in pairs:
            definition = new["definition"]
            state = new["state"]
            if old is None:
                slot = slot_of(definition)
                slot["total"] += 1
                states = slot["states"]
                states[state] = states.get(state, 0) + 1
                if state == "completed":
                    observe_cycle(slot, new)
                dirty.add(definition)
                continue
            old_definition = old["definition"]
            old_state = old["state"]
            if old_definition == definition and old_state == state:
                continue  # record-only change (variables, tokens): no stat moves
            if old_definition != definition:
                old_slot = slot_of(old_definition)
                old_slot["total"] -= 1
                old_states = old_slot["states"]
                old_states[old_state] = old_states.get(old_state, 1) - 1
                slot = slot_of(definition)
                slot["total"] += 1
                states = slot["states"]
                states[state] = states.get(state, 0) + 1
                dirty.add(old_definition)
            else:
                slot = slot_of(definition)
                states = slot["states"]
                states[old_state] = states.get(old_state, 1) - 1
                states[state] = states.get(state, 0) + 1
            if state == "completed" and old_state != "completed":
                observe_cycle(slot, new)
            dirty.add(definition)

    @staticmethod
    def _observe_cycle(slot: dict[str, Any], record: dict[str, Any]) -> None:
        if record["ended_at"] is not None:
            slot["cycle"].observe(record["ended_at"] - record["created_at"])

    def dirty_records(self) -> dict[str, Any]:
        return {key: self._record(key) for key in self._dirty_keys}

    def _record(self, definition: str) -> dict[str, Any]:
        slot = self._slot(definition)
        return {
            "total": slot["total"],
            "states": {
                state: slot["states"].get(state, 0) for state in INSTANCE_STATES
            },
            "cycle": slot["cycle"].to_dict(),
        }

    def load_record(self, suffix: str, value: Any) -> None:
        self.stats[suffix] = {
            "total": int(value.get("total", 0)),
            "states": {
                state: int(value.get("states", {}).get(state, 0))
                for state in INSTANCE_STATES
            },
            "cycle": CycleTimeAggregate.from_dict(value.get("cycle") or {}),
        }

    def reset(self) -> None:
        self.stats.clear()
        self._dirty_keys.clear()

    def record_count(self) -> int:
        return len(self.stats)

    # -- queries
    def report(self) -> dict[str, dict[str, Any]]:
        """All per-definition records, definition-sorted."""
        return {key: self._record(key) for key in sorted(self.stats)}


class WorklistQueues(Projection):
    """The worklist queue view (``view/worklist/<id>`` + ``__queues``).

    Persists one compact record per work item plus a single ``__queues``
    aggregate: total open items, open count per role, and a per-state
    census — the record ``repro cluster status`` and the allocator
    dashboards read instead of scanning every item.
    """

    name = "worklist"

    def __init__(self) -> None:
        super().__init__()
        self.records: dict[str, dict[str, Any]] = {}
        self.order: list[tuple[int, str]] = []
        self.buckets: dict[str, dict[str, int]] = {}
        self.role_open: dict[str, int] = {}
        self.state_counts: dict[str, int] = {}
        self.open_total = 0
        # memoized id lists per query key, as in InstancesByState
        self._id_cache: dict[str | None, list[str]] = {}

    def previous(self, item_id: str) -> dict[str, Any] | None:
        return self.records.get(item_id)

    def on_item(self, old: dict | None, new: dict) -> None:
        self.apply_items(((old, new),))

    def apply_items(self, pairs: Sequence[tuple[dict | None, dict]]) -> None:
        if not pairs:
            return
        records = self.records
        buckets = self.buckets
        counts = self.state_counts
        role_open = self.role_open
        order = self.order
        dirty = self._dirty_keys
        open_total = self.open_total
        for old, new in pairs:
            item_id = new["id"]
            new_state = new["state"]
            if old is None:
                old_state = None
                changed = True
                order.append((new["rank"], item_id))
            else:
                old_state = old["state"]
                changed = old_state != new_state
                if changed:
                    buckets.get(old_state, {}).pop(item_id, None)
                    counts[old_state] = counts.get(old_state, 1) - 1
            if changed:
                bucket = buckets.get(new_state)
                if bucket is None:
                    bucket = buckets[new_state] = {}
                bucket[item_id] = new["rank"]
                counts[new_state] = counts.get(new_state, 0) + 1
            was_open = old is not None and old_state not in TERMINAL_ITEM_STATES
            is_open = new_state not in TERMINAL_ITEM_STATES
            if is_open and not was_open:
                open_total += 1
                role_open[new["role"]] = role_open.get(new["role"], 0) + 1
            elif was_open and not is_open:
                open_total -= 1
                role_open[old["role"]] = role_open.get(old["role"], 1) - 1
            records[item_id] = new
            dirty.add(item_id)
        self.open_total = open_total
        dirty.add("__queues")
        self._id_cache.clear()

    def dirty_records(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for key in self._dirty_keys:
            if key == "__queues":
                out[key] = self._queues_record()
            else:
                out[key] = self.records[key]
        return out

    def _queues_record(self) -> dict[str, Any]:
        return {
            "open": self.open_total,
            "roles": {
                role: count
                for role, count in sorted(self.role_open.items())
                if count > 0
            },
            "states": {
                state: self.state_counts.get(state, 0) for state in ITEM_STATES
            },
        }

    def load_record(self, suffix: str, value: Any) -> None:
        if suffix == "__queues":
            return  # derived below from the item records
        self.records[suffix] = value

    def finish_load(self) -> None:
        self.order = sorted(
            (record["rank"], record["id"]) for record in self.records.values()
        )
        self.buckets = {}
        self.role_open = {}
        self.state_counts = {}
        self.open_total = 0
        self._id_cache = {}
        for rank, item_id in self.order:
            record = self.records[item_id]
            self.buckets.setdefault(record["state"], {})[item_id] = rank
            self.state_counts[record["state"]] = (
                self.state_counts.get(record["state"], 0) + 1
            )
            if record["state"] not in TERMINAL_ITEM_STATES:
                self.open_total += 1
                self.role_open[record["role"]] = (
                    self.role_open.get(record["role"], 0) + 1
                )

    def reset(self) -> None:
        self.records.clear()
        self.order = []
        self.buckets = {}
        self.role_open = {}
        self.state_counts = {}
        self.open_total = 0
        self._id_cache = {}
        self._dirty_keys.clear()

    def record_count(self) -> int:
        return len(self.records)

    # -- queries (returned lists are cached — callers must not mutate)
    def item_ids(self, state: str | None = None) -> list[str]:
        ids = self._id_cache.get(state)
        if ids is not None:
            return ids
        if state is None:
            ids = [item_id for _, item_id in self.order]
        else:
            bucket = self.buckets.get(state) or {}
            ids = [
                item_id
                for _, item_id in sorted(
                    (rank, item_id) for item_id, rank in bucket.items()
                )
            ]
        self._id_cache[state] = ids
        return ids
