"""Offline projection rebuild: replay a store's base records into views.

``repro views rebuild --store DIR`` uses this to (re)materialize the
``view/`` namespace of a closed store — after disabling/enabling views,
after upgrading across a projection-schema change, or to repair a store
whose view records are suspect.  The rebuild is linear in store size
(one scan of ``instance/``, ``workitem/``, and ``dispatch/``) and
produces records byte-identical to incremental maintenance (the
projection determinism contract; see :mod:`repro.views.projections`).
"""

from __future__ import annotations

from typing import Any

from repro.views.manager import VIEW_PREFIX, ProjectionManager
from repro.views.projections import compact_instance, compact_item


def rebuild_store_views(store: Any) -> dict[str, int]:
    """Rebuild all projections of one store in a single transaction.

    Stale ``view/`` keys that the rebuilt image no longer produces are
    deleted in the same transaction, so the namespace never mixes
    epochs.  Returns counts for reporting.
    """
    instances = [compact_instance(raw) for _, raw in store.scan("instance/")]
    items = [compact_item(raw) for _, raw in store.scan("workitem/")]
    seq = 0
    for _, raw in store.scan("dispatch/"):
        seq = max(seq, int(raw.get("seq", 0)))
    manager = ProjectionManager()
    writes = manager.rebuild(instances, items, seq)
    stale = [key for key, _ in store.scan(VIEW_PREFIX) if key not in writes]
    with store.transaction():
        for key in stale:
            store.delete(key)
        for key in sorted(writes):
            store.put(key, writes[key])
    store.sync()
    return {
        "instances": len(instances),
        "work_items": len(items),
        "records": len(writes),
        "deleted": len(stale),
        "seq": seq,
    }
