"""CQRS read models over the engine's event-sourced write side.

See DESIGN.md §Read models.  Layout:

* :mod:`repro.views.projections` — the projection contract, the four
  built-in projections, compact-record constructors, and the
  ``merge_ranked`` k-way merge.
* :mod:`repro.views.manager` — ``ProjectionManager``: the group-commit
  apply hook, cursor bookkeeping, recovery (load / tail replay /
  rebuild).
* :mod:`repro.views.cluster` — ``ClusterViews``: cross-shard queries
  served from per-shard read models, flat in shard count.
* :mod:`repro.views.rebuild` — offline full rebuild for closed stores
  (``repro views rebuild``).
"""

from repro.views.cluster import ClusterViews
from repro.views.manager import VIEW_PREFIX, ProjectionManager
from repro.views.projections import (
    CURSOR_SUFFIX,
    ByBusinessKey,
    DefinitionStats,
    InstancesByState,
    Projection,
    WorklistQueues,
    compact_instance,
    compact_instance_obj,
    compact_item,
    compact_item_obj,
    creation_rank,
    merge_ranked,
)
from repro.views.rebuild import rebuild_store_views

__all__ = [
    "CURSOR_SUFFIX",
    "VIEW_PREFIX",
    "ByBusinessKey",
    "ClusterViews",
    "DefinitionStats",
    "InstancesByState",
    "Projection",
    "ProjectionManager",
    "WorklistQueues",
    "compact_instance",
    "compact_instance_obj",
    "compact_item",
    "compact_item_obj",
    "creation_rank",
    "merge_ranked",
    "rebuild_store_views",
]
