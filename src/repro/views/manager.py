"""``ProjectionManager``: maintains the read models at group-commit time.

The manager hangs off :meth:`ProcessEngine._flush` as a *write-behind*
consumer of the engine's dirty sets.  Every flush that carries dirty
instances or work items notes their ids (:meth:`note_flush` — two set
unions, nothing else on the commit hot path); the noted entities are
*materialized* into the in-memory projections lazily, the first time a
query needs them or when the view write-set is persisted.  Persistence
itself (:meth:`drain`) happens **inside the same store transaction** as
a base flush, but only on flushes where the persisted image has fallen
``views_flush_lag`` dispatch seqs behind — or on any forced flush
(:meth:`ProcessEngine.flush`, batch exit), the group-commit boundary.

That shape buys the consistency story and keeps maintenance off the
per-dispatch critical path:

* projections are never ahead of durable state — view records and
  cursors commit atomically with (a subset of) the base records they
  project, and a torn commit drops the whole batch;
* the persisted image may lag by a bounded number of seqs (strictly
  less than the retained dispatch-log tail), which recovery repairs by
  replaying just the ``touched`` entity ids stamped on the log tail;
* in-memory projection state is exact on read: queries materialize any
  noted-but-unapplied entities first, so a quiesced engine serves
  current data with no scatter-scan and no per-flush apply cost.

Cursor semantics: every drain stamps each projection's
``view/<name>/__cursor`` with the engine's dispatch sequence at commit
time (all four move together).  On recovery the cursors tell the
manager how much of the dispatch log the persisted image has seen:

* **cursor == dispatch seq** → load the records, done (clean shutdown
  went through a forced flush, so this is the common case);
* **cursor < dispatch seq**, the log still retains every entry past the
  cursor, and each carries a ``touched`` entity-id stamp → re-apply
  just those entities from recovered base state (tail replay);
* anything else (no cursors, diverged cursors, pruned tail, stamps
  missing/over the cap) → full rebuild from recovered base state,
  linear in state size.

Failure handling mirrors the engine's dirty sets: per-projection dirty
keys are cleared only by :meth:`confirm` — called after the store
transaction and sync succeeded — so a failed flush re-emits the
(converged, idempotent) records on retry.
"""

from __future__ import annotations

import time
from operator import itemgetter
from typing import TYPE_CHECKING, Any, Iterable

from repro.views.projections import (
    CURSOR_SUFFIX,
    ByBusinessKey,
    DefinitionStats,
    InstancesByState,
    Projection,
    WorklistQueues,
    compact_instance_obj,
    compact_item_obj,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ProcessEngine
    from repro.obs import Observability

#: store-key namespace for all view records
VIEW_PREFIX = "view/"

#: the batch-apply determinism order (C-level key extraction)
_RANK_ID = itemgetter("rank", "id")


class ProjectionManager:
    """The four built-in projections plus apply/recover/rebuild plumbing."""

    def __init__(
        self,
        obs: "Observability | None" = None,
        extra_projections: Iterable[Projection] = (),
    ) -> None:
        self.by_state = InstancesByState()
        self.by_key = ByBusinessKey()
        self.def_stats = DefinitionStats()
        self.worklist = WorklistQueues()
        self.projections: tuple[Projection, ...] = (
            self.by_state,
            self.by_key,
            self.def_stats,
            self.worklist,
        ) + tuple(extra_projections)
        self._by_name = {p.name: p for p in self.projections}
        # skip no-op batches: only projections that override a hook (the
        # per-transition or the batch form) see that entity kind
        self._instance_projections = tuple(
            p for p in self.projections
            if type(p).on_instance is not Projection.on_instance
            or type(p).apply_instances is not Projection.apply_instances
        )
        self._item_projections = tuple(
            p for p in self.projections
            if type(p).on_item is not Projection.on_item
            or type(p).apply_items is not Projection.apply_items
        )
        #: dispatch seq the in-memory image is current through (counting
        #: noted-but-unmaterialized entities, which reads materialize)
        self.applied_seq = 0
        #: dispatch seq covered by the last *persisted* cursors
        self.persisted_seq = 0
        #: how the last recover() caught up: "load" | "tail" | "rebuild"
        self.recovered_mode: str | None = None
        # write-behind buffers: entity ids noted by flushes but not yet
        # applied to the projections; materialized on read or drain
        self._pending_instances: set[str] = set()
        self._pending_items: set[str] = set()
        self._source: "ProcessEngine | None" = None
        self._noted_seq = 0
        self._drained_seq = 0
        self._h_apply = (
            None if obs is None else obs.registry.histogram("views.apply_seconds")
        )
        self._g_lag = (
            {}
            if obs is None
            else {
                p.name: obs.registry.gauge(f"views.lag.{p.name}")
                for p in self.projections
            }
        )

    # -- the flush hook ---------------------------------------------------------

    def note_flush(
        self, engine: "ProcessEngine", seq: int, item_ids: Iterable[str]
    ) -> None:
        """Note this flush's dirty entity ids; defer the actual apply.

        Called by :meth:`ProcessEngine._flush` under the dispatch lock on
        every view-relevant flush.  Two set unions — the whole point is
        that the per-commit cost of view maintenance is O(dirty ids), not
        O(projection work).  The noted ids materialize lazily (first read
        or next :meth:`drain`), pulling each entity's *current* state, so
        an entity flushed five times between drains is applied once.
        """
        self._pending_instances.update(engine._dirty)
        self._pending_items.update(item_ids)
        self._source = engine
        self._noted_seq = seq

    def has_pending(self) -> bool:
        """Whether noted entities await materialization or persistence.

        The seq comparison matters when a *read* already materialized the
        noted ids (clearing the pending sets): the in-memory image then
        holds dirty records the store has never seen, and a forced flush
        must still drain them.  After a confirmed drain the noted seq
        never exceeds the persisted cursor, so steady-state forced
        flushes stay write-free.
        """
        return bool(
            self._pending_instances
            or self._pending_items
            or self._noted_seq > self.persisted_seq
        )

    def _materialize(self) -> None:
        """Fold noted-but-unapplied entities into the in-memory image."""
        if not self._pending_instances and not self._pending_items:
            return
        engine = self._source
        if engine is None:  # pragma: no cover - pending implies a source
            return
        with engine._dispatch_lock:
            started = time.perf_counter()
            get_instance = engine._instances.get
            instances = []
            for instance_id in self._pending_instances:
                instance = get_instance(instance_id)
                if instance is not None:
                    instances.append(compact_instance_obj(instance))
            get_item = engine.worklist._items.get
            items = []
            for item_id in self._pending_items:
                item = get_item(item_id)
                if item is not None:
                    items.append(compact_item_obj(item))
            self._pending_instances.clear()
            self._pending_items.clear()
            self._apply_memory(instances, items, self._noted_seq)
            if self._h_apply is not None:
                self._h_apply.observe(time.perf_counter() - started)

    def drain(self, engine: "ProcessEngine", seq: int) -> dict[str, Any]:
        """Materialize pending entities; return the view write-set.

        Called by :meth:`ProcessEngine._flush` under the dispatch lock,
        before the store transaction opens, on flushes that persist the
        view image (forced flushes and lag-threshold flushes).  The
        returned ``{store_key: value}`` dict (changed view records plus
        one cursor per projection) joins the flush transaction; the
        engine calls :meth:`confirm` once the transaction and sync
        succeeded.
        """
        self._noted_seq = max(self._noted_seq, seq)
        self._materialize()
        return self._write_set(seq)

    def _apply_memory(
        self,
        instances: list[dict[str, Any]],
        items: list[dict[str, Any]],
        seq: int,
    ) -> None:
        """Apply one batch of compact records to the in-memory image.

        Batches apply in ``(rank, id)`` order — the determinism contract
        that makes incremental maintenance, tail replay, and rebuild
        produce identical persisted bytes.
        """
        if instances:
            if len(instances) > 1:
                instances.sort(key=_RANK_ID)
            # snapshot every pair's `old` before any projection mutates
            # shared state — each entity appears at most once per batch,
            # so the precomputed transitions match record-at-a-time apply
            previous = self.by_state.records.get
            pairs = [(previous(record["id"]), record) for record in instances]
            for projection in self._instance_projections:
                projection.apply_instances(pairs)
        if items:
            if len(items) > 1:
                items.sort(key=_RANK_ID)
            previous = self.worklist.records.get
            pairs = [(previous(record["id"]), record) for record in items]
            for projection in self._item_projections:
                projection.apply_items(pairs)
        if seq > self.applied_seq:
            self.applied_seq = seq

    def _write_set(self, seq: int) -> dict[str, Any]:
        """Dirty view records plus one cursor per projection, at ``seq``."""
        writes: dict[str, Any] = {}
        for projection in self.projections:
            prefix = f"{VIEW_PREFIX}{projection.name}/"
            for suffix, value in projection.dirty_records().items():
                writes[prefix + suffix] = value
            writes[prefix + CURSOR_SUFFIX] = {"seq": seq}
        self._drained_seq = seq
        return writes

    def _apply(
        self,
        instances: list[dict[str, Any]],
        items: list[dict[str, Any]],
        seq: int,
    ) -> dict[str, Any]:
        """Apply one batch and return its write-set (recovery/rebuild)."""
        self._apply_memory(instances, items, seq)
        self.applied_seq = seq
        return self._write_set(seq)

    def confirm(self) -> None:
        """The drain's transaction committed: the persisted image is
        current through the drained seq; drop the differential sets."""
        for projection in self.projections:
            projection.clear_dirty()
        self.persisted_seq = self._drained_seq
        self._set_lag_gauges(self._noted_seq - self.persisted_seq)

    def note_applied(self, seq: int) -> None:
        """Mark the image current through ``seq``.

        Called after any committed flush: dirt this flush carried was
        noted (and will materialize on read), and a flush with no
        view-relevant dirt changes nothing the projections track — either
        way the image reflects all state through the engine's dispatch
        seq.  The persisted cursors may lag (deliberately — no gratuitous
        writes); recovery catches them up by tail replay.
        """
        if seq > self.applied_seq:
            self.applied_seq = seq

    # -- rebuild ----------------------------------------------------------------

    def rebuild(
        self,
        instances: list[dict[str, Any]],
        items: list[dict[str, Any]],
        seq: int,
    ) -> dict[str, Any]:
        """Reset and replay full base state; return the full write-set."""
        for projection in self.projections:
            projection.reset()
        self.applied_seq = 0
        self._pending_instances.clear()
        self._pending_items.clear()
        return self._apply(instances, items, seq)

    # -- recovery ---------------------------------------------------------------

    def recover(self, engine: "ProcessEngine") -> dict[str, Any]:
        """Load, tail-replay, or rebuild the views after engine recovery.

        Runs at the end of :meth:`ProcessEngine.recover`, once base state
        and the dispatch log are restored.  Persists whatever catch-up it
        performed (tail replay or rebuild) in one transaction + sync, so
        the next recovery takes the fast load path.
        """
        store = engine.store
        target = engine._dispatch_seq
        self._pending_instances.clear()
        self._pending_items.clear()
        existing_keys: list[str] = []
        cursors: dict[str, int] = {}
        loaded = 0
        for key, raw in store.scan(VIEW_PREFIX):
            existing_keys.append(key)
            name, sep, suffix = key[len(VIEW_PREFIX):].partition("/")
            projection = self._by_name.get(name)
            if projection is None or not sep:
                continue  # a projection this build doesn't know: rebuilt below
            if suffix == CURSOR_SUFFIX:
                cursors[name] = int(raw.get("seq", 0))
            else:
                projection.load_record(suffix, raw)
                loaded += 1
        if not existing_keys and target == 0 and not engine._instances:
            # pristine store: nothing to load, nothing worth stamping
            self.recovered_mode = "load"
            return {"mode": "load", "records": 0, "replayed": 0}
        cursor_values = {cursors.get(p.name) for p in self.projections}
        cursor = cursor_values.pop() if len(cursor_values) == 1 else None
        if cursor is not None and 0 <= cursor <= target:
            for projection in self.projections:
                projection.finish_load()
            self._set_lag_gauges(0)
            if cursor == target:
                self.applied_seq = target
                self.persisted_seq = target
                self.recovered_mode = "load"
                return {"mode": "load", "records": loaded, "replayed": 0}
            tail = [
                record
                for record in engine._dispatch_log
                if record.get("seq", 0) > cursor
            ]
            covered = (
                len(tail) == target - cursor
                and bool(tail)
                and tail[0].get("seq", 0) == cursor + 1
                and all(record.get("touched") is not None for record in tail)
            )
            if covered:
                self.applied_seq = cursor
                writes = self._replay_touched(engine, tail, target)
                self._persist(store, writes, deletes=())
                self.recovered_mode = "tail"
                return {
                    "mode": "tail",
                    "records": loaded,
                    "replayed": len(tail),
                }
        # cursors missing, diverged, ahead of durable state, or the log
        # tail is unusable: rebuild everything from recovered base state
        writes = self.rebuild(
            [
                compact_instance_obj(instance)
                for instance in engine._instances.values()
            ],
            [compact_item_obj(item) for item in engine.worklist.items()],
            target,
        )
        deletes = [key for key in existing_keys if key not in writes]
        self._persist(store, writes, deletes)
        self._set_lag_gauges(0)
        self.recovered_mode = "rebuild"
        return {"mode": "rebuild", "records": len(writes), "replayed": 0}

    def _replay_touched(
        self,
        engine: "ProcessEngine",
        tail: list[dict[str, Any]],
        target: int,
    ) -> dict[str, Any]:
        """Re-apply the entities the log tail touched, from base state.

        Applies are idempotent transitions against the loaded image, so
        entities that were already current converge to themselves.
        """
        instance_ids = sorted(
            {
                instance_id
                for record in tail
                for instance_id in record["touched"].get("instances", ())
            }
        )
        item_ids = sorted(
            {
                item_id
                for record in tail
                for item_id in record["touched"].get("items", ())
            }
        )
        instances = [
            compact_instance_obj(instance)
            for instance in (
                engine._instances.get(instance_id) for instance_id in instance_ids
            )
            if instance is not None
        ]
        worklist_items = engine.worklist._items
        items = [
            compact_item_obj(item)
            for item in (worklist_items.get(item_id) for item_id in item_ids)
            if item is not None
        ]
        return self._apply(instances, items, target)

    def _persist(
        self, store: Any, writes: dict[str, Any], deletes: Iterable[str]
    ) -> None:
        with store.transaction():
            for key in deletes:
                store.delete(key)
            for key in sorted(writes):
                store.put(key, writes[key])
        store.sync()
        self.confirm()

    def _set_lag_gauges(self, value: int) -> None:
        # refreshed at drain/confirm boundaries and on status() reads —
        # never on the per-commit note path, which stays O(dirty ids)
        for gauge in self._g_lag.values():
            gauge.set(value)

    # -- queries ----------------------------------------------------------------
    #
    # every read materializes noted-but-unapplied entities first, so the
    # image served is exact through the last committed flush even though
    # maintenance is write-behind

    def instance_ids(self, state: str | None = None) -> list[str]:
        """Instance ids in creation-rank order, optionally by state."""
        self._materialize()
        if state is None:
            return self.by_state.all_ids()
        return self.by_state.ids_in_state(state)

    def ids_for_business_key(self, business_key: str) -> list[str]:
        self._materialize()
        return self.by_key.ids_for_key(business_key)

    def work_item_ids(self, state: str | None = None) -> list[str]:
        self._materialize()
        return self.worklist.item_ids(state)

    def open_work_items(self) -> int:
        self._materialize()
        return self.worklist.open_total

    def open_by_role(self) -> dict[str, int]:
        self._materialize()
        return {
            role: count
            for role, count in sorted(self.worklist.role_open.items())
            if count > 0
        }

    def definition_stats(self) -> dict[str, dict[str, Any]]:
        self._materialize()
        return self.def_stats.report()

    def status(self) -> dict[str, Any]:
        """Projection bookkeeping for ``repro views status``."""
        self._materialize()
        self._set_lag_gauges(self._noted_seq - self.persisted_seq)
        return {
            "applied_seq": self.applied_seq,
            "persisted_seq": self.persisted_seq,
            "recovered_mode": self.recovered_mode,
            "projections": {
                projection.name: projection.record_count()
                for projection in self.projections
            },
        }
