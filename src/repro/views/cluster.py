"""``ClusterViews``: cross-shard queries served from per-shard read models.

The scatter-gather the cluster facade shipped with (PR 5) touches every
instance on every shard and sorts the union — O(total) work per query
with a constant factor that grows with shard count (one lock, one scan,
one merge per shard).  This facade answers the same queries from each
shard's :class:`~repro.views.manager.ProjectionManager`: per-state and
per-key buckets are already materialized and rank-ordered, so a query
costs O(matches) per shard plus one O(T log k) k-way merge — flat in
shard count at equal total size (the F15 bench gate).

Freshness gate: a shard's in-memory projections advance at group-commit
time, so they lag the shard's in-memory base state while a flush is
pending (inside ``batch()``, or below a ``commit_interval`` threshold).
Each per-shard read therefore checks ``has_pending_writes()`` under the
shard's dispatch lock and falls back to the engine's always-current
in-memory indexes for that shard only — correctness never depends on
the commit policy, the view path is purely an optimization that is
active whenever the shard is quiescent (the overwhelmingly common case
for autocommit engines).

Ordering contract: identical to the scatter-gather path — creation rank
interleaved across shards with shard index as the tie-break — because
both paths feed rank-ordered per-shard lists through the same
:func:`~repro.views.projections.merge_ranked` k-way merge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.analytics.kpis import CycleTimeAggregate
from repro.views.projections import creation_rank, merge_ranked

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.sharded import ShardedEngine
    from repro.engine.engine import ProcessEngine
    from repro.engine.instance import InstanceState, ProcessInstance
    from repro.worklist.items import WorkItem, WorkItemState


def _instance_rank(instance: "ProcessInstance") -> int:
    return creation_rank(instance.id)


def _matches(instance: "ProcessInstance", filters: dict[str, Any]) -> bool:
    """The residual predicate of ``find_instances`` (index filters done)."""
    state = filters.get("state")
    if state is not None and instance.state is not state:
        return False
    definition_key = filters.get("definition_key")
    if definition_key is not None and instance.definition_key != definition_key:
        return False
    where = filters.get("where")
    if where is not None and any(
        instance.variables.get(name) != value for name, value in where.items()
    ):
        return False
    waiting_at = filters.get("waiting_at")
    if waiting_at is not None and not any(
        token.node_id == waiting_at for token in instance.tokens
    ):
        return False
    return True


class ClusterViews:
    """Pre-merged, view-backed cross-shard queries for ``ShardedEngine``."""

    def __init__(self, cluster: "ShardedEngine") -> None:
        self._cluster = cluster
        # the *pre-merged* ordering: merged per-state instance lists keyed
        # by state value, each stamped with the per-shard dispatch-seq
        # fingerprint it was computed at.  A repeated query over a
        # quiescent cluster (the dashboard steady state) returns a copy of
        # the merged list — O(total) copy, zero per-shard scans, zero
        # re-merges — and any shard commit changes the fingerprint, which
        # lazily invalidates on the next read.
        self._merge_cache: dict[
            str | None, tuple[tuple[int, ...], list["ProcessInstance"]]
        ] = {}

    def _fingerprint(self) -> tuple[int, ...]:
        return tuple(
            shard._dispatch_seq for shard in self._cluster.shards
        )

    # -- per-shard reads (each under that shard's dispatch lock) ---------------

    def _shard_instances(
        self, shard: "ProcessEngine", state: "InstanceState | None"
    ) -> list["ProcessInstance"]:
        manager = shard.views
        if manager is None or shard.has_pending_writes():
            return shard.instances(state)
        ids = manager.instance_ids(None if state is None else state.value)
        instances = shard._instances
        return [instances[i] for i in ids if i in instances]

    def _shard_find(
        self, shard: "ProcessEngine", filters: dict[str, Any]
    ) -> list["ProcessInstance"]:
        manager = shard.views
        business_key = filters.get("business_key")
        if (
            manager is None
            or shard.has_pending_writes()
            or (business_key is not None and business_key.startswith("__"))
        ):
            return shard.find_instances(**filters)
        state = filters.get("state")
        if business_key is not None:
            ids = manager.ids_for_business_key(business_key)
        elif state is not None:
            ids = manager.instance_ids(state.value)
        else:
            ids = manager.instance_ids()
        instances = shard._instances
        return [
            instance
            for instance in (instances.get(i) for i in ids)
            if instance is not None and _matches(instance, filters)
        ]

    def _shard_items(
        self, shard: "ProcessEngine", state: "WorkItemState | None"
    ) -> list["WorkItem"]:
        manager = shard.views
        if manager is None or shard.has_pending_writes():
            return shard.worklist.items(state)
        ids = manager.work_item_ids(None if state is None else state.value)
        items = shard.worklist._items
        return [items[i] for i in ids if i in items]

    # -- cross-shard queries ----------------------------------------------------

    def instances(
        self, state: "InstanceState | None" = None
    ) -> list["ProcessInstance"]:
        """All instances (optionally by state), cluster creation order."""
        key = None if state is None else state.value
        fingerprint = self._fingerprint()
        cached = self._merge_cache.get(key)
        if cached is not None and cached[0] == fingerprint:
            return list(cached[1])
        per_shard = []
        for shard in self._cluster.shards:
            with shard._dispatch_lock:
                per_shard.append(self._shard_instances(shard, state))
        merged = merge_ranked(per_shard, _instance_rank)
        self._merge_cache[key] = (fingerprint, merged)
        return list(merged)

    def find_instances(self, **filters: Any) -> list["ProcessInstance"]:
        """Cross-shard ``find_instances`` over the per-shard read models."""
        # a pure state filter is exactly the pre-merged per-state list
        if all(value is None for name, value in filters.items() if name != "state"):
            return self.instances(filters.get("state"))
        per_shard = []
        for shard in self._cluster.shards:
            with shard._dispatch_lock:
                per_shard.append(self._shard_find(shard, filters))
        return merge_ranked(per_shard, _instance_rank)

    def work_items(
        self, state: "WorkItemState | None" = None
    ) -> list["WorkItem"]:
        """All work items across shards, per-shard creation order."""
        collected: list["WorkItem"] = []
        for shard in self._cluster.shards:
            with shard._dispatch_lock:
                collected.extend(self._shard_items(shard, state))
        return collected

    def open_work_items(self) -> int:
        """Cluster-wide open (non-terminal) work items, O(shards)."""
        total = 0
        for shard in self._cluster.shards:
            with shard._dispatch_lock:
                manager = shard.views
                if manager is not None and not shard.has_pending_writes():
                    total += manager.open_work_items()
                else:
                    total += shard.worklist.open_count
        return total

    def definition_stats(self) -> dict[str, dict[str, Any]]:
        """Per-definition analytics merged across shards.

        Counters and per-state censuses sum; cycle-time aggregates merge
        via :class:`CycleTimeAggregate`.  Reflects each shard's last
        commit (shards mid-batch contribute their committed image).
        """
        merged: dict[str, dict[str, Any]] = {}
        for shard in self._cluster.shards:
            if shard.views is None:
                continue
            with shard._dispatch_lock:
                report = shard.views.definition_stats()
            for definition, record in report.items():
                slot = merged.get(definition)
                if slot is None:
                    merged[definition] = {
                        "total": record["total"],
                        "states": dict(record["states"]),
                        "cycle": dict(record["cycle"]),
                    }
                    continue
                slot["total"] += record["total"]
                for state, count in record["states"].items():
                    slot["states"][state] = slot["states"].get(state, 0) + count
                slot["cycle"] = (
                    CycleTimeAggregate.from_dict(slot["cycle"])
                    .merge(CycleTimeAggregate.from_dict(record["cycle"]))
                    .to_dict()
                )
        return {definition: merged[definition] for definition in sorted(merged)}

    def status(self) -> dict[str, Any]:
        """Per-shard projection cursors and lag (``repro cluster status``)."""
        per_shard = []
        for index, shard in enumerate(self._cluster.shards):
            manager = shard.views
            if manager is None:
                per_shard.append({"shard": index, "enabled": False})
                continue
            with shard._dispatch_lock:
                per_shard.append(
                    {
                        "shard": index,
                        "enabled": True,
                        "applied_seq": manager.applied_seq,
                        "dispatch_seq": shard._dispatch_seq,
                        "lag": shard._dispatch_seq - manager.applied_seq,
                        "recovered_mode": manager.recovered_mode,
                    }
                )
        return {"per_shard": per_shard}
