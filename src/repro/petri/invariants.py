"""Structural (linear-algebraic) analysis: incidence matrix and invariants.

P-invariants (place invariants) are integer row vectors ``y`` with
``y · C = 0`` where ``C`` is the |P|×|T| incidence matrix: the weighted token
count ``y · M`` is then constant over all reachable markings.  A net covered
by positive P-invariants is structurally bounded — this is the polynomial
counterpart to the exponential reachability check (experiment F5).

T-invariants are integer column vectors ``x`` with ``C · x = 0``: firing each
transition ``x[t]`` times reproduces the marking, witnessing cyclic behaviour.

The null-space basis is computed with exact ``fractions.Fraction`` Gaussian
elimination and scaled to the smallest integer vectors, so results are exact
(numpy floats would mis-classify near-zero pivots on larger nets).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd

from repro.petri.net import PetriNet


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """The incidence matrix ``C[p][t] = post(t)[p] - pre(t)[p]``.

    Returns ``(place_ids, transition_ids, rows)`` with rows indexed by place.
    """
    place_ids = sorted(net.places)
    transition_ids = sorted(net.transitions)
    place_index = {p: i for i, p in enumerate(place_ids)}
    rows = [[0] * len(transition_ids) for _ in place_ids]
    for j, transition_id in enumerate(transition_ids):
        for place, weight in net.preset(transition_id).items():
            rows[place_index[place]][j] -= weight
        for place, weight in net.postset(transition_id).items():
            rows[place_index[place]][j] += weight
    return place_ids, transition_ids, rows


def _nullspace_basis(matrix: list[list[int]]) -> list[list[Fraction]]:
    """Exact basis of the right null space of an integer matrix."""
    if not matrix:
        return []
    rows = [[Fraction(v) for v in row] for row in matrix]
    n_cols = len(rows[0])
    pivots: list[int] = []
    rank = 0
    for col in range(n_cols):
        pivot_row = None
        for r in range(rank, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][col]
        rows[rank] = [v / pivot for v in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [a - factor * b for a, b in zip(rows[r], rows[rank])]
        pivots.append(col)
        rank += 1
        if rank == len(rows):
            break
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis: list[list[Fraction]] = []
    for free in free_cols:
        vector = [Fraction(0)] * n_cols
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivots):
            vector[pivot_col] = -rows[r][free]
        basis.append(vector)
    return basis


def _to_integer_vector(vector: list[Fraction]) -> list[int]:
    """Scale a rational vector to the smallest integer multiple."""
    lcm = 1
    for value in vector:
        if value.denominator != 1:
            lcm = lcm * value.denominator // gcd(lcm, value.denominator)
    ints = [int(value * lcm) for value in vector]
    common = 0
    for value in ints:
        common = gcd(common, abs(value))
    if common > 1:
        ints = [value // common for value in ints]
    # canonical sign: first non-zero entry positive
    for value in ints:
        if value:
            if value < 0:
                ints = [-v for v in ints]
            break
    return ints


def p_invariants(net: PetriNet) -> list[dict[str, int]]:
    """A basis of place invariants as ``{place: weight}`` dicts.

    Solves ``Cᵀ y = 0`` (equivalently ``y · C = 0``).
    """
    place_ids, _, rows = incidence_matrix(net)
    transposed = [list(col) for col in zip(*rows)] if rows and rows[0] else []
    if not transposed:
        # no transitions: every unit vector is an invariant
        return [{p: 1} for p in place_ids]
    basis = _nullspace_basis(transposed)
    result = []
    for vector in basis:
        ints = _to_integer_vector(vector)
        result.append({p: w for p, w in zip(place_ids, ints) if w})
    return result


def t_invariants(net: PetriNet) -> list[dict[str, int]]:
    """A basis of transition invariants as ``{transition: count}`` dicts.

    Solves ``C x = 0``.
    """
    _, transition_ids, rows = incidence_matrix(net)
    if not rows:
        return [{t: 1} for t in transition_ids]
    basis = _nullspace_basis(rows)
    result = []
    for vector in basis:
        ints = _to_integer_vector(vector)
        result.append({t: c for t, c in zip(transition_ids, ints) if c})
    return result


def p_semiflows(net: PetriNet, max_rows: int = 10_000) -> list[dict[str, int]]:
    """Non-negative place invariants (P-semiflows) via Farkas' algorithm.

    Starts from ``[C | I]`` with one row per place and eliminates each
    transition column by combining rows of opposite sign; surviving rows'
    identity parts are semiflows (``y ≥ 0`` with ``y·C = 0``).  The result
    is reduced to minimal-support semiflows.  ``max_rows`` bounds the
    intermediate table (the algorithm is worst-case exponential).
    """
    place_ids, transition_ids, rows = incidence_matrix(net)
    n_places = len(place_ids)
    table: list[tuple[list[int], list[int]]] = []
    for index, row in enumerate(rows):
        identity = [0] * n_places
        identity[index] = 1
        table.append((list(row), identity))

    for j in range(len(transition_ids)):
        zero = [entry for entry in table if entry[0][j] == 0]
        positive = [entry for entry in table if entry[0][j] > 0]
        negative = [entry for entry in table if entry[0][j] < 0]
        combined: list[tuple[list[int], list[int]]] = []
        seen: set[tuple[int, ...]] = set()
        for c_pos, i_pos in positive:
            for c_neg, i_neg in negative:
                a, b = -c_neg[j], c_pos[j]
                new_c = [a * x + b * y for x, y in zip(c_pos, c_neg)]
                new_i = [a * x + b * y for x, y in zip(i_pos, i_neg)]
                common = 0
                for value in new_c + new_i:
                    common = gcd(common, abs(value))
                if common > 1:
                    new_c = [v // common for v in new_c]
                    new_i = [v // common for v in new_i]
                key = tuple(new_i)
                if key not in seen:
                    seen.add(key)
                    combined.append((new_c, new_i))
        table = zero + combined
        if len(table) > max_rows:
            raise AnalysisBudget(len(table))

    semiflows = []
    for _, identity in table:
        if any(identity):
            semiflows.append(
                {p: w for p, w in zip(place_ids, identity) if w}
            )
    # keep only minimal-support semiflows (standard normalization)
    minimal: list[dict[str, int]] = []
    for flow in sorted(semiflows, key=lambda f: len(f)):
        support = set(flow)
        if not any(set(other) <= support for other in minimal):
            minimal.append(flow)
    return minimal


class AnalysisBudget(Exception):
    """Farkas table exceeded its row budget."""

    def __init__(self, size: int) -> None:
        super().__init__(f"Farkas table grew to {size} rows")
        self.size = size


def place_invariant_cover(net: PetriNet) -> tuple[bool, set[str]]:
    """Check whether every place is covered by a P-semiflow.

    Returns ``(covered, uncovered_places)``.  Coverage by semi-positive
    invariants implies structural boundedness, for any initial marking.
    """
    cover: dict[str, int] = {}
    for semiflow in p_semiflows(net):
        for place, weight in semiflow.items():
            cover[place] = cover.get(place, 0) + weight
    uncovered = {p for p in net.places if cover.get(p, 0) <= 0}
    return not uncovered, uncovered


def invariant_value(invariant: dict[str, int], marking) -> int:
    """Evaluate ``y · M`` for a place invariant and a marking."""
    return sum(weight * marking[place] for place, weight in invariant.items())
