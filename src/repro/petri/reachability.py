"""Reachability analysis: explicit state-space construction and properties.

The reachability graph has one node per reachable marking and one labelled
edge per transition firing.  Construction is breadth-first with an explicit
state budget (experiment F5 shows why: k parallel branches yield 2**k
interleaved markings).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.petri.errors import AnalysisBudgetExceeded
from repro.petri.marking import Marking
from repro.petri.net import PetriNet

DEFAULT_MAX_STATES = 100_000


@dataclass
class ReachabilityGraph:
    """The explicit state space of a net from an initial marking."""

    net: PetriNet
    initial: Marking
    markings: set[Marking] = field(default_factory=set)
    # edges[m] = [(transition_id, m_successor), ...]
    edges: dict[Marking, list[tuple[str, Marking]]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of reachable markings."""
        return len(self.markings)

    @property
    def edge_count(self) -> int:
        """Number of firing edges."""
        return sum(len(v) for v in self.edges.values())

    def successors(self, marking: Marking) -> list[tuple[str, Marking]]:
        """Outgoing (transition, marking) edges of a node."""
        return list(self.edges.get(marking, ()))

    def deadlocks(self) -> list[Marking]:
        """Reachable markings with no enabled transition."""
        return [m for m in self.markings if not self.edges.get(m)]

    def dead_transitions(self) -> set[str]:
        """Transitions that never fire anywhere in the state space."""
        fired = {t for succ in self.edges.values() for t, _ in succ}
        return set(self.net.transitions) - fired

    def can_reach(self, source: Marking, target: Marking) -> bool:
        """True if ``target`` is reachable from ``source`` inside the graph."""
        if source == target:
            return True
        seen = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for _, nxt in self.edges.get(current, ()):
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def markings_reaching(self, target: Marking) -> set[Marking]:
        """All graph nodes from which ``target`` is reachable (incl. itself)."""
        reverse: dict[Marking, list[Marking]] = {}
        for src, succ in self.edges.items():
            for _, dst in succ:
                reverse.setdefault(dst, []).append(src)
        if target not in self.markings:
            return set()
        result = {target}
        queue = deque([target])
        while queue:
            current = queue.popleft()
            for prev in reverse.get(current, ()):
                if prev not in result:
                    result.add(prev)
                    queue.append(prev)
        return result

    def is_live(self) -> bool:
        """Classical liveness: every transition can fire again from every
        reachable marking (L4-liveness).

        Implemented as: for every transition ``t``, every reachable marking
        can reach some marking that enables ``t``.
        """
        for transition_id in self.net.transitions:
            enabling = {
                m
                for m in self.markings
                if self.net.is_enabled(m, transition_id)
            }
            if not enabling:
                return False
            reaching: set[Marking] = set()
            for m in enabling:
                reaching |= self.markings_reaching(m)
            if reaching != self.markings:
                return False
        return True

    def home_markings(self) -> set[Marking]:
        """Markings reachable from every reachable marking."""
        result = set()
        for candidate in self.markings:
            if self.markings_reaching(candidate) == self.markings:
                result.add(candidate)
        return result

    def max_tokens_per_place(self) -> dict[str, int]:
        """The bound observed for each place over the explored space."""
        bounds: dict[str, int] = {p: 0 for p in self.net.places}
        for marking in self.markings:
            for place, count in marking.items():
                if count > bounds.get(place, 0):
                    bounds[place] = count
        return bounds

    def is_safe(self) -> bool:
        """True if no place ever holds more than one token (1-bounded)."""
        return all(bound <= 1 for bound in self.max_tokens_per_place().values())


def build_reachability_graph(
    net: PetriNet,
    initial: Marking,
    max_states: int = DEFAULT_MAX_STATES,
) -> ReachabilityGraph:
    """Breadth-first construction of the reachability graph.

    Raises :class:`AnalysisBudgetExceeded` when more than ``max_states``
    distinct markings are found — unbounded nets always do.  Use
    :func:`repro.petri.coverability.build_coverability_graph` first when
    boundedness is unknown.
    """
    graph = ReachabilityGraph(net=net, initial=initial)
    graph.markings.add(initial)
    queue: deque[Marking] = deque([initial])
    while queue:
        marking = queue.popleft()
        successors: list[tuple[str, Marking]] = []
        for transition_id in net.enabled(marking):
            nxt = net.fire(marking, transition_id)
            successors.append((transition_id, nxt))
            if nxt not in graph.markings:
                if len(graph.markings) >= max_states:
                    raise AnalysisBudgetExceeded(max_states)
                graph.markings.add(nxt)
                queue.append(nxt)
        graph.edges[marking] = successors
    return graph
