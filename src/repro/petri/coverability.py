"""Coverability analysis (Karp–Miller) for boundedness checking.

Where the reachability graph diverges on unbounded nets, the Karp–Miller
construction accelerates strictly growing token counts to the symbolic value
``OMEGA`` and always terminates.  Its primary use here is the boundedness
pre-check of the WF-net soundness procedure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.petri.errors import AnalysisBudgetExceeded
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


class _Omega:
    """The symbolic 'arbitrarily many tokens' value; absorbs arithmetic."""

    _instance: "_Omega | None" = None

    def __new__(cls) -> "_Omega":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ω"

    def __hash__(self) -> int:
        return hash("__omega__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Omega)


OMEGA = _Omega()

# Extended counts: int or OMEGA.
ExtendedCount = int | _Omega


def _ge(a: ExtendedCount, b: ExtendedCount) -> bool:
    if a is OMEGA:
        return True
    if b is OMEGA:
        return False
    return a >= b


def _sub(a: ExtendedCount, b: int) -> ExtendedCount:
    return OMEGA if a is OMEGA else a - b


def _add(a: ExtendedCount, b: int) -> ExtendedCount:
    return OMEGA if a is OMEGA else a + b


class ExtendedMarking:
    """A marking over ``int | OMEGA`` counts; hashable and comparable."""

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: dict[str, ExtendedCount]) -> None:
        self._counts = {p: c for p, c in counts.items() if c is OMEGA or c > 0}
        self._hash: int | None = None

    @classmethod
    def from_marking(cls, marking: Marking) -> "ExtendedMarking":
        return cls(dict(marking.to_dict()))

    def get(self, place: str) -> ExtendedCount:
        return self._counts.get(place, 0)

    def items(self) -> list[tuple[str, ExtendedCount]]:
        return list(self._counts.items())

    def covers(self, weights: dict[str, int]) -> bool:
        return all(_ge(self.get(p), w) for p, w in weights.items())

    def ge(self, other: "ExtendedMarking") -> bool:
        """Pointwise >= over the union of supports."""
        places = set(self._counts) | set(other._counts)
        return all(_ge(self.get(p), other.get(p)) for p in places)

    def strictly_gt(self, other: "ExtendedMarking") -> bool:
        return self.ge(other) and self._counts != other._counts

    def fire(self, pre: dict[str, int], post: dict[str, int]) -> "ExtendedMarking":
        counts = dict(self._counts)
        for place, weight in pre.items():
            counts[place] = _sub(counts.get(place, 0), weight)
        for place, weight in post.items():
            counts[place] = _add(counts.get(place, 0), weight)
        return ExtendedMarking(counts)

    def accelerate(self, ancestor: "ExtendedMarking") -> "ExtendedMarking":
        """Set strictly-grown places to OMEGA relative to ``ancestor``."""
        counts: dict[str, ExtendedCount] = dict(self._counts)
        for place in set(counts) | set(ancestor._counts):
            mine, theirs = self.get(place), ancestor.get(place)
            if mine is not OMEGA and theirs is not OMEGA and mine > theirs:
                counts[place] = OMEGA
        return ExtendedMarking(counts)

    @property
    def has_omega(self) -> bool:
        return any(c is OMEGA for c in self._counts.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExtendedMarking) and self._counts == other._counts

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                frozenset((p, "ω" if c is OMEGA else c) for p, c in self._counts.items())
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{p!r}: {c}" for p, c in sorted(self._counts.items(), key=lambda x: x[0]))
        return f"ExtendedMarking({{{inner}}})"


@dataclass
class CoverabilityGraph:
    """Karp–Miller coverability graph."""

    net: PetriNet
    initial: ExtendedMarking
    nodes: set[ExtendedMarking] = field(default_factory=set)
    edges: dict[ExtendedMarking, list[tuple[str, ExtendedMarking]]] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.nodes)

    def is_bounded(self) -> bool:
        """True iff no reachable extended marking contains OMEGA."""
        return not any(node.has_omega for node in self.nodes)

    def unbounded_places(self) -> set[str]:
        """Places that can accumulate arbitrarily many tokens."""
        result: set[str] = set()
        for node in self.nodes:
            for place, count in node.items():
                if count is OMEGA:
                    result.add(place)
        return result

    def coverable(self, target: dict[str, int]) -> bool:
        """True if some node covers the target sub-marking."""
        return any(node.covers(target) for node in self.nodes)


def build_coverability_graph(
    net: PetriNet,
    initial: Marking,
    max_states: int = 100_000,
) -> CoverabilityGraph:
    """Karp–Miller construction with ancestor-path acceleration."""
    pre = {t: net.preset(t) for t in net.transitions}
    post = {t: net.postset(t) for t in net.transitions}

    root = ExtendedMarking.from_marking(initial)
    graph = CoverabilityGraph(net=net, initial=root)
    graph.nodes.add(root)
    # queue holds (node, ancestor path) — path needed for acceleration
    queue: deque[tuple[ExtendedMarking, tuple[ExtendedMarking, ...]]] = deque(
        [(root, (root,))]
    )
    while queue:
        node, path = queue.popleft()
        successors = graph.edges.setdefault(node, [])
        for transition_id in net.transitions:
            if not node.covers(pre[transition_id]):
                continue
            nxt = node.fire(pre[transition_id], post[transition_id])
            for ancestor in path:
                if nxt.strictly_gt(ancestor):
                    nxt = nxt.accelerate(ancestor)
            successors.append((transition_id, nxt))
            if nxt not in graph.nodes:
                if len(graph.nodes) >= max_states:
                    raise AnalysisBudgetExceeded(max_states)
                graph.nodes.add(nxt)
                queue.append((nxt, path + (nxt,)))
    return graph


def is_bounded(net: PetriNet, initial: Marking, max_states: int = 100_000) -> bool:
    """Convenience wrapper: Karp–Miller boundedness verdict."""
    return build_coverability_graph(net, initial, max_states).is_bounded()
