"""Workflow nets (WF-nets) and the classical soundness check.

A WF-net is a Petri net with one source place ``i`` (empty preset), one sink
place ``o`` (empty postset), and every node on a path from ``i`` to ``o``.
Soundness (van der Aalst) requires, from the initial marking [i]:

* **option to complete** — [o] is reachable from every reachable marking;
* **proper completion** — any reachable marking covering ``o`` equals [o];
* **no dead transitions** — every transition fires in some run.

The checker first runs Karp–Miller to rule out unboundedness (an unbounded
WF-net is never sound), then decides the three properties on the explicit
reachability graph and reports diagnostics with counterexample markings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.petri.coverability import build_coverability_graph
from repro.petri.errors import AnalysisBudgetExceeded, NotAWorkflowNetError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph


@dataclass
class WorkflowNet:
    """A Petri net with designated source and sink places."""

    net: PetriNet
    source: str
    sink: str

    @classmethod
    def detect(cls, net: PetriNet) -> "WorkflowNet":
        """Find the unique source/sink places and verify connectedness."""
        sources = [p for p in net.places if not net.place_inputs(p)]
        sinks = [p for p in net.places if not net.place_outputs(p)]
        if len(sources) != 1:
            raise NotAWorkflowNetError(
                f"expected exactly one source place, found {sorted(sources)}"
            )
        if len(sinks) != 1:
            raise NotAWorkflowNetError(
                f"expected exactly one sink place, found {sorted(sinks)}"
            )
        wf_net = cls(net=net, source=sources[0], sink=sinks[0])
        stranded = wf_net.nodes_off_path()
        if stranded:
            raise NotAWorkflowNetError(
                f"nodes not on a path from source to sink: {sorted(stranded)}"
            )
        return wf_net

    def initial_marking(self) -> Marking:
        """The canonical initial marking [i]."""
        return Marking.single(self.source)

    def final_marking(self) -> Marking:
        """The canonical final marking [o]."""
        return Marking.single(self.sink)

    def _adjacency(self) -> dict[str, set[str]]:
        forward: dict[str, set[str]] = {
            **{p: set() for p in self.net.places},
            **{t: set() for t in self.net.transitions},
        }
        for arc in self.net.arcs:
            forward[arc.source].add(arc.target)
        return forward

    def nodes_off_path(self) -> set[str]:
        """Nodes not on any directed path from source to sink."""
        forward = self._adjacency()
        reverse: dict[str, set[str]] = {n: set() for n in forward}
        for src, targets in forward.items():
            for tgt in targets:
                reverse[tgt].add(src)

        def closure(start: str, adj: dict[str, set[str]]) -> set[str]:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adj[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        from_source = closure(self.source, forward)
        to_sink = closure(self.sink, reverse)
        all_nodes = set(forward)
        return all_nodes - (from_source & to_sink)

    def short_circuit(self) -> PetriNet:
        """The short-circuited net: add ``t* : o -> i``.

        The classical theorem: a WF-net is sound iff its short-circuited net
        is live and bounded.  Exposed for tests and the invariant-based
        boundedness shortcut.
        """
        closed = self.net.copy(name=f"{self.net.name}*")
        star = "__short_circuit__"
        closed.add_transition(star, label="t*", silent=True)
        closed.add_arc(self.sink, star)
        closed.add_arc(star, self.source)
        return closed


@dataclass
class SoundnessReport:
    """Outcome and diagnostics of a soundness check."""

    is_workflow_net: bool
    sound: bool
    bounded: bool | None = None
    option_to_complete: bool | None = None
    proper_completion: bool | None = None
    dead_transitions: set[str] = field(default_factory=set)
    structural_errors: list[str] = field(default_factory=list)
    counterexample: Marking | None = None
    state_count: int = 0

    @property
    def problems(self) -> list[str]:
        """Human-readable list of everything that failed."""
        issues: list[str] = list(self.structural_errors)
        if self.bounded is False:
            issues.append("net is unbounded")
        if self.option_to_complete is False:
            issues.append(
                f"option to complete violated (stuck at {self.counterexample})"
            )
        if self.proper_completion is False:
            issues.append(
                f"proper completion violated (tokens left behind in {self.counterexample})"
            )
        if self.dead_transitions:
            issues.append(f"dead transitions: {sorted(self.dead_transitions)}")
        return issues


def check_soundness(
    net: PetriNet,
    max_states: int = 100_000,
) -> SoundnessReport:
    """Decide classical soundness of a WF-net with diagnostics.

    Never raises for analysable nets: structural violations and budget
    exhaustion are reported in the returned :class:`SoundnessReport`.
    """
    try:
        wf_net = WorkflowNet.detect(net)
    except NotAWorkflowNetError as exc:
        return SoundnessReport(
            is_workflow_net=False, sound=False, structural_errors=[str(exc)]
        )

    initial = wf_net.initial_marking()
    final = wf_net.final_marking()

    # Step 1: boundedness via Karp-Miller (reachability would diverge).
    try:
        coverability = build_coverability_graph(net, initial, max_states=max_states)
    except AnalysisBudgetExceeded as exc:
        return SoundnessReport(
            is_workflow_net=True,
            sound=False,
            structural_errors=[f"analysis budget exceeded: {exc}"],
        )
    if not coverability.is_bounded():
        return SoundnessReport(
            is_workflow_net=True,
            sound=False,
            bounded=False,
            state_count=coverability.size,
        )

    # Step 2: exact properties on the explicit reachability graph.
    try:
        graph = build_reachability_graph(net, initial, max_states=max_states)
    except AnalysisBudgetExceeded as exc:
        return SoundnessReport(
            is_workflow_net=True,
            sound=False,
            bounded=True,
            structural_errors=[f"analysis budget exceeded: {exc}"],
        )

    report = SoundnessReport(
        is_workflow_net=True, sound=True, bounded=True, state_count=graph.size
    )

    reaching_final = graph.markings_reaching(final) if final in graph.markings else set()
    stuck = graph.markings - reaching_final
    report.option_to_complete = not stuck
    if stuck:
        report.counterexample = next(iter(stuck))

    improper = [
        m for m in graph.markings if m[wf_net.sink] >= 1 and m != final
    ]
    report.proper_completion = not improper
    if improper and report.counterexample is None:
        report.counterexample = improper[0]

    report.dead_transitions = graph.dead_transitions()

    report.sound = bool(
        report.option_to_complete
        and report.proper_completion
        and not report.dead_transitions
    )
    return report
