"""Exceptions raised by the Petri-net kernel."""


class PetriError(Exception):
    """Base class for all Petri-net kernel errors."""


class NetStructureError(PetriError):
    """The net definition is malformed (duplicate ids, dangling arcs, ...)."""


class TransitionNotEnabledError(PetriError):
    """An attempt was made to fire a transition that is not enabled."""

    def __init__(self, transition_id: str, marking) -> None:
        super().__init__(
            f"transition {transition_id!r} is not enabled in marking {marking}"
        )
        self.transition_id = transition_id
        self.marking = marking


class NotAWorkflowNetError(PetriError):
    """The net violates the structural WF-net requirements."""


class AnalysisBudgetExceeded(PetriError):
    """State-space exploration exceeded its configured budget.

    Reachability graphs can be exponential in net size (see experiment F5);
    analyses take an explicit ``max_states`` budget and raise this error
    instead of exhausting memory.
    """

    def __init__(self, max_states: int) -> None:
        super().__init__(
            f"state-space exploration exceeded the budget of {max_states} states"
        )
        self.max_states = max_states
