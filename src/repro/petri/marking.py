"""Immutable markings (multisets of tokens over places).

A marking assigns a non-negative token count to every place of a net.  Only
places with at least one token are stored, so markings over different nets
compare structurally.  Markings are hashable and therefore usable as nodes of
reachability/coverability graphs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping


class Marking(Mapping[str, int]):
    """An immutable multiset ``place id -> token count``.

    Zero counts are normalized away, so ``Marking({"p": 0}) == Marking()``.

    >>> m = Marking({"i": 1})
    >>> m["i"], m["other"]
    (1, 0)
    >>> m.plus({"o": 2}).minus({"i": 1})
    Marking({'o': 2})
    """

    __slots__ = ("_counts", "_hash")

    def __init__(self, counts: Mapping[str, int] | Iterable[tuple[str, int]] = ()) -> None:
        items = counts.items() if isinstance(counts, Mapping) else counts
        cleaned: dict[str, int] = {}
        for place, count in items:
            if count < 0:
                raise ValueError(f"negative token count {count} for place {place!r}")
            if count:
                cleaned[place] = cleaned.get(place, 0) + count
        self._counts: dict[str, int] = cleaned
        self._hash: int | None = None

    @classmethod
    def single(cls, place: str, count: int = 1) -> "Marking":
        """Build a marking with tokens on a single place."""
        return cls({place: count})

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, place: str) -> int:
        return self._counts.get(place, 0)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, place: object) -> bool:
        return place in self._counts

    # -- algebra ------------------------------------------------------------

    def plus(self, other: Mapping[str, int]) -> "Marking":
        """Return this marking with ``other`` added (multiset union)."""
        merged = dict(self._counts)
        for place, count in other.items():
            merged[place] = merged.get(place, 0) + count
        return Marking(merged)

    def minus(self, other: Mapping[str, int]) -> "Marking":
        """Return this marking with ``other`` subtracted.

        Raises ``ValueError`` if the result would be negative anywhere.
        """
        merged = dict(self._counts)
        for place, count in other.items():
            remaining = merged.get(place, 0) - count
            if remaining < 0:
                raise ValueError(
                    f"cannot remove {count} token(s) from place {place!r} "
                    f"holding {merged.get(place, 0)}"
                )
            if remaining:
                merged[place] = remaining
            else:
                merged.pop(place, None)
        return Marking(merged)

    def covers(self, other: Mapping[str, int]) -> bool:
        """True if this marking has at least as many tokens everywhere."""
        return all(self._counts.get(place, 0) >= count for place, count in other.items())

    def strictly_covers(self, other: "Marking") -> bool:
        """True if this marking covers ``other`` and differs from it."""
        return self.covers(other) and self._counts != other._counts

    @property
    def total(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._counts.values())

    @property
    def support(self) -> frozenset[str]:
        """The set of places holding at least one token."""
        return frozenset(self._counts)

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._counts == other._counts
        if isinstance(other, Mapping):
            return self._counts == {p: c for p, c in other.items() if c}
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{p!r}: {c}" for p, c in sorted(self._counts.items()))
        return f"Marking({{{inner}}})"

    def to_dict(self) -> dict[str, int]:
        """A plain-dict copy, for serialization."""
        return dict(self._counts)
