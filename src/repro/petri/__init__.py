"""Petri-net formal kernel.

Place/transition nets with weighted arcs, immutable markings, the token-game
firing rule, reachability and coverability analysis, place/transition
invariants, and workflow nets (WF-nets) with the classical soundness check.

This kernel is the semantic foundation of the BPMS: every process model in
:mod:`repro.model` maps to a WF-net (see
:func:`repro.model.mapping.to_workflow_net`) so that the very models the
engine executes can be verified before deployment.
"""

from repro.petri.coverability import CoverabilityGraph, OMEGA, build_coverability_graph
from repro.petri.errors import (
    AnalysisBudgetExceeded,
    NetStructureError,
    NotAWorkflowNetError,
    PetriError,
    TransitionNotEnabledError,
)
from repro.petri.invariants import (
    incidence_matrix,
    p_invariants,
    p_semiflows,
    place_invariant_cover,
    t_invariants,
)
from repro.petri.marking import Marking
from repro.petri.net import Arc, PetriNet, Place, Transition
from repro.petri.reachability import ReachabilityGraph, build_reachability_graph
from repro.petri.workflow_net import SoundnessReport, WorkflowNet, check_soundness

__all__ = [
    "Arc",
    "AnalysisBudgetExceeded",
    "CoverabilityGraph",
    "Marking",
    "NetStructureError",
    "NotAWorkflowNetError",
    "OMEGA",
    "PetriError",
    "PetriNet",
    "Place",
    "ReachabilityGraph",
    "SoundnessReport",
    "Transition",
    "TransitionNotEnabledError",
    "WorkflowNet",
    "build_coverability_graph",
    "build_reachability_graph",
    "check_soundness",
    "incidence_matrix",
    "p_invariants",
    "p_semiflows",
    "place_invariant_cover",
    "t_invariants",
]
