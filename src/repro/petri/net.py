"""Place/transition nets with weighted arcs and the token-game firing rule."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.petri.errors import NetStructureError, TransitionNotEnabledError
from repro.petri.marking import Marking


@dataclass(frozen=True)
class Place:
    """A place (condition / state holder) of a net."""

    id: str
    label: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise NetStructureError("place id must be non-empty")


@dataclass(frozen=True)
class Transition:
    """A transition (event / activity) of a net."""

    id: str
    label: str = ""
    # Silent transitions (tau) are routing-only; mining/conformance skip them.
    silent: bool = False

    def __post_init__(self) -> None:
        if not self.id:
            raise NetStructureError("transition id must be non-empty")


@dataclass(frozen=True)
class Arc:
    """A weighted arc between a place and a transition (either direction)."""

    source: str
    target: str
    weight: int = 1

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise NetStructureError(
                f"arc {self.source!r}->{self.target!r} has non-positive weight"
            )


@dataclass
class PetriNet:
    """A place/transition net.

    Structure is mutable while the net is being built; analyses treat it as
    immutable.  Place and transition ids share one namespace so that arcs can
    name either end unambiguously.

    >>> net = PetriNet("demo")
    >>> net.add_place("p1"); net.add_transition("t1"); net.add_place("p2")
    Place(id='p1', label='')
    Transition(id='t1', label='', silent=False)
    Place(id='p2', label='')
    >>> net.add_arc("p1", "t1"); net.add_arc("t1", "p2")
    Arc(source='p1', target='t1', weight=1)
    Arc(source='t1', target='p2', weight=1)
    >>> m = Marking({"p1": 1})
    >>> net.enabled(m)
    ['t1']
    >>> net.fire(m, "t1")
    Marking({'p2': 1})
    """

    name: str = "net"
    places: dict[str, Place] = field(default_factory=dict)
    transitions: dict[str, Transition] = field(default_factory=dict)
    arcs: list[Arc] = field(default_factory=list)

    def __post_init__(self) -> None:
        # preset/postset caches: transition id -> {place id: weight}
        self._pre: dict[str, dict[str, int]] = {}
        self._post: dict[str, dict[str, int]] = {}
        self._place_out: dict[str, set[str]] = {}
        self._place_in: dict[str, set[str]] = {}
        for arc in list(self.arcs):
            self._index_arc(arc)

    # -- construction --------------------------------------------------------

    def add_place(self, place_id: str, label: str = "") -> Place:
        """Add a place; raises on id collision with any node."""
        self._check_fresh(place_id)
        place = Place(place_id, label)
        self.places[place_id] = place
        self._place_out.setdefault(place_id, set())
        self._place_in.setdefault(place_id, set())
        return place

    def add_transition(self, transition_id: str, label: str = "", silent: bool = False) -> Transition:
        """Add a transition; raises on id collision with any node."""
        self._check_fresh(transition_id)
        transition = Transition(transition_id, label, silent)
        self.transitions[transition_id] = transition
        self._pre.setdefault(transition_id, {})
        self._post.setdefault(transition_id, {})
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> Arc:
        """Add an arc between a place and a transition.

        The two endpoints must be one place and one transition, both already
        present in the net.  Parallel arcs accumulate into the weight.
        """
        arc = Arc(source, target, weight)
        src_is_place = source in self.places
        src_is_trans = source in self.transitions
        tgt_is_place = target in self.places
        tgt_is_trans = target in self.transitions
        if not (src_is_place or src_is_trans):
            raise NetStructureError(f"arc source {source!r} is not a node of the net")
        if not (tgt_is_place or tgt_is_trans):
            raise NetStructureError(f"arc target {target!r} is not a node of the net")
        if src_is_place == tgt_is_place:
            raise NetStructureError(
                f"arc {source!r}->{target!r} must connect a place and a transition"
            )
        self.arcs.append(arc)
        self._index_arc(arc)
        return arc

    def _check_fresh(self, node_id: str) -> None:
        if node_id in self.places or node_id in self.transitions:
            raise NetStructureError(f"duplicate node id {node_id!r}")

    def _index_arc(self, arc: Arc) -> None:
        if arc.source in self.places:
            pre = self._pre.setdefault(arc.target, {})
            pre[arc.source] = pre.get(arc.source, 0) + arc.weight
            self._place_out.setdefault(arc.source, set()).add(arc.target)
        else:
            post = self._post.setdefault(arc.source, {})
            post[arc.target] = post.get(arc.target, 0) + arc.weight
            self._place_in.setdefault(arc.target, set()).add(arc.source)

    # -- structure queries ----------------------------------------------------

    def preset(self, transition_id: str) -> dict[str, int]:
        """Input places of a transition with consumed weights."""
        self._require_transition(transition_id)
        return dict(self._pre.get(transition_id, {}))

    def postset(self, transition_id: str) -> dict[str, int]:
        """Output places of a transition with produced weights."""
        self._require_transition(transition_id)
        return dict(self._post.get(transition_id, {}))

    def place_outputs(self, place_id: str) -> frozenset[str]:
        """Transitions consuming from a place."""
        self._require_place(place_id)
        return frozenset(self._place_out.get(place_id, ()))

    def place_inputs(self, place_id: str) -> frozenset[str]:
        """Transitions producing into a place."""
        self._require_place(place_id)
        return frozenset(self._place_in.get(place_id, ()))

    def _require_transition(self, transition_id: str) -> None:
        if transition_id not in self.transitions:
            raise NetStructureError(f"unknown transition {transition_id!r}")

    def _require_place(self, place_id: str) -> None:
        if place_id not in self.places:
            raise NetStructureError(f"unknown place {place_id!r}")

    # -- token game -----------------------------------------------------------

    def is_enabled(self, marking: Marking, transition_id: str) -> bool:
        """True if the marking covers the transition's preset."""
        self._require_transition(transition_id)
        return marking.covers(self._pre.get(transition_id, {}))

    def enabled(self, marking: Marking) -> list[str]:
        """All transitions enabled in the marking, in insertion order."""
        return [t for t in self.transitions if marking.covers(self._pre.get(t, {}))]

    def fire(self, marking: Marking, transition_id: str) -> Marking:
        """Fire a transition, returning the successor marking."""
        if not self.is_enabled(marking, transition_id):
            raise TransitionNotEnabledError(transition_id, marking)
        return marking.minus(self._pre.get(transition_id, {})).plus(
            self._post.get(transition_id, {})
        )

    def fire_sequence(self, marking: Marking, sequence: list[str]) -> Marking:
        """Fire a sequence of transitions from a marking."""
        current = marking
        for transition_id in sequence:
            current = self.fire(current, transition_id)
        return current

    # -- misc -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness; raises ``NetStructureError``.

        Every arc must reference existing nodes (guaranteed by ``add_arc``),
        and the net must have at least one place and one transition.
        """
        if not self.places:
            raise NetStructureError("net has no places")
        if not self.transitions:
            raise NetStructureError("net has no transitions")

    def copy(self, name: str | None = None) -> "PetriNet":
        """A structural deep copy (nodes are immutable, so shared)."""
        clone = PetriNet(name or self.name)
        clone.places = dict(self.places)
        clone.transitions = dict(self.transitions)
        for arc in self.arcs:
            clone.arcs.append(arc)
            clone._index_arc(arc)
        for place_id in clone.places:
            clone._place_out.setdefault(place_id, set())
            clone._place_in.setdefault(place_id, set())
        for transition_id in clone.transitions:
            clone._pre.setdefault(transition_id, {})
            clone._post.setdefault(transition_id, {})
        return clone

    def __repr__(self) -> str:
        return (
            f"PetriNet(name={self.name!r}, |P|={len(self.places)}, "
            f"|T|={len(self.transitions)}, |F|={len(self.arcs)})"
        )
