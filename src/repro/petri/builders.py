"""Parametric net families used by tests and the evaluation harness.

Each builder returns a structurally valid WF-net (except the deliberately
defective variants used to exercise the soundness diagnostics).
"""

from __future__ import annotations

from repro.petri.net import PetriNet


def sequence_net(n_tasks: int, name: str = "sequence") -> PetriNet:
    """i -> t1 -> p1 -> t2 -> ... -> tn -> o."""
    if n_tasks < 1:
        raise ValueError("need at least one task")
    net = PetriNet(name)
    net.add_place("i")
    previous = "i"
    for k in range(1, n_tasks + 1):
        task = f"t{k}"
        net.add_transition(task, label=f"task {k}")
        net.add_arc(previous, task)
        if k < n_tasks:
            place = f"p{k}"
            net.add_place(place)
            net.add_arc(task, place)
            previous = place
    net.add_place("o")
    net.add_arc(f"t{n_tasks}", "o")
    return net


def parallel_net(n_branches: int, name: str = "parallel") -> PetriNet:
    """AND-split into n branches of one task each, then AND-join.

    The reachability graph has 2**n interleaving markings — the state-space
    explosion workload of experiment F5.
    """
    if n_branches < 1:
        raise ValueError("need at least one branch")
    net = PetriNet(name)
    net.add_place("i")
    net.add_place("o")
    net.add_transition("split", silent=True)
    net.add_transition("join", silent=True)
    net.add_arc("i", "split")
    for k in range(1, n_branches + 1):
        before, after, task = f"b{k}", f"a{k}", f"t{k}"
        net.add_place(before)
        net.add_place(after)
        net.add_transition(task, label=f"branch {k}")
        net.add_arc("split", before)
        net.add_arc(before, task)
        net.add_arc(task, after)
        net.add_arc(after, "join")
    net.add_arc("join", "o")
    return net


def choice_net(n_branches: int, name: str = "choice") -> PetriNet:
    """XOR-split into n alternative tasks, then XOR-join."""
    if n_branches < 1:
        raise ValueError("need at least one branch")
    net = PetriNet(name)
    net.add_place("i")
    net.add_place("o")
    for k in range(1, n_branches + 1):
        task = f"t{k}"
        net.add_transition(task, label=f"option {k}")
        net.add_arc("i", task)
        net.add_arc(task, "o")
    return net


def loop_net(name: str = "loop") -> PetriNet:
    """A rework loop: do -> check -> (redo back to do | done)."""
    net = PetriNet(name)
    for place in ("i", "todo", "ready", "checked", "o"):
        net.add_place(place)
    net.add_transition("start", silent=True)
    net.add_transition("do", label="do work")
    net.add_transition("check", label="check work")
    net.add_transition("redo", label="redo", silent=True)
    net.add_transition("done", label="accept", silent=True)
    net.add_arc("i", "start")
    net.add_arc("start", "todo")
    net.add_arc("todo", "do")
    net.add_arc("do", "ready")
    net.add_arc("ready", "check")
    net.add_arc("check", "checked")
    net.add_arc("checked", "redo")
    net.add_arc("redo", "todo")
    net.add_arc("checked", "done")
    net.add_arc("done", "o")
    return net


def structured_net(n_tasks: int, name: str = "structured") -> PetriNet:
    """A mixed sequential/parallel/choice net with roughly ``n_tasks`` tasks.

    Deterministic layout: blocks of (sequence, parallel pair, choice pair)
    chained until the task budget is used — the T2 soundness workload.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    net = PetriNet(name)
    net.add_place("i")
    previous = "i"
    produced = 0
    block = 0
    while produced < n_tasks:
        block += 1
        remaining = n_tasks - produced
        kind = block % 3
        if kind == 1 or remaining < 2:
            task = f"s{block}"
            net.add_transition(task, label=f"seq {block}")
            net.add_arc(previous, task)
            place = f"ps{block}"
            net.add_place(place)
            net.add_arc(task, place)
            previous = place
            produced += 1
        elif kind == 2:
            split, join = f"and_split{block}", f"and_join{block}"
            net.add_transition(split, silent=True)
            net.add_transition(join, silent=True)
            net.add_arc(previous, split)
            for branch in ("l", "r"):
                before, after, task = (
                    f"pb{block}{branch}",
                    f"pa{block}{branch}",
                    f"par{block}{branch}",
                )
                net.add_place(before)
                net.add_place(after)
                net.add_transition(task, label=f"par {block}{branch}")
                net.add_arc(split, before)
                net.add_arc(before, task)
                net.add_arc(task, after)
                net.add_arc(after, join)
            place = f"pj{block}"
            net.add_place(place)
            net.add_arc(join, place)
            previous = place
            produced += 2
        else:
            entry = previous
            place = f"pc{block}"
            net.add_place(place)
            for branch in ("a", "b"):
                task = f"cho{block}{branch}"
                net.add_transition(task, label=f"choice {block}{branch}")
                net.add_arc(entry, task)
                net.add_arc(task, place)
            previous = place
            produced += 2
    net.add_place("o")
    final = "finish"
    net.add_transition(final, silent=True)
    net.add_arc(previous, final)
    net.add_arc(final, "o")
    return net


def deadlocking_net(name: str = "deadlocking") -> PetriNet:
    """An unsound net: XOR-split feeding an AND-join (classic modelling bug).

    One branch of the choice leaves the join waiting forever — violates the
    option to complete.
    """
    net = PetriNet(name)
    for place in ("i", "pa", "pb", "o"):
        net.add_place(place)
    net.add_transition("choose_a")
    net.add_transition("choose_b")
    net.add_transition("join_ab", silent=True)
    net.add_arc("i", "choose_a")
    net.add_arc("i", "choose_b")
    net.add_arc("choose_a", "pa")
    net.add_arc("choose_b", "pb")
    net.add_arc("pa", "join_ab")
    net.add_arc("pb", "join_ab")
    net.add_arc("join_ab", "o")
    return net


def improper_completion_net(name: str = "improper") -> PetriNet:
    """An unsound net: AND-split feeding an XOR-join leaves a token behind."""
    net = PetriNet(name)
    for place in ("i", "pa", "pb", "o"):
        net.add_place(place)
    net.add_transition("split", silent=True)
    net.add_transition("finish_a")
    net.add_transition("finish_b")
    net.add_arc("i", "split")
    net.add_arc("split", "pa")
    net.add_arc("split", "pb")
    net.add_arc("pa", "finish_a")
    net.add_arc("pb", "finish_b")
    net.add_arc("finish_a", "o")
    net.add_arc("finish_b", "o")
    return net


def dead_transition_net(name: str = "dead_transition") -> PetriNet:
    """A net with a transition that can never fire (unsatisfiable preset).

    ``ghost`` needs two tokens on ``p1`` but the net is safe, so it is
    structurally on a path from source to sink (a valid WF-net) yet dead.
    """
    net = PetriNet(name)
    for place in ("i", "p1", "o"):
        net.add_place(place)
    net.add_transition("work")
    net.add_transition("finish")
    net.add_transition("ghost")
    net.add_arc("i", "work")
    net.add_arc("work", "p1")
    net.add_arc("p1", "finish")
    net.add_arc("finish", "o")
    net.add_arc("p1", "ghost", weight=2)
    net.add_arc("ghost", "o")
    return net


def unbounded_net(name: str = "unbounded") -> PetriNet:
    """A structurally valid WF-net that is unbounded.

    ``pump`` regenerates its own input while emitting into ``buffer``, so
    ``buffer`` can accumulate arbitrarily many tokens.
    """
    net = PetriNet(name)
    for place in ("i", "p1", "buffer", "o"):
        net.add_place(place)
    net.add_transition("start")
    net.add_transition("pump")
    net.add_transition("finish")
    net.add_transition("drain")
    net.add_arc("i", "start")
    net.add_arc("start", "p1")
    net.add_arc("p1", "pump")
    net.add_arc("pump", "p1")
    net.add_arc("pump", "buffer")
    net.add_arc("p1", "finish")
    net.add_arc("finish", "o")
    net.add_arc("buffer", "drain")
    net.add_arc("drain", "o")
    return net
