"""Synthetic log generation from process definitions.

A seeded random walker plays the token game over a definition's flow
graph, ignoring data (XOR/OR branches are chosen randomly), and records
the activity nodes it passes — producing logs whose control-flow behaviour
matches the model exactly.  ``add_noise`` then perturbs traces for the
robustness half of experiment T4.
"""

from __future__ import annotations

import random

from repro.history.log import EventLog, LogEvent, Trace
from repro.model.elements import (
    ACTIVITY_TYPES,
    EndEvent,
    EventBasedGateway,
    ExclusiveGateway,
    InclusiveGateway,
    ParallelGateway,
    StartEvent,
)
from repro.model.process import ProcessDefinition

_MAX_STEPS = 1000


def _walk_once(
    definition: ProcessDefinition, rng: random.Random, case_id: str
) -> Trace:
    starts = definition.start_events()
    if len(starts) != 1:
        raise ValueError("generator needs exactly one start event")
    # token positions; parallelism tracked as a list of node ids
    tokens: list[str] = [starts[0].id]
    events: list[LogEvent] = []
    timestamp = 0.0
    steps = 0
    # AND-join bookkeeping: join node -> arrival count
    arrivals: dict[str, int] = {}

    while tokens and steps < _MAX_STEPS:
        steps += 1
        index = rng.randrange(len(tokens))
        node_id = tokens.pop(index)
        node = definition.node(node_id)
        outgoing = definition.outgoing(node_id)

        if isinstance(node, EndEvent):
            continue  # token consumed
        if isinstance(node, ParallelGateway):
            incoming = definition.incoming(node_id)
            if len(incoming) > 1:
                arrivals[node_id] = arrivals.get(node_id, 0) + 1
                if arrivals[node_id] < len(incoming):
                    continue  # wait for siblings
                arrivals[node_id] = 0
            for flow in outgoing:
                tokens.append(flow.target)
            continue
        if isinstance(node, InclusiveGateway):
            incoming = definition.incoming(node_id)
            if len(incoming) > 1:
                arrivals[node_id] = arrivals.get(node_id, 0) + 1
                # approximate OR-join: proceed when no sibling token remains
                # anywhere (sound structured models synchronize correctly)
                if tokens:
                    continue
                arrivals[node_id] = 0
            if len(outgoing) == 1:
                tokens.append(outgoing[0].target)
            else:
                k = rng.randint(1, len(outgoing))
                for flow in rng.sample(outgoing, k):
                    tokens.append(flow.target)
            continue
        if isinstance(node, (ExclusiveGateway, EventBasedGateway)):
            flow = rng.choice(outgoing)
            tokens.append(flow.target)
            continue
        # activity or intermediate event: record activities, move on
        if isinstance(node, ACTIVITY_TYPES):
            timestamp += rng.uniform(0.5, 2.0)
            events.append(LogEvent(activity=node.id, timestamp=timestamp))
        if isinstance(node, StartEvent) or outgoing:
            if len(outgoing) != 1:
                raise ValueError(
                    f"node {node_id!r} needs exactly one outgoing flow for walking"
                )
            tokens.append(outgoing[0].target)
    return Trace(case_id=case_id, events=events)


def generate_log(
    definition: ProcessDefinition,
    n_traces: int = 100,
    seed: int = 0,
    name: str | None = None,
) -> EventLog:
    """Generate ``n_traces`` random walks through the definition."""
    rng = random.Random(seed)
    log = EventLog(name=name or f"generated-{definition.key}")
    for k in range(n_traces):
        log.add(_walk_once(definition, rng, case_id=f"{definition.key}-{k}"))
    return log


def add_noise(
    log: EventLog,
    noise_rate: float = 0.2,
    seed: int = 0,
) -> EventLog:
    """Perturb a share of traces: drop, duplicate, or swap one event.

    Returns a new log; the input is untouched.  ``noise_rate`` is the
    probability that a given trace is perturbed.
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise ValueError("noise_rate must be in [0, 1]")
    rng = random.Random(seed)
    noisy = EventLog(name=f"{log.name}+noise")
    for trace in log:
        events = list(trace.events)
        if events and rng.random() < noise_rate:
            kind = rng.choice(("drop", "duplicate", "swap"))
            index = rng.randrange(len(events))
            if kind == "drop":
                events.pop(index)
            elif kind == "duplicate":
                events.insert(index, events[index])
            elif kind == "swap" and len(events) >= 2:
                other = (index + 1) % len(events)
                events[index], events[other] = events[other], events[index]
        noisy.add(Trace(case_id=trace.case_id, events=events))
    return noisy
