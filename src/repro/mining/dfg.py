"""Directly-follows graphs: the shared substrate of the discovery miners."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.history.log import EventLog


@dataclass
class DirectlyFollowsGraph:
    """Activity-pair succession counts extracted from a log."""

    activities: set[str] = field(default_factory=set)
    counts: Counter = field(default_factory=Counter)  # (a, b) -> frequency
    start_activities: Counter = field(default_factory=Counter)
    end_activities: Counter = field(default_factory=Counter)
    activity_counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_log(cls, log: EventLog) -> "DirectlyFollowsGraph":
        """Count direct successions over every trace."""
        dfg = cls()
        for trace in log:
            sequence = trace.activities
            if not sequence:
                continue
            dfg.start_activities[sequence[0]] += 1
            dfg.end_activities[sequence[-1]] += 1
            for activity in sequence:
                dfg.activities.add(activity)
                dfg.activity_counts[activity] += 1
            for a, b in zip(sequence, sequence[1:]):
                dfg.counts[(a, b)] += 1
        return dfg

    def follows(self, a: str, b: str) -> int:
        """How often ``b`` directly follows ``a``."""
        return self.counts.get((a, b), 0)

    # -- alpha relations --------------------------------------------------------

    def causal(self, a: str, b: str) -> bool:
        """a → b : a is directly followed by b but never vice versa."""
        return self.follows(a, b) > 0 and self.follows(b, a) == 0

    def parallel(self, a: str, b: str) -> bool:
        """a ∥ b : both orders observed."""
        return self.follows(a, b) > 0 and self.follows(b, a) > 0

    def unrelated(self, a: str, b: str) -> bool:
        """a # b : neither order observed."""
        return self.follows(a, b) == 0 and self.follows(b, a) == 0

    def successors(self, a: str) -> set[str]:
        """Activities observed directly after ``a``."""
        return {b for (x, b), n in self.counts.items() if x == a and n > 0}

    def predecessors(self, b: str) -> set[str]:
        """Activities observed directly before ``b``."""
        return {a for (a, y), n in self.counts.items() if y == b and n > 0}

    def edges(self) -> list[tuple[str, str, int]]:
        """All (a, b, count) successions, most frequent first."""
        return sorted(
            ((a, b, n) for (a, b), n in self.counts.items() if n > 0),
            key=lambda e: (-e[2], e[0], e[1]),
        )
