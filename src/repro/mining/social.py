"""Organizational mining: social networks from event-log resources.

The classic "handover of work" metric: resource A hands over to resource B
whenever B performs the next activity of a case after A.  The resulting
weighted digraph exposes the real collaboration structure (and the
overloaded hubs) behind the org chart.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.history.log import EventLog


@dataclass
class HandoverNetwork:
    """Weighted handover-of-work digraph over resources."""

    resources: set[str] = field(default_factory=set)
    handovers: Counter = field(default_factory=Counter)  # (from, to) -> count
    workload: Counter = field(default_factory=Counter)  # resource -> events

    @classmethod
    def from_log(cls, log: EventLog) -> "HandoverNetwork":
        """Count handovers between consecutive resource-attributed events."""
        network = cls()
        for trace in log:
            previous = None
            for event in trace:
                if event.resource is None:
                    continue
                network.resources.add(event.resource)
                network.workload[event.resource] += 1
                if previous is not None and previous != event.resource:
                    network.handovers[(previous, event.resource)] += 1
                previous = event.resource
        return network

    def handover_count(self, source: str, target: str) -> int:
        return self.handovers.get((source, target), 0)

    def top_handovers(self, top: int = 5) -> list[tuple[str, str, int]]:
        """The busiest handover pairs, heaviest first."""
        ranked = sorted(
            ((a, b, n) for (a, b), n in self.handovers.items()),
            key=lambda e: (-e[2], e[0], e[1]),
        )
        return ranked[:top]

    def central_resources(self, top: int = 3) -> list[tuple[str, int]]:
        """Resources by degree (in + out handover volume) — the hubs."""
        degree: Counter = Counter()
        for (a, b), n in self.handovers.items():
            degree[a] += n
            degree[b] += n
        return [
            (r, degree[r])
            for r in sorted(degree, key=lambda r: (-degree[r], r))[:top]
        ]

    def render(self) -> str:
        """A text summary of the network."""
        lines = [f"resources: {len(self.resources)}"]
        for a, b, n in self.top_handovers():
            lines.append(f"  {a} -> {b}: {n}")
        return "\n".join(lines)


def working_together(log: EventLog) -> Counter:
    """Count, per unordered resource pair, the cases both worked on."""
    together: Counter = Counter()
    for trace in log:
        participants = sorted({e.resource for e in trace if e.resource})
        for i, a in enumerate(participants):
            for b in participants[i + 1 :]:
                together[(a, b)] += 1
    return together
