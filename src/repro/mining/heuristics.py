"""Heuristics miner: frequency-weighted dependency graphs.

Where the alpha algorithm is exact but brittle (noise, incompleteness),
the heuristics miner scores each activity pair with the *dependency
measure*

    dep(a, b) = (|a>b| - |b>a|) / (|a>b| + |b>a| + 1)

and keeps edges above a threshold — noise produces low-frequency, low-score
edges that fall away.  The result is a dependency graph (not a net): the
standard first half of the full heuristics-net construction, sufficient for
the discovery comparisons in T4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.history.log import EventLog
from repro.mining.dfg import DirectlyFollowsGraph


@dataclass
class DependencyGraph:
    """Thresholded dependency relation over activities."""

    activities: set[str] = field(default_factory=set)
    dependencies: dict[tuple[str, str], float] = field(default_factory=dict)
    start_activities: set[str] = field(default_factory=set)
    end_activities: set[str] = field(default_factory=set)

    def edge(self, a: str, b: str) -> float:
        """Dependency score of a retained edge (0.0 when absent)."""
        return self.dependencies.get((a, b), 0.0)

    def successors(self, a: str) -> set[str]:
        return {b for (x, b) in self.dependencies if x == a}

    def predecessors(self, b: str) -> set[str]:
        return {a for (a, y) in self.dependencies if y == b}

    def edges(self) -> list[tuple[str, str, float]]:
        """All retained edges, strongest first."""
        return sorted(
            ((a, b, s) for (a, b), s in self.dependencies.items()),
            key=lambda e: (-e[2], e[0], e[1]),
        )


def dependency_measure(dfg: DirectlyFollowsGraph, a: str, b: str) -> float:
    """The classic Weijters dependency measure in [-1, 1]."""
    if a == b:
        # length-one-loop measure: |a>a| / (|a>a| + 1)
        n = dfg.follows(a, a)
        return n / (n + 1)
    forward = dfg.follows(a, b)
    backward = dfg.follows(b, a)
    return (forward - backward) / (forward + backward + 1)


def heuristics_miner(
    log: EventLog,
    dependency_threshold: float = 0.9,
    min_frequency: int = 1,
) -> DependencyGraph:
    """Mine a dependency graph, dropping edges below the thresholds."""
    dfg = DirectlyFollowsGraph.from_log(log)
    graph = DependencyGraph(
        activities=set(dfg.activities),
        start_activities=set(dfg.start_activities),
        end_activities=set(dfg.end_activities),
    )
    for (a, b), count in dfg.counts.items():
        if count < min_frequency:
            continue
        score = dependency_measure(dfg, a, b)
        if score >= dependency_threshold:
            graph.dependencies[(a, b)] = round(score, 6)
    return graph
