"""Footprint matrices: the alpha relations as a comparable artifact.

The *footprint* of a log is the matrix of basic ordering relations between
every pair of activities — ``#`` (never follow each other), ``→`` / ``←``
(causality), ``∥`` (both orders observed).  Comparing the footprints of
two logs (or of a log and a model's generated language) gives a simple,
explainable conformance measure: the fraction of agreeing cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.history.log import EventLog
from repro.mining.dfg import DirectlyFollowsGraph

NEVER = "#"
CAUSES = "→"
CAUSED_BY = "←"
PARALLEL = "∥"


@dataclass
class FootprintMatrix:
    """Pairwise ordering relations over a fixed activity alphabet."""

    activities: tuple[str, ...] = ()
    relations: dict[tuple[str, str], str] = field(default_factory=dict)

    @classmethod
    def from_log(cls, log: EventLog) -> "FootprintMatrix":
        """Derive the footprint from a log's directly-follows relations."""
        dfg = DirectlyFollowsGraph.from_log(log)
        activities = tuple(sorted(dfg.activities))
        matrix = cls(activities=activities)
        for a in activities:
            for b in activities:
                if dfg.parallel(a, b):
                    relation = PARALLEL
                elif dfg.causal(a, b):
                    relation = CAUSES
                elif dfg.causal(b, a):
                    relation = CAUSED_BY
                else:
                    relation = NEVER
                matrix.relations[(a, b)] = relation
        return matrix

    def relation(self, a: str, b: str) -> str:
        """The relation symbol for a pair (``#`` for unknown activities)."""
        return self.relations.get((a, b), NEVER)

    def render(self) -> str:
        """A fixed-width text table of the matrix."""
        if not self.activities:
            return "(empty footprint)"
        width = max(len(a) for a in self.activities)
        header = " " * (width + 1) + " ".join(
            f"{a:^{width}}" for a in self.activities
        )
        lines = [header]
        for a in self.activities:
            row = " ".join(
                f"{self.relation(a, b):^{width}}" for b in self.activities
            )
            lines.append(f"{a:<{width}} {row}")
        return "\n".join(lines)


@dataclass
class FootprintComparison:
    """Cell-level agreement between two footprints."""

    agreement: float
    differences: list[tuple[str, str, str, str]]  # (a, b, left, right)
    alphabet: tuple[str, ...]

    @property
    def conforms(self) -> bool:
        return not self.differences


def compare_footprints(
    left: FootprintMatrix, right: FootprintMatrix
) -> FootprintComparison:
    """Compare two footprints over the union alphabet.

    ``agreement`` is the share of identical cells — 1.0 means the two logs
    exhibit exactly the same basic ordering behaviour.
    """
    alphabet = tuple(sorted(set(left.activities) | set(right.activities)))
    differences: list[tuple[str, str, str, str]] = []
    total = 0
    for a in alphabet:
        for b in alphabet:
            total += 1
            l_rel = left.relation(a, b)
            r_rel = right.relation(a, b)
            if l_rel != r_rel:
                differences.append((a, b, l_rel, r_rel))
    agreement = 1.0 if total == 0 else 1 - len(differences) / total
    return FootprintComparison(
        agreement=agreement, differences=differences, alphabet=alphabet
    )
