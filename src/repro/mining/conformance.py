"""Conformance checking by token replay.

Replays each trace on a workflow net (transition id == activity name),
force-firing transitions whose input tokens are absent and counting four
quantities — produced, consumed, missing, remaining — to compute the
classical fitness measure:

    fitness = ½ (1 − missing/consumed) + ½ (1 − remaining/produced)

A perfectly fitting log scores 1.0; deviations (skipped, inserted, or
reordered activities) push it below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.history.log import EventLog, Trace
from repro.petri.net import PetriNet


@dataclass
class TraceReplay:
    """Replay bookkeeping for one trace."""

    case_id: str
    produced: int = 0
    consumed: int = 0
    missing: int = 0
    remaining: int = 0
    unknown_activities: int = 0

    @property
    def fits(self) -> bool:
        return self.missing == 0 and self.remaining == 0 and not self.unknown_activities


@dataclass
class ReplayResult:
    """Aggregated replay outcome for a whole log."""

    traces: list[TraceReplay] = field(default_factory=list)

    @property
    def fitness(self) -> float:
        """Log-level fitness in [0, 1]."""
        produced = sum(t.produced for t in self.traces)
        consumed = sum(t.consumed for t in self.traces)
        missing = sum(t.missing for t in self.traces)
        remaining = sum(t.remaining for t in self.traces)
        if consumed == 0 or produced == 0:
            return 1.0 if not self.traces else 0.0
        return 0.5 * (1 - missing / consumed) + 0.5 * (1 - remaining / produced)

    @property
    def fitting_traces(self) -> int:
        return sum(1 for t in self.traces if t.fits)

    @property
    def trace_fitness_ratio(self) -> float:
        """Share of perfectly replayable traces."""
        return self.fitting_traces / len(self.traces) if self.traces else 1.0


def _replay_trace(
    net: PetriNet, trace: Trace, source: str, sink: str
) -> TraceReplay:
    replay = TraceReplay(case_id=trace.case_id)
    tokens: dict[str, int] = {source: 1}
    replay.produced += 1

    for event in trace:
        transition_id = event.activity
        if transition_id not in net.transitions:
            replay.unknown_activities += 1
            replay.missing += 1
            continue
        preset = net.preset(transition_id)
        postset = net.postset(transition_id)
        for place, weight in preset.items():
            available = tokens.get(place, 0)
            if available < weight:
                replay.missing += weight - available
                tokens[place] = weight  # force-create the deficit
        for place, weight in preset.items():
            tokens[place] -= weight
            replay.consumed += weight
        for place, weight in postset.items():
            tokens[place] = tokens.get(place, 0) + weight
            replay.produced += weight

    # consume the completion token from the sink
    if tokens.get(sink, 0) >= 1:
        tokens[sink] -= 1
        replay.consumed += 1
    else:
        replay.missing += 1
        replay.consumed += 1
    replay.remaining = sum(n for n in tokens.values() if n > 0)
    return replay


def token_replay(
    net: PetriNet, log: EventLog, source: str = "i", sink: str = "o"
) -> ReplayResult:
    """Replay a log on a WF-net; returns per-trace and aggregate fitness."""
    if source not in net.places or sink not in net.places:
        raise ValueError(f"net must contain source {source!r} and sink {sink!r}")
    result = ReplayResult()
    for trace in log:
        result.traces.append(_replay_trace(net, trace, source, sink))
    return result
