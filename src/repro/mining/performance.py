"""Log-based performance analysis: sojourn times and bottlenecks."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean, median

from repro.history.log import EventLog


@dataclass
class PerformanceProfile:
    """Timing diagnostics extracted from a timestamped log."""

    case_durations: list[float] = field(default_factory=list)
    # (a, b) -> list of gaps between completing a and completing b
    transition_times: dict[tuple[str, str], list[float]] = field(default_factory=dict)

    @property
    def mean_case_duration(self) -> float:
        return mean(self.case_durations) if self.case_durations else 0.0

    @property
    def median_case_duration(self) -> float:
        return median(self.case_durations) if self.case_durations else 0.0

    @property
    def max_case_duration(self) -> float:
        return max(self.case_durations, default=0.0)

    def mean_transition_time(self, a: str, b: str) -> float:
        """Mean gap between completing ``a`` and completing ``b``."""
        gaps = self.transition_times.get((a, b), [])
        return mean(gaps) if gaps else 0.0

    def bottlenecks(self, top: int = 3) -> list[tuple[str, str, float]]:
        """The handovers with the largest mean gaps (waiting hotspots)."""
        scored = [
            (a, b, mean(gaps))
            for (a, b), gaps in self.transition_times.items()
            if gaps
        ]
        scored.sort(key=lambda e: (-e[2], e[0], e[1]))
        return scored[:top]


def analyze_performance(log: EventLog) -> PerformanceProfile:
    """Compute case durations and inter-activity gaps from timestamps."""
    profile = PerformanceProfile()
    for trace in log:
        if len(trace.events) >= 2:
            profile.case_durations.append(trace.duration)
        elif trace.events:
            profile.case_durations.append(0.0)
        for first, second in zip(trace.events, trace.events[1:]):
            gap = second.timestamp - first.timestamp
            profile.transition_times.setdefault(
                (first.activity, second.activity), []
            ).append(gap)
    return profile
