"""The classical alpha algorithm (van der Aalst): log → workflow net.

Given a complete, noise-free log of a structured workflow net without
short loops or duplicate activities, the alpha algorithm rediscovers the
generating net.  Experiment T4 verifies exactly that property on our
generator models.

Steps (following the original formulation):

1. ``T_L``  — all activities; ``T_I`` — trace starters; ``T_O`` — enders.
2. Relations from the DFG: causality ``a → b``, parallel ``a ∥ b``,
   choice ``a # b``.
3. ``X_L`` — pairs ``(A, B)`` with every ``a ∈ A`` causal to every
   ``b ∈ B``, and both A and B internally pairwise-``#``.
4. ``Y_L`` — the maximal pairs of ``X_L``.
5. One place per pair, plus source and sink.

The candidate pairs are grown by fixpoint merging from the singleton
causal pairs — equivalent to subset enumeration on the nets this supports,
without the exponential sweep.
"""

from __future__ import annotations

from repro.history.log import EventLog
from repro.mining.dfg import DirectlyFollowsGraph
from repro.petri.net import PetriNet


def _all_unrelated(dfg: DirectlyFollowsGraph, items: frozenset[str]) -> bool:
    members = sorted(items)
    for i, a in enumerate(members):
        for b in members[i:]:
            # note: a # a must hold too (no self-loop in the log)
            if not dfg.unrelated(a, b):
                return False
    return True


def _all_causal(
    dfg: DirectlyFollowsGraph, sources: frozenset[str], targets: frozenset[str]
) -> bool:
    return all(dfg.causal(a, b) for a in sources for b in targets)


def alpha_miner(log: EventLog, name: str = "alpha") -> PetriNet:
    """Discover a workflow net from an event log.

    Returns a net with one transition per activity (transition id ==
    activity name), a source place ``i`` and sink place ``o``.
    """
    dfg = DirectlyFollowsGraph.from_log(log)
    activities = sorted(dfg.activities)

    # step 3: fixpoint merge of causal pairs
    pairs: set[tuple[frozenset[str], frozenset[str]]] = set()
    for a in activities:
        for b in activities:
            if dfg.causal(a, b) and dfg.unrelated(a, a) and dfg.unrelated(b, b):
                pairs.add((frozenset([a]), frozenset([b])))
    changed = True
    while changed:
        changed = False
        current = list(pairs)
        for i, (a1, b1) in enumerate(current):
            for a2, b2 in current[i + 1 :]:
                merged = (a1 | a2, b1 | b2)
                if merged in pairs:
                    continue
                sources, targets = merged
                if (
                    _all_unrelated(dfg, sources)
                    and _all_unrelated(dfg, targets)
                    and _all_causal(dfg, sources, targets)
                ):
                    pairs.add(merged)
                    changed = True

    # step 4: keep only maximal pairs
    maximal = [
        (sources, targets)
        for sources, targets in pairs
        if not any(
            (sources, targets) != (s2, t2) and sources <= s2 and targets <= t2
            for s2, t2 in pairs
        )
    ]

    # step 5: build the net
    net = PetriNet(name)
    for activity in activities:
        net.add_transition(activity, label=activity)
    net.add_place("i")
    net.add_place("o")
    for starter in sorted(dfg.start_activities):
        net.add_arc("i", starter)
    for ender in sorted(dfg.end_activities):
        net.add_arc(ender, "o")
    for index, (sources, targets) in enumerate(
        sorted(maximal, key=lambda p: (sorted(p[0]), sorted(p[1])))
    ):
        place = net.add_place(
            f"p_{'+'.join(sorted(sources))}__{'+'.join(sorted(targets))}"
        )
        for a in sorted(sources):
            net.add_arc(a, place.id)
        for b in sorted(targets):
            net.add_arc(place.id, b)
    return net
