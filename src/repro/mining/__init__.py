"""Process mining: discovery, conformance, and performance from event logs.

The diagnosis phase of the BPM lifecycle: engine history (or any
:class:`~repro.history.log.EventLog`) is analysed to

* build the **directly-follows graph** (:mod:`repro.mining.dfg`);
* **discover** a workflow net with the classical alpha algorithm
  (:mod:`repro.mining.alpha`) or a dependency graph with the heuristics
  approach (:mod:`repro.mining.heuristics`);
* check **conformance** of a log against a net by token replay
  (:mod:`repro.mining.conformance`);
* extract **performance** diagnostics (bottlenecks, sojourn times)
  (:mod:`repro.mining.performance`);
* generate synthetic logs from process definitions, with optional noise
  (:mod:`repro.mining.generators`) — the workload of experiment T4.
"""

from repro.mining.alpha import alpha_miner
from repro.mining.conformance import ReplayResult, token_replay
from repro.mining.dfg import DirectlyFollowsGraph
from repro.mining.footprint import (
    FootprintComparison,
    FootprintMatrix,
    compare_footprints,
)
from repro.mining.generators import add_noise, generate_log
from repro.mining.heuristics import DependencyGraph, heuristics_miner
from repro.mining.performance import PerformanceProfile, analyze_performance
from repro.mining.social import HandoverNetwork, working_together

__all__ = [
    "DependencyGraph",
    "DirectlyFollowsGraph",
    "FootprintComparison",
    "FootprintMatrix",
    "HandoverNetwork",
    "PerformanceProfile",
    "ReplayResult",
    "add_noise",
    "alpha_miner",
    "analyze_performance",
    "compare_footprints",
    "generate_log",
    "heuristics_miner",
    "token_replay",
    "working_together",
]
