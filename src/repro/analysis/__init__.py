"""repro.analysis — static process verification & lint.

One entry point, :func:`analyze`, runs four passes over a
:class:`~repro.model.process.ProcessDefinition`:

1. **structural** (STR*) — graph shape, gateway discipline, expression
   syntax; the checks the engine refuses to run without.
2. **data-flow** (DF*) — definite assignment, racy reads, dead writes,
   unconsumed values, derived from the same expression ASTs the engine
   evaluates.
3. **behavioural** (SND*) — deadlock / lack-of-synchronization / dead
   activity anti-patterns, via the WF-net translation and its state space.
4. **reference** (REF*) — do services, roles, decision tables, and called
   processes resolve against an :class:`AnalysisContext` snapshot?

Per-element suppression rides on the model:
``definition.attributes["lint.suppress"]`` maps element ids to rule-id
lists (or ``"*"``); the element key ``"*"`` suppresses process-wide.
Suppressed findings are counted, not shown.  Use
``ProcessBuilder.suppress()`` or ``<repro:lintSuppress/>`` in BPMN XML to
record suppressions next to the model.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.analysis.antipatterns import behavioral_pass
from repro.analysis.cache import AnalysisCache, content_hash
from repro.analysis.cfg import ControlFlowGraph, build_cfg, node_effects
from repro.analysis.choreography import (
    choreography_pass,
    choreography_summary,
    render_choreography,
)
from repro.analysis.dataflow import dataflow_pass
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.interproc import (
    DefinitionInterface,
    DeploymentGraph,
    extract_interface,
    interproc_pass,
)
from repro.analysis.reference import AnalysisContext, reference_pass
from repro.analysis.reporting import (
    Baseline,
    exit_code,
    render_console,
    render_json,
)
from repro.analysis.rules import RULES, RuleSpec, rule
from repro.analysis.structural import structural_pass
from repro.model.process import ProcessDefinition

__all__ = [
    "AnalysisCache",
    "AnalysisContext",
    "AnalysisReport",
    "Baseline",
    "ControlFlowGraph",
    "DefinitionInterface",
    "DeploymentGraph",
    "DeploymentReport",
    "Diagnostic",
    "RULES",
    "RuleSpec",
    "Severity",
    "analyze",
    "analyze_deployment",
    "behavioral_pass",
    "build_cfg",
    "choreography_pass",
    "choreography_summary",
    "content_hash",
    "dataflow_pass",
    "exit_code",
    "extract_interface",
    "interproc_pass",
    "node_effects",
    "reference_pass",
    "render_choreography",
    "render_console",
    "render_deployment_console",
    "render_deployment_json",
    "render_json",
    "rule",
    "structural_pass",
]


def analyze(
    definition: ProcessDefinition,
    *,
    context: AnalysisContext | None = None,
    behavioral: bool = True,
    max_states: int = 50_000,
    severity_overrides: Mapping[str, Severity] | None = None,
) -> AnalysisReport:
    """Run every applicable pass and return a consolidated report.

    The behavioural pass only runs on structurally clean models (the
    Petri translation assumes a well-formed graph) and can be disabled
    with ``behavioral=False`` for speed.  ``severity_overrides`` remaps
    rule severities (e.g. deploy downgrades REF* errors to warnings when
    the engine is not in strict-reference mode).
    """
    diagnostics = structural_pass(definition)
    structurally_ok = not any(
        d.severity is Severity.ERROR for d in diagnostics
    )
    if structurally_ok:
        diagnostics.extend(dataflow_pass(build_cfg(definition)))
        if behavioral:
            diagnostics.extend(behavioral_pass(definition, max_states))
    if context is not None:
        diagnostics.extend(reference_pass(definition, context))

    if severity_overrides:
        diagnostics = [
            replace(d, severity=severity_overrides[d.rule])
            if d.rule in severity_overrides
            else d
            for d in diagnostics
        ]

    diagnostics = [_with_provenance(definition, d) for d in diagnostics]

    kept, suppressed = _apply_suppressions(definition, diagnostics)
    return AnalysisReport(
        definition_key=definition.key,
        diagnostics=kept,
        suppressed=suppressed,
    )


# Deployment-wide analysis builds on analyze(); imported after its
# definition so the module is importable from analyze_deployment's lazy
# internals without a cycle.
from repro.analysis.deployment import (  # noqa: E402
    DeploymentReport,
    analyze_deployment,
    render_deployment_console,
    render_deployment_json,
)


def _with_provenance(
    definition: ProcessDefinition, diagnostic: Diagnostic
) -> Diagnostic:
    source = getattr(definition, "source_path", None)
    if source is None:
        return diagnostic
    lines = getattr(definition, "source_lines", {})
    return replace(
        diagnostic,
        source=source,
        line=lines.get(diagnostic.element_id),
    )


def _apply_suppressions(
    definition: ProcessDefinition, diagnostics: list[Diagnostic]
) -> tuple[list[Diagnostic], int]:
    raw = definition.attributes.get("lint.suppress")
    if not isinstance(raw, Mapping) or not raw:
        return diagnostics, 0

    def suppressed(diagnostic: Diagnostic) -> bool:
        for element_key in (diagnostic.element_id, "*"):
            rules = raw.get(element_key)
            if rules is None:
                continue
            if rules == "*":
                return True
            if isinstance(rules, (list, tuple)) and diagnostic.rule in rules:
                return True
        return False

    kept = [d for d in diagnostics if not suppressed(d)]
    return kept, len(diagnostics) - len(kept)
