"""Incremental analysis cache for deployment-wide linting.

Deployment-wide analysis is O(registry): every deploy re-examines every
definition's message/call wiring.  The cache makes re-analysis cheap by
memoizing at two granularities:

* **local reports** — the per-definition :func:`repro.analysis.analyze`
  result, keyed by the definition's *content hash* (a digest of its
  canonical serialized form) plus the analysis options.  Any edit to the
  definition invalidates only its own entry.
* **interprocess reports** — the :func:`repro.analysis.interproc.interproc_pass`
  result, keyed by the content hash *and* the registry fingerprint over
  every definition's interface.  Editing a script body somewhere leaves
  all interprocess entries valid; changing any message name, call target,
  or declared input invalidates them — exactly the information the rules
  read.

Extracted interfaces are memoized by content hash too, so building a
:class:`~repro.analysis.interproc.DeploymentGraph` over an unchanged
registry never re-walks model graphs.

Entries live in bounded LRU maps; the cache is safe to share across
deploys of one engine but is not thread-safe by itself — the engine calls
it under its dispatch lock.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Any

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.interproc import DefinitionInterface, extract_interface
from repro.model.process import ProcessDefinition
from repro.model.serialization import definition_to_dict


def content_hash(definition: ProcessDefinition) -> str:
    """Digest of the definition's canonical serialized form.

    Attributes (including ``lint.suppress``) are part of the serialized
    form, so suppression edits correctly invalidate cached reports.
    """
    payload = definition_to_dict(definition)
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _LRU:
    """A small bounded insertion-refreshing map."""

    def __init__(self, max_entries: int) -> None:
        self._max = max_entries
        self._entries: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any | None:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._max:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class AnalysisCache:
    """Memoized per-definition and interprocess analysis results.

    ``hits``/``misses`` count lookups across all three maps — the
    deployment pass and bench_f13 read them to prove warm re-analysis
    stays off the expensive paths.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self._local = _LRU(max_entries)
        self._interproc = _LRU(max_entries)
        self._interfaces = _LRU(max_entries)
        self.hits = 0
        self.misses = 0

    # -- content hashing -------------------------------------------------------

    def content_hash(self, definition: ProcessDefinition) -> str:
        """Digest of the definition's canonical form (see module docs).

        Recomputed on every call — definitions are mutable (tests and the
        builder edit node maps in place), so memoizing by object identity
        would serve stale hashes.  Hashing is two orders of magnitude
        cheaper than the analysis it keys.
        """
        return content_hash(definition)

    # -- interfaces ------------------------------------------------------------

    def interface(self, definition: ProcessDefinition) -> DefinitionInterface:
        """Extract (or recall) the definition's message/call interface."""
        key = f"iface:{self.content_hash(definition)}"
        cached = self._interfaces.get(key)
        if isinstance(cached, DefinitionInterface):
            self.hits += 1
            return cached
        self.misses += 1
        interface = extract_interface(definition)
        self._interfaces.put(key, interface)
        return interface

    # -- local (per-definition) reports ---------------------------------------

    def local_key(self, definition: ProcessDefinition, options: str) -> str:
        return f"local:{self.content_hash(definition)}:{options}"

    def get_local(self, key: str) -> AnalysisReport | None:
        report = self._local.get(key)
        if isinstance(report, AnalysisReport):
            self.hits += 1
            return report
        self.misses += 1
        return None

    def put_local(self, key: str, report: AnalysisReport) -> None:
        self._local.put(key, report)

    # -- interprocess reports --------------------------------------------------

    def interproc_key(
        self, definition: ProcessDefinition, registry_fingerprint: str
    ) -> str:
        return (
            f"interproc:{self.content_hash(definition)}:{registry_fingerprint}"
        )

    def get_interproc(self, key: str) -> list[Diagnostic] | None:
        diagnostics = self._interproc.get(key)
        if isinstance(diagnostics, list):
            self.hits += 1
            return list(diagnostics)
        self.misses += 1
        return None

    def put_interproc(self, key: str, diagnostics: list[Diagnostic]) -> None:
        self._interproc.put(key, list(diagnostics))

    # -- stats -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "local_entries": len(self._local),
            "interproc_entries": len(self._interproc),
            "interface_entries": len(self._interfaces),
        }
