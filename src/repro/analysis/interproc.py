"""Interprocess rules (MSG*/CALL*): deployment-wide message & call checking.

Per-model analysis (PR 2) cannot see the defects that live *between*
definitions: a :class:`~repro.model.elements.SendTask` whose message name
nothing ever receives, a :class:`~repro.model.elements.CallActivity`
targeting an undeployed process key, mutual recursion through call
activities.  This module snapshots a whole deployment into a
:class:`DeploymentGraph` — per-definition *interfaces* (message endpoints,
call edges, declared inputs/outputs) plus the derived channel and call-graph
indexes — and checks each definition against it:

* **MSG001** send with no matching receiver anywhere in the deployment;
* **MSG002** receive/catch that nothing ever sends (instance waits forever
  unless an external client publishes the message);
* **MSG003** ambiguous receivers — several definitions receive one name;
* **CALL001** call target not deployed (resolution is version-aware: the
  snapshot carries the *latest* deployed version of every key);
* **CALL002** static recursion cycle through call activities — an error
  when every call site on the cycle must execute (unconditional recursion),
  a warning when some site is guarded by a choice;
* **CALL003** caller variable mappings inconsistent with the callee's
  declared inputs/outputs (derived from the same expression ASTs the
  data-flow pass uses).

Interfaces are deliberately small and hashable: the incremental cache
(:mod:`repro.analysis.cache`) keys interprocess results on the registry
fingerprint over all interfaces, so editing a script body in one definition
does not invalidate another's cached report — changing a message name or a
call target does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.cfg import build_cfg
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import (
    CALL001,
    CALL002,
    CALL003,
    MSG001,
    MSG002,
    MSG003,
)
from repro.model.elements import (
    CallActivity,
    EndEvent,
    IntermediateMessageEvent,
    MultiInstanceActivity,
    ReceiveTask,
    SendTask,
)
from repro.model.process import ProcessDefinition


@dataclass(frozen=True)
class MessageEndpoint:
    """One message send/receive/catch site inside a definition."""

    element_id: str
    message_name: str
    kind: str  # "send" | "receive" | "catch"


@dataclass(frozen=True)
class CallSite:
    """One call-activity (or multi-instance) edge out of a definition."""

    element_id: str
    target_key: str
    multi_instance: bool
    #: every run of the caller reaches this call site (drives CALL002
    #: severity: unconditional recursion is an error, guarded a warning)
    must_execute: bool
    input_keys: tuple[str, ...]
    #: variable names each output-mapping expression reads from the callee,
    #: as ``(target_variable, sorted names)`` pairs
    output_reads: tuple[tuple[str, tuple[str, ...]], ...]


@dataclass(frozen=True)
class DefinitionInterface:
    """The externally observable surface of one definition.

    Everything the interprocess rules need to know about *other*
    definitions lives here; the registry fingerprint hashes exactly this.
    """

    key: str
    version: int
    sends: tuple[MessageEndpoint, ...]
    receives: tuple[MessageEndpoint, ...]
    calls: tuple[CallSite, ...]
    #: variables read but never assigned anywhere (the DF002 set) — what a
    #: caller must supply through input mappings
    required_inputs: frozenset[str]
    #: variables the definition explicitly assigns — what output mappings
    #: may read back
    writes: frozenset[str]
    #: some node merges arbitrary keys into the scope (user-task forms,
    #: message payloads); output-side CALL003 is skipped when true
    havoc: bool

    def fingerprint(self) -> str:
        """Stable content hash of the interface (hex digest)."""
        parts = [self.key, str(self.version)]
        for endpoint in self.sends + self.receives:
            parts.append(
                f"{endpoint.kind}:{endpoint.element_id}:{endpoint.message_name}"
            )
        for call in self.calls:
            parts.append(
                f"call:{call.element_id}:{call.target_key}"
                f":{int(call.multi_instance)}:{int(call.must_execute)}"
                f":{','.join(call.input_keys)}"
                f":{';'.join(t + '<' + ','.join(n) for t, n in call.output_reads)}"
            )
        parts.append("in:" + ",".join(sorted(self.required_inputs)))
        parts.append("out:" + ",".join(sorted(self.writes)))
        parts.append(f"havoc:{int(self.havoc)}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()


def extract_interface(definition: ProcessDefinition) -> DefinitionInterface:
    """Derive a definition's message/call interface from its model."""
    sends: list[MessageEndpoint] = []
    receives: list[MessageEndpoint] = []
    calls: list[CallSite] = []
    cfg = build_cfg(definition)
    writes: set[str] = set()
    reads: set[str] = set()
    havoc = False
    for effects in cfg.effects.values():
        writes.update(effects.writes)
        for use in effects.uses:
            reads.update(use.names)
        havoc = havoc or effects.havoc
    for node in definition.nodes.values():
        if isinstance(node, SendTask):
            sends.append(MessageEndpoint(node.id, node.message_name, "send"))
        elif isinstance(node, ReceiveTask):
            receives.append(
                MessageEndpoint(node.id, node.message_name, "receive")
            )
        elif isinstance(node, IntermediateMessageEvent):
            receives.append(
                MessageEndpoint(node.id, node.message_name, "catch")
            )
        elif isinstance(node, (CallActivity, MultiInstanceActivity)):
            output_reads = tuple(
                (target, tuple(sorted(_expr_names(expression))))
                for target, expression in sorted(node.output_mappings.items())
            )
            calls.append(CallSite(
                element_id=node.id,
                target_key=node.process_key,
                multi_instance=isinstance(node, MultiInstanceActivity),
                must_execute=_must_execute(cfg.successors, definition, node.id),
                input_keys=tuple(sorted(node.input_mappings)),
                output_reads=output_reads,
            ))
    sends.sort(key=lambda e: e.element_id)
    receives.sort(key=lambda e: e.element_id)
    calls.sort(key=lambda c: c.element_id)
    return DefinitionInterface(
        key=definition.key,
        version=definition.version,
        sends=tuple(sends),
        receives=tuple(receives),
        calls=tuple(calls),
        required_inputs=frozenset(reads - writes),
        writes=frozenset(writes),
        havoc=havoc,
    )


def _expr_names(expression: str) -> frozenset[str]:
    from repro.analysis.cfg import _names

    return _names(expression)


def _must_execute(
    successors: Mapping[str, list[str]],
    definition: ProcessDefinition,
    node_id: str,
) -> bool:
    """True when no run can complete without executing ``node_id`` —
    i.e. removing the node disconnects the start from every end event."""
    starts = definition.start_events()
    if len(starts) != 1 or starts[0].id == node_id:
        return len(starts) == 1
    seen = {starts[0].id}
    stack = [starts[0].id]
    while stack:
        current = stack.pop()
        for successor in successors.get(current, ()):  # skip the node itself
            if successor == node_id or successor in seen:
                continue
            seen.add(successor)
            stack.append(successor)
    return not any(
        isinstance(definition.nodes[n], EndEvent) for n in seen
    )


@dataclass
class DeploymentGraph:
    """The interprocess view of one deployment snapshot.

    Holds the latest version of every definition plus derived channel and
    call-graph indexes.  Build one with :meth:`build` over the registry
    snapshot (and the deployment candidate, if any).
    """

    definitions: dict[str, ProcessDefinition] = field(default_factory=dict)
    interfaces: dict[str, DefinitionInterface] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        definitions: Iterable[ProcessDefinition],
        interfaces: Mapping[str, DefinitionInterface] | None = None,
    ) -> "DeploymentGraph":
        """Snapshot a deployment; keeps the highest version per key.

        ``interfaces`` may supply pre-extracted (cached) interfaces keyed
        by definition key; any missing one is extracted here.
        """
        graph = cls()
        for definition in definitions:
            existing = graph.definitions.get(definition.key)
            if existing is not None and existing.version >= definition.version:
                continue
            graph.definitions[definition.key] = definition
        for key, definition in graph.definitions.items():
            supplied = None if interfaces is None else interfaces.get(key)
            if supplied is not None and supplied.version == definition.version:
                graph.interfaces[key] = supplied
            else:
                graph.interfaces[key] = extract_interface(definition)
        return graph

    # -- channel / call indexes -----------------------------------------------

    def senders(self, message_name: str) -> list[tuple[str, MessageEndpoint]]:
        """``(definition key, endpoint)`` pairs sending ``message_name``."""
        return [
            (key, endpoint)
            for key, interface in sorted(self.interfaces.items())
            for endpoint in interface.sends
            if endpoint.message_name == message_name
        ]

    def receivers(self, message_name: str) -> list[tuple[str, MessageEndpoint]]:
        """``(definition key, endpoint)`` pairs receiving/catching it."""
        return [
            (key, endpoint)
            for key, interface in sorted(self.interfaces.items())
            for endpoint in interface.receives
            if endpoint.message_name == message_name
        ]

    def message_names(self) -> set[str]:
        """Every message name any definition sends or receives."""
        return {
            endpoint.message_name
            for interface in self.interfaces.values()
            for endpoint in interface.sends + interface.receives
        }

    def call_targets(self, key: str) -> set[str]:
        interface = self.interfaces.get(key)
        if interface is None:
            return set()
        return {call.target_key for call in interface.calls}

    def call_cycles(self) -> list[tuple[str, ...]]:
        """Cycles in the key-level call graph, as sorted key tuples.

        Strongly connected components of size > 1, plus self-loops.
        Only edges whose target is actually deployed participate (a
        missing target is CALL001's problem, not a cycle).
        """
        order: list[str] = []
        visited: set[str] = set()

        def dfs_order(start: str) -> None:
            stack: list[tuple[str, Iterable[str]]] = [
                (start, iter(sorted(self.call_targets(start))))
            ]
            visited.add(start)
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child in self.interfaces and child not in visited:
                        visited.add(child)
                        stack.append(
                            (child, iter(sorted(self.call_targets(child))))
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        for key in sorted(self.interfaces):
            if key not in visited:
                dfs_order(key)

        # Kosaraju second pass over the reversed graph.
        reverse: dict[str, set[str]] = {key: set() for key in self.interfaces}
        for key in self.interfaces:
            for target in self.call_targets(key):
                if target in reverse:
                    reverse[target].add(key)
        assigned: set[str] = set()
        cycles: list[tuple[str, ...]] = []
        for key in reversed(order):
            if key in assigned:
                continue
            component = {key}
            stack2 = [key]
            assigned.add(key)
            while stack2:
                node = stack2.pop()
                for pred in reverse.get(node, ()):
                    if pred not in assigned:
                        assigned.add(pred)
                        component.add(pred)
                        stack2.append(pred)
            if len(component) > 1 or key in self.call_targets(key):
                cycles.append(tuple(sorted(component)))
        cycles.sort()
        return cycles

    def fingerprint(self) -> str:
        """Registry fingerprint: hash over every interface fingerprint.

        Two snapshots with identical interfaces (same message endpoints,
        call edges, declared inputs/outputs everywhere) share it, even if
        unrelated internals changed — the interprocess-cache key.
        """
        digest = hashlib.sha256()
        for key in sorted(self.interfaces):
            digest.update(key.encode("utf-8"))
            digest.update(self.interfaces[key].fingerprint().encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()


def interproc_pass(
    definition: ProcessDefinition, graph: DeploymentGraph
) -> list[Diagnostic]:
    """Check one definition's message/call wiring against the deployment.

    Returns diagnostics anchored at this definition's elements only; run it
    once per definition to lint a whole deployment.  The definition itself
    must already be part of ``graph``.
    """
    interface = graph.interfaces.get(definition.key)
    if interface is None or interface.version != definition.version:
        interface = extract_interface(definition)
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_message_rules(interface, graph))
    diagnostics.extend(_call_rules(interface, graph))
    return diagnostics


def _message_rules(
    interface: DefinitionInterface, graph: DeploymentGraph
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for endpoint in interface.sends:
        receivers = graph.receivers(endpoint.message_name)
        if not receivers:
            diagnostics.append(Diagnostic(
                rule=MSG001.id,
                severity=MSG001.severity,
                element_id=endpoint.element_id,
                message=(
                    f"message {endpoint.message_name!r} is sent but no "
                    f"deployed definition receives or catches it — at "
                    f"runtime it is retained (or forwarded) and never "
                    f"consumed"
                ),
                hint="add a receive task / message catch event for it in "
                     "some definition, or drop the send",
            ))
    reported_ambiguous: set[str] = set()
    for endpoint in interface.receives:
        senders = graph.senders(endpoint.message_name)
        if not senders:
            diagnostics.append(Diagnostic(
                rule=MSG002.id,
                severity=MSG002.severity,
                element_id=endpoint.element_id,
                message=(
                    f"message {endpoint.message_name!r} is awaited here but "
                    f"no deployed definition ever sends it — the instance "
                    f"waits forever unless an external client publishes it"
                ),
                hint="if an outside system sends this message, suppress the "
                     "finding on this element; otherwise add the sending "
                     "side or remove the wait",
            ))
        receiver_keys = {key for key, _ in graph.receivers(endpoint.message_name)}
        if len(receiver_keys) > 1 and endpoint.message_name not in reported_ambiguous:
            reported_ambiguous.add(endpoint.message_name)
            diagnostics.append(Diagnostic(
                rule=MSG003.id,
                severity=MSG003.severity,
                element_id=endpoint.element_id,
                message=(
                    f"message {endpoint.message_name!r} has receivers in "
                    f"{len(receiver_keys)} definitions "
                    f"({', '.join(sorted(receiver_keys))}) — which one "
                    f"consumes a send depends on correlation and runtime "
                    f"state"
                ),
                hint="disambiguate with distinct message names, or rely on "
                     "correlation expressions deliberately (and suppress "
                     "this finding)",
            ))
    return diagnostics


def _call_rules(
    interface: DefinitionInterface, graph: DeploymentGraph
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    cycles = {
        key: cycle for cycle in graph.call_cycles() for key in cycle
    }
    for call in interface.calls:
        target = graph.interfaces.get(call.target_key)
        if target is None:
            deployed = ", ".join(sorted(graph.interfaces)) or "none"
            diagnostics.append(Diagnostic(
                rule=CALL001.id,
                severity=CALL001.severity,
                element_id=call.element_id,
                message=(
                    f"call target {call.target_key!r} has no deployed "
                    f"version (deployed keys: {deployed})"
                ),
                hint="deploy the called process first, or fix the key",
            ))
            continue
        cycle = cycles.get(interface.key)
        if cycle is not None and call.target_key in cycle:
            severity = CALL002.severity if _cycle_unconditional(
                graph, cycle
            ) else Severity.WARNING
            qualifier = (
                "every call site on the cycle is unconditional — instances "
                "recurse without bound"
                if severity is Severity.ERROR
                else "at least one call site on the cycle is guarded by a "
                     "choice, so recursion can terminate"
            )
            diagnostics.append(Diagnostic(
                rule=CALL002.id,
                severity=severity,
                element_id=call.element_id,
                message=(
                    f"call activities form a static recursion cycle "
                    f"{' -> '.join(cycle + (cycle[0],))}; {qualifier}"
                ),
                hint="break the cycle, or guard the recursive call with a "
                     "terminating condition",
            ))
        diagnostics.extend(_mapping_rules(call, target))
    return diagnostics


def _cycle_unconditional(graph: DeploymentGraph, cycle: tuple[str, ...]) -> bool:
    """True when every intra-cycle call site must execute on every run."""
    members = set(cycle)
    for key in cycle:
        interface = graph.interfaces.get(key)
        if interface is None:  # pragma: no cover - cycle keys are deployed
            return False
        for call in interface.calls:
            if call.target_key in members and not call.must_execute:
                return False
    return True


def _mapping_rules(
    call: CallSite, target: DefinitionInterface
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    if call.input_keys:
        missing = sorted(target.required_inputs - set(call.input_keys))
        if missing:
            diagnostics.append(Diagnostic(
                rule=CALL003.id,
                severity=CALL003.severity,
                element_id=call.element_id,
                message=(
                    f"input mappings do not provide "
                    f"{', '.join(repr(m) for m in missing)} — "
                    f"{target.key!r} reads "
                    f"{'them' if len(missing) > 1 else 'it'} without ever "
                    f"assigning {'them' if len(missing) > 1 else 'it'}"
                ),
                hint=f"map {'them' if len(missing) > 1 else 'it'} in the "
                     f"call activity's input mappings, or initialize "
                     f"{'them' if len(missing) > 1 else 'it'} inside "
                     f"{target.key!r}",
            ))
    if not target.havoc:
        known = target.writes | target.required_inputs | set(call.input_keys)
        for mapped_to, names in call.output_reads:
            unknown = sorted(set(names) - known)
            if unknown:
                diagnostics.append(Diagnostic(
                    rule=CALL003.id,
                    severity=CALL003.severity,
                    element_id=call.element_id,
                    message=(
                        f"output mapping for {mapped_to!r} reads "
                        f"{', '.join(repr(u) for u in unknown)}, which "
                        f"{target.key!r} never assigns"
                    ),
                    hint=f"assign the variable inside {target.key!r}, or "
                         f"fix the output-mapping expression",
                ))
    return diagnostics
