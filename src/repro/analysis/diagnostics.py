"""Diagnostic and report types for the static-analysis framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _RANKS[self]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    @classmethod
    def parse(cls, raw: str) -> "Severity":
        try:
            return cls(raw.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {raw!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


_RANKS = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation anchored to a model element.

    ``element_id`` is the id of the offending node/flow (or the process key
    for model-wide findings).  ``source``/``line`` carry file provenance
    when the model was read from BPMN XML.  ``hint`` is a suggested fix.
    """

    rule: str
    severity: Severity
    element_id: str
    message: str
    hint: str | None = None
    source: str | None = None
    line: int | None = None

    @property
    def fingerprint(self) -> str:
        """Stable identity used by suppression baselines."""
        return f"{self.rule}:{self.element_id}"

    def format(self) -> str:
        location = self.element_id
        if self.source is not None:
            prefix = self.source
            if self.line is not None:
                prefix = f"{prefix}:{self.line}"
            location = f"{prefix}: {self.element_id}"
        text = f"[{self.severity.value}] {self.rule} {location}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def __str__(self) -> str:
        return self.format()

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "element_id": self.element_id,
            "message": self.message,
        }
        if self.hint is not None:
            payload["hint"] = self.hint
        if self.source is not None:
            payload["source"] = self.source
        if self.line is not None:
            payload["line"] = self.line
        return payload


@dataclass
class AnalysisReport:
    """All diagnostics produced by one :func:`repro.analysis.analyze` run."""

    definition_key: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when there are no error-severity diagnostics."""
        return not self.errors

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def at_least(self, threshold: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= threshold]

    def to_dict(self) -> dict[str, Any]:
        return {
            "process": self.definition_key,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": self.suppressed,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }
