"""Data-flow rules: definite assignment, dead writes, unconsumed values.

Three analyses over the CFG, all derived from the same expression ASTs the
engine evaluates:

* **definite assignment** (DF001/DF002/DF005) — a forward must-analysis:
  ``IN[n]`` is the set of variables assigned on *every* path from the start
  to ``n``.  The meet is intersection, except at parallel joins where all
  incoming branches have completed, so their definitions union.  Havoc
  nodes (form results, message payloads, un-mapped call outputs) define
  everything.  Boundary events inherit the *pre* state of their host — the
  host was cancelled, its writes may not have happened.
* **dead writes** (DF003) — a backward must-overwrite analysis: a write is
  dead when every path onward rewrites the variable before any read.
* **consumption** (DF004) — assigned variables nothing ever reads.

Reads of variables never assigned anywhere are *process inputs* (DF002,
info): the model cannot run unless the instance is started with them.
Reads of variables that are assigned somewhere, but not on every incoming
path, are the real bugs (DF001) — unless the only assignments sit on a
concurrent parallel branch, which is its own rule (DF005: the engine's
interleaving decides whether the value is there).
"""

from __future__ import annotations

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import DF001, DF002, DF003, DF004, DF005
from repro.model.elements import ParallelGateway


def dataflow_pass(cfg: ControlFlowGraph) -> list[Diagnostic]:
    """Run all data-flow rules; returns diagnostics in model order."""
    if cfg.start_id is None:
        return []  # malformed entry (STR001); nothing meaningful to analyse
    universe = frozenset(cfg.known_variables)
    if not universe:
        return []
    definitely = _definite_assignment(cfg, universe)
    reach = _reachability(cfg)
    written_at: dict[str, list[str]] = {}
    for node_id in cfg.definition.nodes:
        for name in cfg.effects[node_id].writes:
            written_at.setdefault(name, []).append(node_id)

    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_read_rules(cfg, definitely, reach, written_at))
    diagnostics.extend(_dead_write_rule(cfg, universe))
    diagnostics.extend(_unconsumed_rule(cfg, written_at))
    return diagnostics


# -- definite assignment ------------------------------------------------------


def _definite_assignment(
    cfg: ControlFlowGraph, universe: frozenset[str]
) -> dict[str, frozenset[str]]:
    """Greatest-fixpoint IN sets (variables assigned on every path)."""
    assert cfg.start_id is not None  # caller guards
    in_sets: dict[str, frozenset[str]] = {
        n: universe for n in cfg.definition.nodes
    }
    in_sets[cfg.start_id] = frozenset()
    out_sets: dict[str, frozenset[str]] = {}

    def out_of(node_id: str) -> frozenset[str]:
        cached = out_sets.get(node_id)
        if cached is not None:
            return cached
        effects = cfg.effects[node_id]
        result = universe if effects.havoc else in_sets[node_id] | effects.writes
        out_sets[node_id] = result
        return result

    worklist = list(cfg.definition.nodes)
    iterations = 0
    limit = max(64, len(cfg.definition.nodes) * len(universe) * 4)
    while worklist and iterations < limit:
        iterations += 1
        node_id = worklist.pop()
        if node_id == cfg.start_id:
            continue
        preds = cfg.predecessors[node_id]
        if not preds:
            continue  # unreachable; stays at universe (STR008 reports it)
        host = cfg.boundary_hosts.get(node_id)
        if host is not None:
            # boundary path forks from the host's *pre* state
            new_in = in_sets[host]
        else:
            node = cfg.definition.nodes[node_id]
            contributions = [out_of(p) for p in preds]
            if isinstance(node, ParallelGateway) and len(preds) > 1:
                new_in = frozenset().union(*contributions)
            else:
                new_in = contributions[0]
                for contribution in contributions[1:]:
                    new_in &= contribution
        if new_in != in_sets[node_id]:
            in_sets[node_id] = new_in
            out_sets.pop(node_id, None)
            worklist.extend(cfg.successors[node_id])
    return in_sets


def _reachability(cfg: ControlFlowGraph) -> dict[str, set[str]]:
    """reach[n] = nodes reachable from n (n excluded unless on a cycle)."""
    reach: dict[str, set[str]] = {}
    for start in cfg.definition.nodes:
        seen: set[str] = set()
        stack = list(cfg.successors[start])
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(cfg.successors[node_id])
        reach[start] = seen
    return reach


def _concurrent_writers(
    cfg: ControlFlowGraph,
    reach: dict[str, set[str]],
    reader: str,
    writers: list[str],
) -> list[str]:
    """Writers on a branch parallel to ``reader`` (neither reaches the other,
    both downstream of different branches of one AND-split)."""
    result = []
    for writer in writers:
        if writer == reader:
            continue
        if writer in reach[reader] or reader in reach[writer]:
            continue
        for node in cfg.definition.nodes.values():
            if not isinstance(node, ParallelGateway):
                continue
            branches = cfg.successors[node.id]
            if len(branches) < 2:
                continue
            for i, b1 in enumerate(branches):
                reach1 = reach[b1] | {b1}
                if reader not in reach1:
                    continue
                for b2 in branches[:i] + branches[i + 1:]:
                    if writer in reach[b2] | {b2}:
                        result.append(writer)
                        break
                else:
                    continue
                break
            else:
                continue
            break
    return result


def _read_rules(
    cfg: ControlFlowGraph,
    definitely: dict[str, frozenset[str]],
    reach: dict[str, set[str]],
    written_at: dict[str, list[str]],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    reported_inputs: set[str] = set()
    reported_reads: set[tuple[str, str, str]] = set()
    for node_id in cfg.definition.nodes:
        for use in cfg.effects[node_id].uses:
            available = definitely[node_id] | use.defined_before
            for name in sorted(use.names - available):
                writers = written_at.get(name)
                if not writers:
                    if name not in reported_inputs:
                        reported_inputs.add(name)
                        diagnostics.append(Diagnostic(
                            rule=DF002.id,
                            severity=DF002.severity,
                            element_id=node_id,
                            message=(
                                f"variable {name!r} is never assigned in the "
                                f"model; it must be provided at instance start "
                                f"(first read: {use.detail})"
                            ),
                            hint="document it as a process input, or add an "
                                 "initializing script task after the start event",
                        ))
                    continue
                concurrent = _concurrent_writers(cfg, reach, node_id, writers)
                rule = DF005 if concurrent else DF001
                key = (rule.id, node_id, name)
                if key in reported_reads:
                    continue
                reported_reads.add(key)
                if concurrent:
                    message = (
                        f"read of {name!r} ({use.detail}) races with its "
                        f"assignment on parallel branch node(s) "
                        f"{sorted(concurrent)}; the value depends on "
                        f"interleaving"
                    )
                    hint = ("synchronize with a parallel join before the read, "
                            "or assign the variable before the split")
                else:
                    message = (
                        f"variable {name!r} may be uninitialized when read "
                        f"({use.detail}); it is only assigned at "
                        f"{sorted(set(writers))}"
                    )
                    hint = ("assign the variable on every path to this node "
                            "(e.g. initialize it right after the start event)")
                diagnostics.append(Diagnostic(
                    rule=rule.id,
                    severity=rule.severity,
                    element_id=node_id,
                    message=message,
                    hint=hint,
                ))
    return diagnostics


# -- dead writes --------------------------------------------------------------


def _dead_write_rule(
    cfg: ControlFlowGraph, universe: frozenset[str]
) -> list[Diagnostic]:
    overwritten = _must_overwrite(cfg, universe)
    diagnostics: list[Diagnostic] = []
    for node_id in cfg.definition.nodes:
        effects = cfg.effects[node_id]
        successors = cfg.successors[node_id]
        if successors:
            out = overwritten[successors[0]]
            for successor in successors[1:]:
                out &= overwritten[successor]
        else:
            out = frozenset()
        for name in sorted(effects.writes & out):
            # a read of the fresh value inside the same node keeps it alive
            if any(
                name in use.names and name in use.defined_before
                for use in effects.uses
            ):
                continue
            diagnostics.append(Diagnostic(
                rule=DF003.id,
                severity=DF003.severity,
                element_id=node_id,
                message=(
                    f"value assigned to {name!r} here is overwritten on every "
                    f"path before anything reads it"
                ),
                hint="drop the assignment, or move it past the overwrite",
            ))
    return diagnostics


def _must_overwrite(
    cfg: ControlFlowGraph, universe: frozenset[str]
) -> dict[str, frozenset[str]]:
    """IN sets of the backward analysis: variables that, from the *entry* of
    the node onward, are rewritten on every path before any read."""
    in_sets: dict[str, frozenset[str]] = {}
    for node_id in cfg.definition.nodes:
        in_sets[node_id] = frozenset() if not cfg.successors[node_id] else universe
    changed = True
    iterations = 0
    limit = max(64, len(cfg.definition.nodes) * 4)
    while changed and iterations < limit:
        iterations += 1
        changed = False
        for node_id in cfg.definition.nodes:
            successors = cfg.successors[node_id]
            if successors:
                out = in_sets[successors[0]]
                for successor in successors[1:]:
                    out &= in_sets[successor]
            else:
                out = frozenset()
            effects = cfg.effects[node_id]
            if effects.havoc or effects.reads_everything:
                # the node may observe anything: nothing is provably dead past it
                new_in: frozenset[str] = frozenset()
            else:
                names = set(out) | effects.writes
                new_in = frozenset(
                    name for name in names
                    if effects.first_action(name) == "write"
                    or (effects.first_action(name) is None and name in out)
                )
            if new_in != in_sets[node_id]:
                in_sets[node_id] = new_in
                changed = True
    return in_sets


# -- consumption --------------------------------------------------------------


def _unconsumed_rule(
    cfg: ControlFlowGraph, written_at: dict[str, list[str]]
) -> list[Diagnostic]:
    if any(e.reads_everything for e in cfg.effects.values()):
        return []  # a full-scope copy consumes everything
    read_anywhere: set[str] = set()
    for effects in cfg.effects.values():
        for use in effects.uses:
            read_anywhere.update(use.names)
    diagnostics: list[Diagnostic] = []
    for name in sorted(set(written_at) - read_anywhere):
        diagnostics.append(Diagnostic(
            rule=DF004.id,
            severity=DF004.severity,
            element_id=written_at[name][0],
            message=(
                f"variable {name!r} is assigned but nothing in the model "
                f"reads it"
            ),
            hint="fine if it is a process output; otherwise remove the "
                 "assignment",
        ))
    return diagnostics
