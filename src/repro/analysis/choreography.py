"""Cross-process behavioural analysis: compose definitions over channels.

The per-model behavioural pass (SND*) verifies each definition against its
*own* WF-net; message exchange between definitions is invisible to it.
This module lifts the check to choreography scope: every communicating
definition's WF-net is embedded into one composed Petri net, with one
*channel place* per message name — send transitions produce into the
channel, receive/catch transitions additionally consume from it.  A
marking where some instance can never finish because its channel stays
empty is a cross-process deadlock (**CHOR001**) that no per-model analysis
can see.

Channels with no internal sender are *open*: an external client may
publish the message, so their receive transitions stay unconstrained
(otherwise every externally-triggered wait would be reported as a
deadlock; MSG002 already flags them statically).  Composition is done per
connected component of the closed-channel topology, and the state space
is budget-guarded like the per-model pass — exhaustion yields **CHOR003**
(info), never a false verdict.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.interproc import DeploymentGraph
from repro.analysis.rules import CHOR001, CHOR003
from repro.model.errors import ModelError
from repro.model.mapping import to_workflow_net
from repro.petri.coverability import build_coverability_graph
from repro.petri.errors import AnalysisBudgetExceeded
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import build_reachability_graph

#: separator between a definition key and an embedded node id
_SEP = "::"


def closed_channels(
    graph: DeploymentGraph, keys: Iterable[str] | None = None
) -> set[str]:
    """Message names both sent and received inside the deployment (or the
    given subset of definitions) — the channels composition models."""
    scope = set(graph.interfaces) if keys is None else set(keys)
    sent = {
        e.message_name
        for key in scope
        for e in graph.interfaces[key].sends
    }
    received = {
        e.message_name
        for key in scope
        for e in graph.interfaces[key].receives
    }
    return sent & received


def communicating_components(graph: DeploymentGraph) -> list[tuple[str, ...]]:
    """Connected components of the closed-channel topology.

    Two definitions are connected when one sends a message the other
    receives (and vice versa).  Only components that actually contain a
    closed channel are returned — everything else has nothing to compose.
    """
    channels = closed_channels(graph)
    if not channels:
        return []
    adjacency: dict[str, set[str]] = {key: set() for key in graph.interfaces}
    participants: set[str] = set()
    for message in channels:
        members = {key for key, _ in graph.senders(message)} | {
            key for key, _ in graph.receivers(message)
        }
        participants.update(members)
        for a in members:
            adjacency[a].update(members - {a})
    components: list[tuple[str, ...]] = []
    seen: set[str] = set()
    for key in sorted(participants):
        if key in seen:
            continue
        component = {key}
        stack = [key]
        seen.add(key)
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    stack.append(neighbor)
        if closed_channels(graph, component):
            components.append(tuple(sorted(component)))
    return components


def compose_component(
    graph: DeploymentGraph, keys: tuple[str, ...]
) -> tuple[PetriNet, Marking, Marking]:
    """Embed each definition's WF-net and wire the channel places.

    Returns ``(net, initial marking, completion marking)``.  Raises
    :class:`~repro.model.errors.ModelError` when any member has no WF-net
    translation (the caller reports CHOR003).
    """
    net = PetriNet(name="choreography:" + "+".join(keys))
    initial: dict[str, int] = {}
    final: dict[str, int] = {}
    for key in keys:
        wf = to_workflow_net(graph.definitions[key])
        for place_id, place in wf.net.places.items():
            net.add_place(f"{key}{_SEP}{place_id}", label=place.label)
        for transition_id, transition in wf.net.transitions.items():
            net.add_transition(
                f"{key}{_SEP}{transition_id}",
                label=transition.label,
                silent=transition.silent,
            )
        for arc in wf.net.arcs:
            net.add_arc(
                f"{key}{_SEP}{arc.source}", f"{key}{_SEP}{arc.target}", arc.weight
            )
        initial[f"{key}{_SEP}{wf.source}"] = 1
        final[f"{key}{_SEP}{wf.sink}"] = 1
    for message in sorted(closed_channels(graph, keys)):
        channel = f"chan{_SEP}{message}"
        net.add_place(channel, label=f"message {message!r}")
        for key, endpoint in graph.senders(message):
            if key in keys:
                net.add_arc(f"{key}{_SEP}{endpoint.element_id}", channel)
        for key, endpoint in graph.receivers(message):
            if key in keys:
                net.add_arc(channel, f"{key}{_SEP}{endpoint.element_id}")
    return net, Marking(initial), Marking(final)


def choreography_pass(
    graph: DeploymentGraph, max_states: int = 20_000
) -> dict[str, list[Diagnostic]]:
    """Run the composed-net analysis; diagnostics grouped by definition key.

    Never raises: untranslatable members and budget exhaustion degrade to
    CHOR003 (info) on every member of the affected component.
    """
    results: dict[str, list[Diagnostic]] = {}
    for component in communicating_components(graph):
        for key, diagnostic in _analyze_component(graph, component, max_states):
            results.setdefault(key, []).append(diagnostic)
    return results


def _analyze_component(
    graph: DeploymentGraph, keys: tuple[str, ...], max_states: int
) -> list[tuple[str, Diagnostic]]:
    try:
        net, initial, final = compose_component(graph, keys)
    except ModelError as exc:
        return _skipped(keys, f"a member has no WF-net translation: {exc}")
    try:
        coverability = build_coverability_graph(
            net, initial, max_states=max_states
        )
    except AnalysisBudgetExceeded as exc:
        return _skipped(keys, f"analysis budget exceeded: {exc}")
    if not coverability.is_bounded():
        return _skipped(
            keys,
            "the composed net is unbounded (a send loop can flood a "
            "channel); cross-process behavioural rules were not decided",
        )
    try:
        reachability = build_reachability_graph(
            net, initial, max_states=max_states
        )
    except AnalysisBudgetExceeded as exc:  # pragma: no cover - bounded nets
        return _skipped(keys, f"analysis budget exceeded: {exc}")

    findings: list[tuple[str, Diagnostic]] = []
    reported: set[tuple[str, str]] = set()
    for marking in reachability.deadlocks():
        if all(marking[sink] >= count for sink, count in final.items()):
            continue  # every instance completed; leftovers are per-model SND004
        for key, element_id, message in _starved_receives(net, marking, keys):
            if (key, element_id) in reported:
                continue
            reported.add((key, element_id))
            findings.append((key, Diagnostic(
                rule=CHOR001.id,
                severity=CHOR001.severity,
                element_id=element_id,
                message=(
                    f"cross-process deadlock: composing "
                    f"{', '.join(keys)} reaches a state where this wait "
                    f"for message {message!r} can never be satisfied by "
                    f"any internal send"
                ),
                hint="check the send side's guards and ordering — the "
                     "sending path is skipped or already past in the "
                     "deadlocking run",
            )))
    return findings


def _starved_receives(
    net: PetriNet, marking: Marking, keys: tuple[str, ...]
) -> list[tuple[str, str, str]]:
    """Receive transitions disabled only (or partly) by an empty channel.

    Returns ``(definition key, element id, message name)`` triples for the
    stuck marking, attributing the deadlock to the waits it starves.
    """
    starved: list[tuple[str, str, str]] = []
    chan_prefix = f"chan{_SEP}"
    for transition_id in net.transitions:
        preset = net.preset(transition_id)
        channels = [p for p in preset if p.startswith(chan_prefix)]
        if not channels:
            continue
        internal = {p: w for p, w in preset.items() if not p.startswith(chan_prefix)}
        if not marking.covers(internal):
            continue  # the instance is not even at the wait yet
        if marking.covers(preset):
            continue  # enabled; not starved
        key, _, element_id = transition_id.partition(_SEP)
        if key in keys:
            starved.append(
                (key, element_id, channels[0][len(chan_prefix):])
            )
    return starved


# -- rendering (repro choreography CLI) ---------------------------------------


def choreography_summary(graph: DeploymentGraph) -> dict[str, object]:
    """A JSON-able description of the deployment's message/call graph."""
    channels: list[dict[str, object]] = []
    for message in sorted(graph.message_names()):
        senders = graph.senders(message)
        receivers = graph.receivers(message)
        channels.append({
            "message": message,
            "senders": [
                {"process": key, "element": e.element_id} for key, e in senders
            ],
            "receivers": [
                {"process": key, "element": e.element_id, "kind": e.kind}
                for key, e in receivers
            ],
            "open": not senders or not receivers,
        })
    calls: list[dict[str, object]] = []
    for key in sorted(graph.interfaces):
        for call in graph.interfaces[key].calls:
            calls.append({
                "caller": key,
                "element": call.element_id,
                "target": call.target_key,
                "deployed": call.target_key in graph.interfaces,
                "multi_instance": call.multi_instance,
            })
    return {
        "definitions": [
            {"key": key, "version": graph.interfaces[key].version}
            for key in sorted(graph.interfaces)
        ],
        "channels": channels,
        "calls": calls,
        "cycles": [list(cycle) for cycle in graph.call_cycles()],
    }


def render_choreography(graph: DeploymentGraph) -> str:
    """Human-readable message/call graph for the terminal."""
    summary = choreography_summary(graph)
    lines: list[str] = []
    definitions = summary["definitions"]
    assert isinstance(definitions, list)
    lines.append(f"deployment: {len(definitions)} definition(s)")
    for entry in definitions:
        assert isinstance(entry, dict)
        lines.append(f"  {entry['key']} (v{entry['version']})")
    channels = summary["channels"]
    assert isinstance(channels, list)
    lines.append(f"channels: {len(channels)}")
    for channel in channels:
        assert isinstance(channel, dict)
        senders = channel["senders"]
        receivers = channel["receivers"]
        assert isinstance(senders, list) and isinstance(receivers, list)
        sender_text = ", ".join(
            f"{s['process']}[{s['element']}]" for s in senders
        ) or "(external)"
        receiver_text = ", ".join(
            f"{r['process']}[{r['element']}]" for r in receivers
        ) or "(nobody)"
        lines.append(
            f"  {channel['message']}: {sender_text} -> {receiver_text}"
        )
    calls = summary["calls"]
    assert isinstance(calls, list)
    lines.append(f"calls: {len(calls)}")
    for call in calls:
        assert isinstance(call, dict)
        marker = "" if call["deployed"] else "  [not deployed]"
        kind = "multi-instance" if call["multi_instance"] else "call"
        lines.append(
            f"  {call['caller']}[{call['element']}] --{kind}--> "
            f"{call['target']}{marker}"
        )
    cycles = summary["cycles"]
    assert isinstance(cycles, list)
    if cycles:
        lines.append(f"call cycles: {len(cycles)}")
        for cycle in cycles:
            assert isinstance(cycle, list)
            lines.append("  " + " -> ".join([*cycle, cycle[0]]))
    return "\n".join(lines)


def _skipped(
    keys: tuple[str, ...], reason: str
) -> list[tuple[str, Diagnostic]]:
    return [
        (key, Diagnostic(
            rule=CHOR003.id,
            severity=CHOR003.severity,
            element_id=key,
            message=f"choreography analysis of {', '.join(keys)} skipped: "
                    f"{reason}",
            hint="raise the state budget, or verify the composition "
                 "manually",
        ))
        for key in keys
    ]
