"""Reference rules (REF001–REF004): do the model's bindings resolve?

A process model names things that live outside it: services in the
:class:`~repro.services.registry.ServiceRegistry`, roles in the
:class:`~repro.worklist.resources.OrganizationalModel`, decision tables in
the engine's decision registry, and other deployed processes.  The
:class:`AnalysisContext` carries snapshots of those namespaces; any that is
``None`` is *unknown* and its checks are skipped (e.g. linting a standalone
file with no engine in sight).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import REF001, REF002, REF003, REF004
from repro.model.elements import (
    BusinessRuleTask,
    CallActivity,
    MultiInstanceActivity,
    ServiceTask,
    UserTask,
)
from repro.model.process import ProcessDefinition


@dataclass(frozen=True)
class AnalysisContext:
    """Known external namespaces; ``None`` means "don't check"."""

    services: frozenset[str] | None = None
    roles: frozenset[str] | None = None
    decisions: frozenset[str] | None = None
    process_keys: frozenset[str] | None = None

    @classmethod
    def from_engine(cls, engine: object) -> "AnalysisContext":
        """Snapshot an engine's registries (duck-typed to avoid an import
        cycle with :mod:`repro.engine.engine`)."""
        services = frozenset(engine.services.names())  # type: ignore[attr-defined]
        organization = engine.organization  # type: ignore[attr-defined]
        roles = frozenset(
            role
            for resource in organization.all()
            for role in resource.roles
        )
        decisions = frozenset(engine.decisions.names())  # type: ignore[attr-defined]
        process_keys = frozenset(engine._latest_version)  # type: ignore[attr-defined]
        return cls(
            services=services,
            roles=roles,
            decisions=decisions,
            process_keys=process_keys,
        )


def reference_pass(
    definition: ProcessDefinition, context: AnalysisContext
) -> list[Diagnostic]:
    """Check every external binding the model makes."""
    diagnostics: list[Diagnostic] = []
    for node in definition.nodes.values():
        if isinstance(node, ServiceTask) and context.services is not None:
            if node.service not in context.services:
                diagnostics.append(Diagnostic(
                    rule=REF001.id,
                    severity=REF001.severity,
                    element_id=node.id,
                    message=(
                        f"service {node.service!r} is not registered"
                        + _known(context.services)
                    ),
                    hint=f"register it: engine.services.register"
                         f"({node.service!r}, handler)",
                ))
        elif isinstance(node, UserTask) and context.roles is not None:
            if node.role not in context.roles:
                diagnostics.append(Diagnostic(
                    rule=REF002.id,
                    severity=REF002.severity,
                    element_id=node.id,
                    message=(
                        f"no resource holds role {node.role!r}"
                        + _known(context.roles)
                    ),
                    hint=f"add a resource with the role: "
                         f"engine.organization.add(name, "
                         f"roles=[{node.role!r}])",
                ))
        elif isinstance(node, BusinessRuleTask) and context.decisions is not None:
            if node.decision not in context.decisions:
                diagnostics.append(Diagnostic(
                    rule=REF003.id,
                    severity=REF003.severity,
                    element_id=node.id,
                    message=(
                        f"decision table {node.decision!r} is not registered"
                        + _known(context.decisions)
                    ),
                    hint="register the table with the engine's decision "
                         "registry before deploying",
                ))
        elif isinstance(node, (CallActivity, MultiInstanceActivity)):
            if context.process_keys is not None:
                known = context.process_keys | {definition.key}
                if node.process_key not in known:
                    diagnostics.append(Diagnostic(
                        rule=REF004.id,
                        severity=REF004.severity,
                        element_id=node.id,
                        message=(
                            f"called process {node.process_key!r} is not "
                            f"deployed"
                        ),
                        hint="deploy the called process first (deployment "
                             "order matters for call activities)",
                    ))
    return diagnostics


def _known(names: frozenset[str]) -> str:
    if not names:
        return " (none are registered)"
    shown = sorted(names)[:5]
    suffix = ", ..." if len(names) > 5 else ""
    return f" (known: {', '.join(shown)}{suffix})"
