"""The rule registry: every diagnostic the analyser can emit, in one place.

Rule ids are stable API — they appear in baselines, suppression attributes,
and CI logs.  Categories:

* ``STR``  structural — graph shape, cardinalities, expression syntax
* ``DF``   data flow — variable definition/use over the control-flow graph
* ``SND``  soundness / anti-patterns — behavioural defects found on the
  WF-net translation (deadlock, lack of synchronization, dead activities)
* ``REF``  references — bindings to services, roles, decisions, processes
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Severity


@dataclass(frozen=True)
class RuleSpec:
    """Identity and default severity of one analysis rule."""

    id: str
    title: str
    severity: Severity
    category: str
    description: str = ""


RULES: dict[str, RuleSpec] = {}


def _register(spec: RuleSpec) -> RuleSpec:
    if spec.id in RULES:  # pragma: no cover - registry is module-static
        raise ValueError(f"duplicate rule id {spec.id!r}")
    RULES[spec.id] = spec
    return spec


def rule(rule_id: str) -> RuleSpec:
    """Look up a rule spec; raises ``KeyError`` for unknown ids."""
    return RULES[rule_id]


# -- structural ---------------------------------------------------------------

STR001 = _register(RuleSpec(
    "STR001", "malformed entry/exit", Severity.ERROR, "structural",
    "exactly one start event; at least one end event; no flows into starts "
    "or out of ends",
))
STR002 = _register(RuleSpec(
    "STR002", "flow cardinality violation", Severity.ERROR, "structural",
    "activities and intermediate events have exactly one incoming and one "
    "outgoing flow; gateways have at least one of each",
))
STR003 = _register(RuleSpec(
    "STR003", "gateway guard/default misuse", Severity.ERROR, "structural",
    "default flows only on XOR/OR gateways, at most one per gateway; "
    "unguarded or guard-less splits are flagged",
))
STR004 = _register(RuleSpec(
    "STR004", "event gateway target", Severity.ERROR, "structural",
    "event-based gateways must lead to catch events",
))
STR005 = _register(RuleSpec(
    "STR005", "expression does not parse", Severity.ERROR, "structural",
    "guards, cardinalities, and script statements must parse in the "
    "sandboxed expression language the engine evaluates",
))
STR006 = _register(RuleSpec(
    "STR006", "boundary event attachment", Severity.ERROR, "structural",
    "boundary events attach to existing activities",
))
STR007 = _register(RuleSpec(
    "STR007", "separation-of-duties reference", Severity.ERROR, "structural",
    "separate_from must name other user tasks",
))
STR008 = _register(RuleSpec(
    "STR008", "disconnected node", Severity.ERROR, "structural",
    "every node lies on a path from the start event to some end event",
))
STR009 = _register(RuleSpec(
    "STR009", "compensation handler reference", Severity.ERROR, "structural",
    "a compensation_handler must name a detached activity of the same "
    "definition — an existing task with no sequence flows, distinct from "
    "its host",
))

# -- data flow ----------------------------------------------------------------

DF001 = _register(RuleSpec(
    "DF001", "possibly uninitialized read", Severity.WARNING, "dataflow",
    "a variable assigned somewhere in the model is read on a path that "
    "reaches the read before any assignment",
))
DF002 = _register(RuleSpec(
    "DF002", "undeclared process input", Severity.INFO, "dataflow",
    "a variable is read but never assigned anywhere in the model — it must "
    "be supplied when the instance starts",
))
DF003 = _register(RuleSpec(
    "DF003", "dead write", Severity.WARNING, "dataflow",
    "an assigned value is overwritten on every path before anything "
    "reads it",
))
DF004 = _register(RuleSpec(
    "DF004", "write never consumed", Severity.INFO, "dataflow",
    "a variable is assigned but nothing in the model reads it — fine if it "
    "is a process output, dead weight otherwise",
))
DF005 = _register(RuleSpec(
    "DF005", "ordering-dependent read", Severity.WARNING, "dataflow",
    "a variable is read on one parallel branch but only assigned on a "
    "concurrent branch; whether the read sees the value depends on "
    "interleaving",
))

# -- soundness / anti-patterns ------------------------------------------------

SND001 = _register(RuleSpec(
    "SND001", "deadlock", Severity.ERROR, "behavioral",
    "a reachable marking has no enabled transition and is not completion — "
    "classically an XOR-split routed into an AND-join",
))
SND002 = _register(RuleSpec(
    "SND002", "lack of synchronization", Severity.ERROR, "behavioral",
    "duplicate tokens on a sequence flow or duplicate completion — "
    "classically an AND-split merged by an XOR-join",
))
SND003 = _register(RuleSpec(
    "SND003", "dead activity", Severity.ERROR, "behavioral",
    "an activity that can never execute in any run",
))
SND004 = _register(RuleSpec(
    "SND004", "implicit termination", Severity.WARNING, "behavioral",
    "completion with tokens left on other paths (multiple end events on "
    "parallel branches); the engine allows it, strict soundness does not",
))
SND005 = _register(RuleSpec(
    "SND005", "no option to complete", Severity.ERROR, "behavioral",
    "from some reachable marking, completion is unreachable (livelock)",
))
SND006 = _register(RuleSpec(
    "SND006", "behavioural analysis skipped", Severity.INFO, "behavioral",
    "the state-space budget was exhausted or the model has no WF-net "
    "translation; behavioural rules were not decided",
))

# -- references ---------------------------------------------------------------

REF001 = _register(RuleSpec(
    "REF001", "unregistered service", Severity.ERROR, "reference",
    "a service task names a service that is not registered",
))
REF002 = _register(RuleSpec(
    "REF002", "unknown role", Severity.WARNING, "reference",
    "a user task routes to a role no resource holds",
))
REF003 = _register(RuleSpec(
    "REF003", "unknown decision", Severity.ERROR, "reference",
    "a business-rule task references an unregistered decision table",
))
REF004 = _register(RuleSpec(
    "REF004", "unknown process key", Severity.WARNING, "reference",
    "a call activity references a process key that is not deployed",
))

# -- interprocess: message choreography ---------------------------------------

MSG001 = _register(RuleSpec(
    "MSG001", "send without receiver", Severity.WARNING, "interproc",
    "a send task publishes a message name no deployed definition ever "
    "receives or catches — the message is retained (or forwarded and never "
    "consumed) at runtime",
))
MSG002 = _register(RuleSpec(
    "MSG002", "receive nothing sends", Severity.WARNING, "interproc",
    "a receive task or message catch event waits for a message name no "
    "deployed definition ever sends — unless an external client publishes "
    "it, the instance waits forever",
))
MSG003 = _register(RuleSpec(
    "MSG003", "ambiguous receivers", Severity.WARNING, "interproc",
    "several deployed definitions receive the same message name; which one "
    "consumes a send depends on correlation and runtime state",
))

# -- interprocess: call graph -------------------------------------------------

CALL001 = _register(RuleSpec(
    "CALL001", "call target not deployed", Severity.ERROR, "interproc",
    "a call activity (or multi-instance activity) targets a process key "
    "with no deployed version; starting the subprocess will fail",
))
CALL002 = _register(RuleSpec(
    "CALL002", "static recursion cycle", Severity.ERROR, "interproc",
    "call activities form a cycle through the deployment; if every call "
    "site on the cycle must execute, instances recurse without bound",
))
CALL003 = _register(RuleSpec(
    "CALL003", "call mapping mismatch", Severity.WARNING, "interproc",
    "a caller's input mappings miss a variable the callee requires at "
    "start, or an output mapping reads a variable the callee never writes",
))

# -- interprocess: choreography soundness -------------------------------------

CHOR001 = _register(RuleSpec(
    "CHOR001", "cross-process deadlock", Severity.WARNING, "interproc",
    "composing the communicating definitions into one net with message "
    "channel places reaches a marking where some instance is stuck waiting "
    "and no internal send can ever satisfy it",
))
CHOR003 = _register(RuleSpec(
    "CHOR003", "choreography analysis skipped", Severity.INFO, "interproc",
    "the composed state-space budget was exhausted or a definition has no "
    "WF-net translation; cross-process behavioural rules were not decided",
))
