"""Control-flow graph and variable effects for the data-flow pass.

The CFG mirrors the definition's flow graph plus one edge from each
activity to its boundary events (a boundary path starts from the *pre*
state of its host — the host may be cancelled before its writes land).

Effects describe what a node does to instance variables, derived from the
same compiled expression ASTs the engine evaluates:

* ``uses`` — ordered reads with the set of variables each one references
  and whether it happens before or after the node's own writes;
* ``writes`` — variables the node definitely assigns;
* ``havoc`` — the node may write arbitrary variables (user-task form
  results, message payload merges, un-mapped call-activity outputs);
* ``reads_everything`` — the node forwards the whole variable scope
  somewhere opaque (call activity without input mappings), which keeps
  every variable observable for liveness purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.expr import ParseError, collect_names, compile_expression
from repro.expr.script import split_statements, parse_statement
from repro.model.elements import (
    BoundaryEvent,
    BusinessRuleTask,
    CallActivity,
    ExclusiveGateway,
    InclusiveGateway,
    IntermediateMessageEvent,
    MultiInstanceActivity,
    ReceiveTask,
    ScriptTask,
    SendTask,
    ServiceTask,
    UserTask,
)
from repro.model.process import ProcessDefinition


@dataclass(frozen=True)
class VariableUse:
    """One read site inside a node."""

    names: frozenset[str]
    detail: str
    #: variables already written by this node before the read happens
    defined_before: frozenset[str] = frozenset()


@dataclass
class NodeEffects:
    """Variable reads/writes of one node."""

    uses: list[VariableUse] = field(default_factory=list)
    writes: set[str] = field(default_factory=set)
    havoc: bool = False
    reads_everything: bool = False

    def first_action(self, name: str) -> str | None:
        """``"read"``/``"write"``/None — what the node does to ``name`` first
        (drives the backward dead-write analysis)."""
        for use in self.uses:
            if name in use.names and name not in use.defined_before:
                return "read"
        if name in self.writes:
            return "write"
        if any(name in use.names for use in self.uses):
            return "read"
        return None


def _names(expression: str) -> frozenset[str]:
    try:
        return frozenset(collect_names(compile_expression(expression).ast))
    except ParseError:
        return frozenset()  # STR005 reports the syntax error


def node_effects(definition: ProcessDefinition, node_id: str) -> NodeEffects:
    """Compute the variable effects of one node (guards included: a split's
    outgoing-flow conditions are evaluated at the split)."""
    node = definition.nodes[node_id]
    effects = NodeEffects()

    if isinstance(node, ScriptTask):
        defined: set[str] = set()
        for line_no, text in split_statements(node.script):
            try:
                statement = parse_statement(line_no, text)
            except ParseError:
                continue  # STR005 reports it; skip for data flow
            names = set(collect_names(statement.expression.ast))
            if statement.reads_target:
                names.add(statement.target)
            effects.uses.append(VariableUse(
                names=frozenset(names),
                detail=f"script line {line_no}",
                defined_before=frozenset(defined),
            ))
            defined.add(statement.target)
            effects.writes.add(statement.target)
    elif isinstance(node, ServiceTask):
        for arg, expression in node.inputs.items():
            effects.uses.append(VariableUse(_names(expression), f"input {arg!r}"))
        if node.output_variable:
            effects.writes.add(node.output_variable)
    elif isinstance(node, UserTask):
        effects.havoc = True  # form results merge arbitrary keys
    elif isinstance(node, (ReceiveTask, IntermediateMessageEvent)):
        if node.correlation_expression:
            effects.uses.append(
                VariableUse(_names(node.correlation_expression), "correlation")
            )
        effects.havoc = True  # message payload merges into variables
    elif isinstance(node, SendTask):
        if node.payload_expression:
            effects.uses.append(
                VariableUse(_names(node.payload_expression), "payload")
            )
    elif isinstance(node, BusinessRuleTask):
        # table input names are runtime data; without the registry we cannot
        # know what the decision reads, so only the write side is modelled
        if node.result_variable:
            effects.writes.add(node.result_variable)
        else:
            effects.havoc = True  # outputs merge into the variable scope
    elif isinstance(node, MultiInstanceActivity):
        effects.uses.append(
            VariableUse(_names(node.cardinality_expression), "cardinality")
        )
        for child_var, expression in node.input_mappings.items():
            effects.uses.append(
                VariableUse(_names(expression), f"input mapping {child_var!r}")
            )
        if not node.input_mappings:
            effects.reads_everything = True  # children get a full copy
        if node.wait_for_completion and node.output_collection:
            effects.writes.add(node.output_collection)
    elif isinstance(node, CallActivity):
        for child_var, expression in node.input_mappings.items():
            effects.uses.append(
                VariableUse(_names(expression), f"input mapping {child_var!r}")
            )
        if not node.input_mappings:
            effects.reads_everything = True  # child gets a full copy
        if node.output_mappings:
            # mapping expressions evaluate against the *child's* variables,
            # so they are not parent reads; only the targets are writes
            effects.writes.update(node.output_mappings.keys())
        else:
            effects.havoc = True  # child variables merge wholesale
    # gateways/start: guard conditions are evaluated at the split
    if isinstance(node, (ExclusiveGateway, InclusiveGateway)):
        for flow in definition.outgoing(node.id):
            if flow.condition is not None:
                effects.uses.append(
                    VariableUse(_names(flow.condition), f"guard on {flow.id!r}")
                )
    return effects


@dataclass
class ControlFlowGraph:
    """Successor/predecessor maps plus per-node effects."""

    definition: ProcessDefinition
    start_id: str | None
    successors: dict[str, list[str]]
    predecessors: dict[str, list[str]]
    effects: dict[str, NodeEffects]
    #: boundary event id -> host activity id (data state forks *before* the host)
    boundary_hosts: dict[str, str]

    @property
    def known_variables(self) -> set[str]:
        """Every variable name any effect mentions."""
        names: set[str] = set()
        for effect in self.effects.values():
            names.update(effect.writes)
            for use in effect.uses:
                names.update(use.names)
        return names


def build_cfg(definition: ProcessDefinition) -> ControlFlowGraph:
    """Build the CFG over all nodes (unreachable nodes included; STR008
    reports them separately)."""
    successors: dict[str, list[str]] = {n: [] for n in definition.nodes}
    predecessors: dict[str, list[str]] = {n: [] for n in definition.nodes}
    boundary_hosts: dict[str, str] = {}
    for flow in definition.flows.values():
        successors[flow.source].append(flow.target)
        predecessors[flow.target].append(flow.source)
    for node in definition.nodes.values():
        if isinstance(node, BoundaryEvent) and node.attached_to in definition.nodes:
            successors[node.attached_to].append(node.id)
            predecessors[node.id].append(node.attached_to)
            boundary_hosts[node.id] = node.attached_to
    starts = definition.start_events()
    # compensation handlers run outside the control flow (and only on an
    # explicit compensate command); their reads/writes would pollute the
    # flow-sensitive analysis with DF003/DF004 noise
    handlers = definition.compensation_handler_ids()
    effects = {
        n: NodeEffects() if n in handlers else node_effects(definition, n)
        for n in definition.nodes
    }
    return ControlFlowGraph(
        definition=definition,
        start_id=starts[0].id if len(starts) == 1 else None,
        successors=successors,
        predecessors=predecessors,
        effects=effects,
        boundary_hosts=boundary_hosts,
    )
