"""Behavioural anti-pattern rules (SND001–SND006) on the WF-net translation.

The pass reuses the BPMN→Petri mapping (:func:`repro.model.mapping.to_workflow_net`)
and the coverability/reachability machinery, but classifies defects into
*model-level* diagnoses instead of net-level soundness verdicts:

* **SND001 deadlock** — a stuck non-final marking; attributed to the
  parallel join that is partially enabled in it (the XOR-split→AND-join
  mismatch).
* **SND002 lack of synchronization** — duplicate tokens on a flow, or
  duplicate completion, or an unbounded place (the AND-split→XOR-join
  mismatch).
* **SND003 dead activity** — an activity transition that fires in no run.
* **SND004 implicit termination** — completion with tokens left behind
  (multiple end events on parallel paths).  The engine tolerates this;
  strict soundness does not — hence a warning, and only reported when no
  harder defect (SND001/SND002) explains the leftovers.
* **SND005 no option to complete** — markings from which completion is
  unreachable without being stuck (livelock).
* **SND006** — analysis skipped (budget or untranslatable model), info.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import SND001, SND002, SND003, SND004, SND005, SND006
from repro.model.elements import ACTIVITY_TYPES, ParallelGateway
from repro.model.errors import ModelError
from repro.model.mapping import to_workflow_net
from repro.model.process import ProcessDefinition
from repro.petri.coverability import build_coverability_graph
from repro.petri.errors import AnalysisBudgetExceeded
from repro.petri.marking import Marking
from repro.petri.reachability import build_reachability_graph


def behavioral_pass(
    definition: ProcessDefinition, max_states: int = 50_000
) -> list[Diagnostic]:
    """Run the anti-pattern rules; never raises.

    Requires a structurally valid model (run the structural pass first and
    skip this one on structural errors — the mapping raises on malformed
    graphs, which is reported here as SND006).
    """
    try:
        wf_net = to_workflow_net(definition)
    except ModelError as exc:
        return [_skipped(definition, f"model has no WF-net translation: {exc}")]
    net = wf_net.net

    try:
        coverability = build_coverability_graph(
            net, Marking.single(wf_net.source), max_states=max_states
        )
    except AnalysisBudgetExceeded as exc:
        return [_skipped(definition, f"analysis budget exceeded: {exc}")]

    if not coverability.is_bounded():
        return _unbounded_diagnostics(definition, wf_net, coverability)

    try:
        graph = build_reachability_graph(
            net, Marking.single(wf_net.source), max_states=max_states
        )
    except AnalysisBudgetExceeded as exc:  # pragma: no cover - bounded nets fit
        return [_skipped(definition, f"analysis budget exceeded: {exc}")]

    diagnostics: list[Diagnostic] = []
    final = Marking.single(wf_net.sink)

    reaching_final = (
        graph.markings_reaching(final) if final in graph.markings else set()
    )
    stuck = graph.markings - reaching_final
    # markings that already produced a completion token are termination
    # states (proper or not) — classified by SND002/SND004, not as
    # deadlock/livelock
    deadlocks = [
        m for m in stuck
        if not graph.edges.get(m) and m[wf_net.sink] == 0
    ]
    livelocked = [
        m for m in stuck if graph.edges.get(m) and m[wf_net.sink] == 0
    ]

    for marking in sorted(deadlocks, key=repr)[:3]:
        joins = _partial_joins(definition, marking)
        element = joins[0] if joins else definition.key
        detail = (
            f"parallel join {joins[0]!r} waits for tokens that can never "
            f"arrive" if joins else "no transition is enabled"
        )
        diagnostics.append(Diagnostic(
            rule=SND001.id,
            severity=SND001.severity,
            element_id=element,
            message=f"deadlock: {detail} (stuck marking {marking})",
            hint="an XOR-split routed into an AND-join? Match the split and "
                 "join types on every path",
        ))

    duplicates = _duplicate_token_elements(definition, wf_net.sink, graph.markings)
    for element, marking in duplicates[:3]:
        diagnostics.append(Diagnostic(
            rule=SND002.id,
            severity=SND002.severity,
            element_id=element,
            message=(
                f"lack of synchronization: duplicate tokens reach "
                f"{element!r} (marking {marking})"
            ),
            hint="an AND-split merged by an XOR-join? Join parallel branches "
                 "with a parallel gateway",
        ))
    if livelocked and not deadlocks:
        marking = sorted(livelocked, key=repr)[0]
        diagnostics.append(Diagnostic(
            rule=SND005.id,
            severity=SND005.severity,
            element_id=definition.key,
            message=(
                f"no option to complete: from marking {marking} completion "
                f"is unreachable"
            ),
            hint="check loop exits: some cycle or branch never leads to an "
                 "end event",
        ))

    if not deadlocks and not duplicates:
        improper = sorted(
            (
                m for m in graph.markings
                if m[wf_net.sink] >= 1 and m != final
            ),
            key=repr,
        )
        for marking in improper[:1]:
            leftovers = _token_elements(definition, wf_net.sink, marking)
            if leftovers:
                detail = (
                    f"the process completes while tokens remain at "
                    f"{leftovers} (marking {marking})"
                )
            else:
                detail = (
                    "the process completes more than once (multiple end "
                    "events on parallel paths)"
                )
            diagnostics.append(Diagnostic(
                rule=SND004.id,
                severity=SND004.severity,
                element_id=leftovers[0] if leftovers else definition.key,
                message=f"implicit termination: {detail}",
                hint="merge parallel paths with an AND-join before a single "
                     "end event for the strict completion guarantee",
            ))

    for node_id in _dead_activities(definition, graph.dead_transitions()):
        diagnostics.append(Diagnostic(
            rule=SND003.id,
            severity=SND003.severity,
            element_id=node_id,
            message="dead activity: no run of the process ever executes it",
            hint="its only inflow depends on a join that can never fire, or "
                 "a guard combination that cannot occur",
        ))
    return diagnostics


def _skipped(definition: ProcessDefinition, reason: str) -> Diagnostic:
    return Diagnostic(
        rule=SND006.id,
        severity=SND006.severity,
        element_id=definition.key,
        message=f"behavioural rules not decided: {reason}",
        hint="raise max_states, or simplify the model",
    )


def _unbounded_diagnostics(
    definition: ProcessDefinition, wf_net: object, coverability: object
) -> list[Diagnostic]:
    places = coverability.unbounded_places()  # type: ignore[attr-defined]
    sink = wf_net.sink  # type: ignore[attr-defined]
    elements = sorted({
        _place_element(definition, place)
        for place in places
        if place != sink
    })
    diagnostics = [
        Diagnostic(
            rule=SND002.id,
            severity=SND002.severity,
            element_id=element,
            message=(
                f"lack of synchronization: tokens accumulate without bound "
                f"at {element!r}"
            ),
            hint="a loop keeps multiplying tokens — usually an AND-split "
                 "whose branches merge through an XOR-join inside a cycle",
        )
        for element in elements[:3]
    ]
    if not diagnostics:
        diagnostics.append(Diagnostic(
            rule=SND002.id,
            severity=SND002.severity,
            element_id=definition.key,
            message="lack of synchronization: the process can complete "
                    "arbitrarily many times",
            hint="join parallel branches with a parallel gateway",
        ))
    return diagnostics


def _place_element(definition: ProcessDefinition, place: str) -> str:
    """Map a net place back to the model element it represents."""
    if place.startswith("f:"):
        flow = definition.flows.get(place[2:])
        return flow.target if flow is not None else place
    if place.startswith("g:"):
        return place[2:]
    return definition.key  # "i"/"o"


def _token_elements(
    definition: ProcessDefinition, sink: str, marking: Marking
) -> list[str]:
    elements = []
    for place, count in marking.items():
        if place == sink or count < 1:
            continue
        elements.append(_place_element(definition, place))
    return sorted(set(elements))


def _duplicate_token_elements(
    definition: ProcessDefinition, sink: str, markings: set[Marking]
) -> list[tuple[str, Marking]]:
    seen: dict[str, Marking] = {}
    for marking in sorted(markings, key=repr):
        for place, count in marking.items():
            if count >= 2 and place != sink:
                element = _place_element(definition, place)
                seen.setdefault(element, marking)
    return sorted(seen.items())


def _partial_joins(definition: ProcessDefinition, marking: Marking) -> list[str]:
    """Parallel joins with some but not all input flows marked."""
    joins = []
    for node in definition.nodes.values():
        if not isinstance(node, ParallelGateway):
            continue
        incoming = definition.incoming(node.id)
        if len(incoming) < 2:
            continue
        marked = [f for f in incoming if marking[f"f:{f.id}"] >= 1]
        if marked and len(marked) < len(incoming):
            joins.append(node.id)
    return sorted(joins)


def _dead_activities(
    definition: ProcessDefinition, dead_transitions: set[str]
) -> list[str]:
    """Dead net transitions filtered down to real model activities/events."""
    dead = []
    for transition_id in dead_transitions:
        node = definition.nodes.get(transition_id)
        if node is not None and isinstance(node, ACTIVITY_TYPES):
            dead.append(transition_id)
    return sorted(dead)
