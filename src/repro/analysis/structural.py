"""Structural rules (STR001–STR009).

These subsume the historical ad-hoc checks from ``model/validation.py`` —
the messages are kept verbatim so existing tooling (and tests) that match
on them keep working; :func:`repro.model.validation.validate` is now a thin
adapter over this pass.

Expression syntax (STR005) goes through the *real* expression and script
parsers (:func:`repro.expr.compile_expression`,
:func:`repro.expr.script.parse_statement`) — what lints clean is exactly
what the engine will evaluate.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import (
    STR001,
    STR002,
    STR003,
    STR004,
    STR005,
    STR006,
    STR007,
    STR008,
    STR009,
    RuleSpec,
)
from repro.expr import ParseError, compile_expression
from repro.expr.script import ScriptSyntaxError, parse_statement, split_statements
from repro.model.elements import (
    ACTIVITY_TYPES,
    BoundaryEvent,
    EndEvent,
    EventBasedGateway,
    ExclusiveGateway,
    InclusiveGateway,
    IntermediateMessageEvent,
    IntermediateTimerEvent,
    ManualTask,
    MultiInstanceActivity,
    ReceiveTask,
    ScriptTask,
    ServiceTask,
    StartEvent,
    UserTask,
)
from repro.model.process import ProcessDefinition


def structural_pass(definition: ProcessDefinition) -> list[Diagnostic]:
    """Run every structural rule; never raises."""
    diagnostics: list[Diagnostic] = []
    _entry_exit(definition, diagnostics)
    _cardinalities(definition, diagnostics)
    _gateways(definition, diagnostics)
    _expressions(definition, diagnostics)
    _boundary_events(definition, diagnostics)
    _separation_of_duties(definition, diagnostics)
    _compensation_handlers(definition, diagnostics)
    _connectivity(definition, diagnostics)
    return diagnostics


def _add(
    diagnostics: list[Diagnostic],
    spec: RuleSpec,
    element_id: str,
    message: str,
    severity: Severity | None = None,
    hint: str | None = None,
) -> None:
    diagnostics.append(Diagnostic(
        rule=spec.id,
        severity=severity if severity is not None else spec.severity,
        element_id=element_id,
        message=message,
        hint=hint,
    ))


def _entry_exit(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    starts = definition.start_events()
    if len(starts) != 1:
        _add(out, STR001, definition.key,
             f"process must have exactly one start event, found {len(starts)}")
    for start in starts:
        if definition.incoming(start.id):
            _add(out, STR001, start.id, "start event must not have incoming flows")
        if len(definition.outgoing(start.id)) != 1:
            _add(out, STR001, start.id,
                 "start event must have exactly one outgoing flow")
    ends = definition.end_events()
    if not ends:
        _add(out, STR001, definition.key,
             "process must have at least one end event")
    for end in ends:
        if definition.outgoing(end.id):
            _add(out, STR001, end.id, "end event must not have outgoing flows")
        if not definition.incoming(end.id):
            _add(out, STR001, end.id, "end event must have an incoming flow")


def _cardinalities(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    handlers = definition.compensation_handler_ids()
    for node in definition.nodes.values():
        if isinstance(node, (StartEvent, EndEvent)):
            continue
        if node.id in handlers:
            continue  # detached by design; STR009 checks them
        incoming = definition.incoming(node.id)
        outgoing = definition.outgoing(node.id)
        if isinstance(node, BoundaryEvent):
            if incoming:
                _add(out, STR002, node.id,
                     "boundary event must not have incoming flows")
            if len(outgoing) != 1:
                _add(out, STR002, node.id,
                     "boundary event needs exactly one outgoing flow")
            continue
        if isinstance(
            node,
            (*ACTIVITY_TYPES, IntermediateTimerEvent, IntermediateMessageEvent),
        ):
            if len(incoming) != 1:
                _add(out, STR002, node.id,
                     f"activity/event must have exactly one incoming flow, "
                     f"has {len(incoming)} (use explicit gateways to merge)",
                     hint="merge multiple inflows with an explicit gateway")
            if len(outgoing) != 1:
                _add(out, STR002, node.id,
                     f"activity/event must have exactly one outgoing flow, "
                     f"has {len(outgoing)} (use explicit gateways to branch)",
                     hint="branch with an explicit gateway")
        else:  # gateways
            if not incoming:
                _add(out, STR002, node.id, "gateway has no incoming flow")
            if not outgoing:
                _add(out, STR002, node.id, "gateway has no outgoing flow")


def _gateways(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    for node in definition.nodes.values():
        outgoing = definition.outgoing(node.id)
        defaults = [f for f in outgoing if f.is_default]
        if isinstance(node, (ExclusiveGateway, InclusiveGateway)):
            if len(defaults) > 1:
                _add(out, STR003, node.id,
                     "gateway has more than one default flow")
            if len(outgoing) > 1:
                unguarded = [
                    f for f in outgoing if f.condition is None and not f.is_default
                ]
                if unguarded and isinstance(node, ExclusiveGateway):
                    _add(out, STR003, node.id,
                         f"unguarded non-default flows on XOR split: "
                         f"{sorted(f.id for f in unguarded)} "
                         f"(treated as 'always true')",
                         severity=Severity.WARNING,
                         hint="guard each branch, or mark one flow as default")
                if not defaults and all(f.condition is not None for f in outgoing):
                    _add(out, STR003, node.id,
                         "split has no default flow; instance fails if no "
                         "guard matches",
                         severity=Severity.WARNING,
                         hint="add a default flow as the fallback route")
        elif defaults:
            _add(out, STR003, node.id,
                 "only XOR/OR gateways may have a default flow")
        if isinstance(node, EventBasedGateway):
            for flow in outgoing:
                target = definition.nodes.get(flow.target)
                if not isinstance(
                    target,
                    (IntermediateTimerEvent, IntermediateMessageEvent, ReceiveTask),
                ):
                    _add(out, STR004, node.id,
                         f"event-based gateway must lead to catch events, "
                         f"but {flow.target!r} is {type(target).__name__}")
        if not isinstance(
            node, (ExclusiveGateway, InclusiveGateway, EventBasedGateway)
        ):
            for flow in definition.outgoing(node.id):
                if flow.condition is not None and not isinstance(node, StartEvent):
                    if isinstance(node, (*ACTIVITY_TYPES,)):
                        _add(out, STR003, flow.id,
                             "condition on a non-gateway outgoing flow is "
                             "ignored",
                             severity=Severity.WARNING,
                             hint="route through an exclusive gateway to make "
                                  "the condition effective")


def _expressions(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    for flow in definition.flows.values():
        if flow.condition is not None:
            try:
                compile_expression(flow.condition)
            except ParseError as exc:
                _add(out, STR005, flow.id, f"condition does not parse: {exc}")
    for node in definition.nodes.values():
        if isinstance(node, MultiInstanceActivity):
            try:
                compile_expression(node.cardinality_expression)
            except ParseError as exc:
                _add(out, STR005, node.id, f"cardinality does not parse: {exc}")
        if isinstance(node, ScriptTask):
            for line_no, statement in split_statements(node.script):
                try:
                    parse_statement(line_no, statement)
                except ScriptSyntaxError as exc:
                    if exc.reason == "keyword":
                        _add(out, STR005, node.id, f"script {exc}")
                    else:
                        _add(out, STR005, node.id,
                             f"script line {line_no}: not an assignment: "
                             f"{statement!r}")
                except ParseError as exc:
                    _add(out, STR005, node.id,
                         f"script line {line_no} does not parse: {exc}")


def _separation_of_duties(
    definition: ProcessDefinition, out: list[Diagnostic]
) -> None:
    for node in definition.nodes.values():
        if not isinstance(node, UserTask):
            continue
        for other_id in node.separate_from:
            other = definition.nodes.get(other_id)
            if other is None:
                _add(out, STR007, node.id,
                     f"separate_from references unknown node {other_id!r}")
            elif not isinstance(other, UserTask):
                _add(out, STR007, node.id,
                     f"separate_from target {other_id!r} is not a user task")


def _boundary_events(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    for node in definition.nodes.values():
        if not isinstance(node, BoundaryEvent):
            continue
        host = definition.nodes.get(node.attached_to)
        if host is None:
            _add(out, STR006, node.id,
                 f"attached to unknown node {node.attached_to!r}")
        elif not isinstance(host, ACTIVITY_TYPES):
            _add(out, STR006, node.id,
                 f"boundary events attach to activities, not "
                 f"{type(host).__name__}")


def _connectivity(definition: ProcessDefinition, out: list[Diagnostic]) -> None:
    if len(definition.start_events()) != 1:
        return  # entry/exit rule already reported
    handlers = definition.compensation_handler_ids()
    reachable = definition.reachable_from_start()
    for node_id in definition.nodes:
        if node_id not in reachable and node_id not in handlers:
            _add(out, STR008, node_id,
                 "node is unreachable from the start event")
    # co-reachability: every node should reach some end event
    reverse: dict[str, list[str]] = {}
    for flow in definition.flows.values():
        reverse.setdefault(flow.target, []).append(flow.source)
    co_reachable: set[str] = set()
    stack = [e.id for e in definition.end_events()]
    while stack:
        node_id = stack.pop()
        if node_id in co_reachable:
            continue
        co_reachable.add(node_id)
        for prev in reverse.get(node_id, ()):
            stack.append(prev)
        node = definition.nodes.get(node_id)
        if isinstance(node, BoundaryEvent):
            stack.append(node.attached_to)
    for node_id in definition.nodes:
        if node_id in reachable and node_id not in co_reachable:
            _add(out, STR008, node_id, "no path from node to any end event")


#: node types :mod:`repro.engine.executors.compensation` can run inline.
_HANDLER_TYPES = (ScriptTask, ServiceTask, ManualTask)


def _compensation_handlers(
    definition: ProcessDefinition, out: list[Diagnostic]
) -> None:
    for node in definition.nodes.values():
        handler_id = getattr(node, "compensation_handler", None)
        if handler_id is None:
            continue
        handler = definition.nodes.get(handler_id)
        if handler is None:
            _add(out, STR009, node.id,
                 f"compensation_handler references unknown node {handler_id!r}")
            continue
        if handler_id == node.id:
            _add(out, STR009, node.id,
                 "a task cannot be its own compensation handler")
            continue
        if not isinstance(handler, _HANDLER_TYPES):
            _add(out, STR009, node.id,
                 f"compensation handler {handler_id!r} is a "
                 f"{type(handler).__name__}; handlers must be script, "
                 f"service, or manual tasks")
            continue
        if definition.incoming(handler_id) or definition.outgoing(handler_id):
            _add(out, STR009, handler_id,
                 "compensation handlers must be detached: no incoming or "
                 "outgoing sequence flows",
                 hint="remove the flows; the handler runs only when the "
                      "instance is compensated")
