"""Reporters for analysis results: console text, JSON, and baselines.

A *baseline* is a JSON file of known-issue fingerprints
(``"RULE:element_id"``), used to lint legacy models in CI without failing
on debt that predates the linter — new findings still fail the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis.diagnostics import AnalysisReport, Severity


def render_console(report: AnalysisReport) -> str:
    """Human-readable multi-line report (stable ordering)."""
    lines = [_header(report)]
    for diagnostic in _sorted(report):
        lines.append(diagnostic.format())
    if report.suppressed:
        lines.append(f"({report.suppressed} finding(s) suppressed)")
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """The report as a JSON document (machine-readable, one per model)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def _header(report: AnalysisReport) -> str:
    errors = len(report.errors)
    warnings = len(report.warnings)
    infos = len(report.infos)
    if not report.diagnostics:
        return f"{report.definition_key}: clean"
    return (
        f"{report.definition_key}: {errors} error(s), "
        f"{warnings} warning(s), {infos} info(s)"
    )


def _sorted(report: AnalysisReport) -> list:
    return sorted(
        report.diagnostics,
        key=lambda d: (-d.severity.rank, d.rule, d.element_id, d.message),
    )


@dataclass(frozen=True)
class Baseline:
    """Known-issue fingerprints that should not fail a lint run."""

    fingerprints: frozenset[str]

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if isinstance(raw, dict):
            entries = raw.get("fingerprints", [])
        else:
            entries = raw
        if not isinstance(entries, list) or not all(
            isinstance(e, str) for e in entries
        ):
            raise ValueError(
                f"baseline {path}: expected a JSON list of "
                f"'RULE:element' strings (or {{'fingerprints': [...]}})"
            )
        return cls(fingerprints=frozenset(entries))

    def apply(
        self, report: AnalysisReport, scope: str | None = None
    ) -> AnalysisReport:
        """Drop baselined findings (they count as suppressed).

        ``scope`` is the definition key when linting a whole deployment:
        scoped entries (``"KEY::RULE:element"``) then match alongside the
        bare ``"RULE:element"`` form, so one baseline file can cover many
        definitions without element-id collisions.
        """
        def matches(fingerprint: str) -> bool:
            if fingerprint in self.fingerprints:
                return True
            return (
                scope is not None
                and f"{scope}::{fingerprint}" in self.fingerprints
            )

        kept = [
            d for d in report.diagnostics
            if not matches(d.fingerprint)
        ]
        dropped = len(report.diagnostics) - len(kept)
        return replace(
            report,
            diagnostics=kept,
            suppressed=report.suppressed + dropped,
        )


def exit_code(report: AnalysisReport, fail_on: str) -> int:
    """CLI exit code: 0 clean, 1 findings at/above threshold, else 0.

    ``fail_on`` is a severity name or ``"never"``.
    """
    if fail_on == "never":
        return 0
    threshold = Severity.parse(fail_on)
    return 1 if report.at_least(threshold) else 0
