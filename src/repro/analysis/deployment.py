"""Deployment-wide analysis: per-model + interprocess + choreography.

:func:`analyze_deployment` is to a whole registry what
:func:`repro.analysis.analyze` is to one definition: it snapshots every
definition into a :class:`~repro.analysis.interproc.DeploymentGraph`, runs
the per-model passes on each, layers the interprocess rules (MSG*/CALL*)
and the composed-net choreography check (CHOR*) on top, and returns one
:class:`DeploymentReport` with a per-definition
:class:`~repro.analysis.diagnostics.AnalysisReport` each.

Give it an :class:`~repro.analysis.cache.AnalysisCache` and repeated runs
skip everything that did not change: local reports re-run only for edited
definitions, interprocess results only when some definition's message/call
*interface* changed, choreography only when a member of the communicating
component changed.  ``repro lint --deployment`` and the engine's deploy
path both go through here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from repro.analysis.cache import AnalysisCache
from repro.analysis.choreography import (
    choreography_pass,
    communicating_components,
)
from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.interproc import DeploymentGraph, interproc_pass
from repro.analysis.reference import AnalysisContext
from repro.model.process import ProcessDefinition


@dataclass
class DeploymentReport:
    """Per-definition reports for one deployment snapshot."""

    reports: dict[str, AnalysisReport] = field(default_factory=dict)
    cache_stats: dict[str, int] | None = None

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """Every finding, grouped by definition key."""
        return [
            d
            for key in sorted(self.reports)
            for d in self.reports[key].diagnostics
        ]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def suppressed(self) -> int:
        return sum(r.suppressed for r in self.reports.values())

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def at_least(self, threshold: Severity) -> list[Diagnostic]:
        """Findings at/above a severity (drives the CLI exit code)."""
        return [d for d in self.diagnostics if d.severity >= threshold]

    def apply_baseline(self, baseline: Any) -> "DeploymentReport":
        """Apply a known-issue :class:`~repro.analysis.reporting.Baseline`
        to every per-definition report (scoped fingerprints supported)."""
        applied = DeploymentReport(cache_stats=self.cache_stats)
        for key in self.reports:
            applied.reports[key] = baseline.apply(self.reports[key], scope=key)
        return applied

    def fingerprints(self) -> list[str]:
        """Scoped ``"KEY::RULE:element"`` fingerprints of every finding —
        what ``repro lint --write-baseline`` records."""
        return sorted(
            f"{key}::{d.fingerprint}"
            for key, report in self.reports.items()
            for d in report.diagnostics
        )

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "definitions": [
                self.reports[key].to_dict() for key in sorted(self.reports)
            ],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
            },
        }
        if self.cache_stats is not None:
            payload["cache"] = dict(self.cache_stats)
        return payload


def analyze_deployment(
    definitions: Iterable[ProcessDefinition],
    *,
    context: AnalysisContext | None = None,
    behavioral: bool = True,
    max_states: int = 50_000,
    choreography: bool = True,
    choreography_max_states: int = 20_000,
    severity_overrides: Mapping[str, Severity] | None = None,
    cache: AnalysisCache | None = None,
) -> DeploymentReport:
    """Lint a whole deployment; one report per definition key.

    When ``context`` is ``None`` a context is synthesized whose
    ``process_keys`` are exactly the snapshot's keys, so intra-deployment
    REF004 findings resolve without an engine.  The newest version wins
    when several versions of one key are supplied.
    """
    snapshot = list(definitions)
    interfaces = (
        {d.key: cache.interface(d) for d in snapshot} if cache else None
    )
    graph = DeploymentGraph.build(snapshot, interfaces=interfaces)
    if context is None:
        context = AnalysisContext(
            process_keys=frozenset(graph.definitions),
        )

    options = _options_token(
        context, behavioral, max_states, severity_overrides
    )
    registry = graph.fingerprint()
    report = DeploymentReport()
    chor_results = (
        _choreography(graph, choreography_max_states, cache)
        if choreography
        else {}
    )
    for key in sorted(graph.definitions):
        definition = graph.definitions[key]
        local = _local_report(definition, context, behavioral, max_states,
                              severity_overrides, options, cache)
        extra = _interproc_diagnostics(
            definition, graph, registry, severity_overrides, cache
        )
        extra.extend(chor_results.get(key, []))
        merged = _merge(definition, local, extra)
        report.reports[key] = merged
    if cache is not None:
        report.cache_stats = cache.stats()
    return report


def render_deployment_console(report: DeploymentReport) -> str:
    """Human-readable deployment report: summary line + per-definition."""
    from repro.analysis.reporting import render_console

    lines = [
        f"deployment: {len(report.reports)} definition(s), "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        + (
            f", {report.suppressed} suppressed"
            if report.suppressed
            else ""
        )
    ]
    for key in sorted(report.reports):
        lines.append(render_console(report.reports[key]))
    return "\n".join(lines)


def render_deployment_json(report: DeploymentReport) -> str:
    """The deployment report as one JSON document."""
    import json

    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def _local_report(
    definition: ProcessDefinition,
    context: AnalysisContext,
    behavioral: bool,
    max_states: int,
    severity_overrides: Mapping[str, Severity] | None,
    options: str,
    cache: AnalysisCache | None,
) -> AnalysisReport:
    from repro.analysis import analyze

    if cache is None:
        return analyze(
            definition,
            context=context,
            behavioral=behavioral,
            max_states=max_states,
            severity_overrides=severity_overrides,
        )
    key = cache.local_key(definition, options)
    cached = cache.get_local(key)
    if cached is not None:
        return cached
    fresh = analyze(
        definition,
        context=context,
        behavioral=behavioral,
        max_states=max_states,
        severity_overrides=severity_overrides,
    )
    cache.put_local(key, fresh)
    return fresh


def _interproc_diagnostics(
    definition: ProcessDefinition,
    graph: DeploymentGraph,
    registry_fingerprint: str,
    severity_overrides: Mapping[str, Severity] | None,
    cache: AnalysisCache | None,
) -> list[Diagnostic]:
    """Raw interprocess findings, cached on (content, registry interface)."""
    if cache is None:
        raw = interproc_pass(definition, graph)
    else:
        key = cache.interproc_key(definition, registry_fingerprint)
        cached = cache.get_interproc(key)
        if cached is not None:
            raw = cached
        else:
            raw = interproc_pass(definition, graph)
            cache.put_interproc(key, raw)
    if severity_overrides:
        raw = [
            replace(d, severity=severity_overrides[d.rule])
            if d.rule in severity_overrides
            else d
            for d in raw
        ]
    return raw


def _choreography(
    graph: DeploymentGraph,
    max_states: int,
    cache: AnalysisCache | None,
) -> dict[str, list[Diagnostic]]:
    """Composed-net findings per key; cached per communicating component.

    The cache key is the member definitions' content hashes — stricter
    than the interface fingerprint, because a purely internal change (a
    new gateway guard) can alter the composed behaviour.
    """
    if cache is None:
        return choreography_pass(graph, max_states)
    results: dict[str, list[Diagnostic]] = {}
    for component in communicating_components(graph):
        hashes = ":".join(
            cache.content_hash(graph.definitions[key]) for key in component
        )
        key = f"chor:{hashes}:{max_states}"
        cached = cache.get_interproc(key)
        if cached is not None:
            member_diags = cached
        else:
            sub = DeploymentGraph(
                definitions={k: graph.definitions[k] for k in component},
                interfaces={k: graph.interfaces[k] for k in component},
            )
            per_key = choreography_pass(sub, max_states)
            member_diags = [
                replace(d, element_id=f"{k}\x00{d.element_id}")
                for k, diags in per_key.items()
                for d in diags
            ]
            cache.put_interproc(key, member_diags)
        for diagnostic in member_diags:
            owner, _, element_id = diagnostic.element_id.partition("\x00")
            results.setdefault(owner, []).append(
                replace(diagnostic, element_id=element_id)
            )
    return results


def _merge(
    definition: ProcessDefinition,
    local: AnalysisReport,
    extra: list[Diagnostic],
) -> AnalysisReport:
    """Attach provenance/suppressions to the extra findings and merge."""
    from repro.analysis import _apply_suppressions, _with_provenance

    decorated = [_with_provenance(definition, d) for d in extra]
    kept, suppressed = _apply_suppressions(definition, decorated)
    return AnalysisReport(
        definition_key=local.definition_key,
        diagnostics=list(local.diagnostics) + kept,
        suppressed=local.suppressed + suppressed,
    )


def _options_token(
    context: AnalysisContext,
    behavioral: bool,
    max_states: int,
    severity_overrides: Mapping[str, Severity] | None,
) -> str:
    """Everything besides the definition that shapes a local report."""
    def names(values: frozenset[str] | None) -> str:
        return "-" if values is None else ",".join(sorted(values))

    overrides = "-" if not severity_overrides else ",".join(
        f"{rule}={severity.value}"
        for rule, severity in sorted(severity_overrides.items())
    )
    return "|".join((
        f"b{int(behavioral)}",
        f"s{max_states}",
        names(context.services),
        names(context.roles),
        names(context.decisions),
        names(context.process_keys),
        overrides,
    ))
