"""XES (eXtensible Event Stream) XML export/import for event logs.

XES is the IEEE-standard interchange format consumed by ProM, Disco,
pm4py, and friends.  This module covers the core attributes the miners
here use: ``concept:name`` (case id / activity), ``org:resource``, and
``time:timestamp``.  Extra event attributes round-trip as string
attributes.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from datetime import datetime, timezone

from repro.history.log import EventLog, LogEvent, Trace


class XesParseError(Exception):
    """The document is not a parsable XES log."""


def _format_timestamp(seconds: float) -> str:
    return datetime.fromtimestamp(seconds, tz=timezone.utc).isoformat()


def _parse_timestamp(text: str) -> float:
    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError as exc:
        raise XesParseError(f"bad timestamp {text!r}: {exc}") from exc


def to_xes_xml(log: EventLog) -> str:
    """Serialize an event log to XES XML."""
    root = ET.Element("log", {"xes.version": "1.0"})
    ET.SubElement(root, "string", {"key": "concept:name", "value": log.name})
    for trace in log:
        trace_el = ET.SubElement(root, "trace")
        ET.SubElement(
            trace_el, "string", {"key": "concept:name", "value": trace.case_id}
        )
        for event in trace:
            event_el = ET.SubElement(trace_el, "event")
            ET.SubElement(
                event_el, "string", {"key": "concept:name", "value": event.activity}
            )
            ET.SubElement(
                event_el,
                "date",
                {"key": "time:timestamp", "value": _format_timestamp(event.timestamp)},
            )
            if event.resource is not None:
                ET.SubElement(
                    event_el, "string", {"key": "org:resource", "value": event.resource}
                )
            for key, value in sorted(event.attributes.items()):
                ET.SubElement(
                    event_el, "string", {"key": key, "value": str(value)}
                )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def parse_xes(xml_text: str) -> EventLog:
    """Parse XES XML into an event log; raises :class:`XesParseError`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise XesParseError(f"not well-formed XML: {exc}") from exc
    if root.tag != "log":
        raise XesParseError(f"expected <log> root, got <{root.tag}>")
    name = "xes-import"
    for attribute in root.findall("string"):
        if attribute.get("key") == "concept:name":
            name = attribute.get("value", name)
    log = EventLog(name=name)
    for index, trace_el in enumerate(root.findall("trace")):
        case_id = f"case-{index}"
        for attribute in trace_el.findall("string"):
            if attribute.get("key") == "concept:name":
                case_id = attribute.get("value", case_id)
        events: list[LogEvent] = []
        for event_el in trace_el.findall("event"):
            activity = None
            timestamp = 0.0
            resource = None
            extras: dict[str, str] = {}
            for attribute in event_el:
                key = attribute.get("key", "")
                value = attribute.get("value", "")
                if key == "concept:name":
                    activity = value
                elif key == "time:timestamp":
                    timestamp = _parse_timestamp(value)
                elif key == "org:resource":
                    resource = value
                elif key:
                    extras[key] = value
            if activity is None:
                raise XesParseError("event without concept:name")
            events.append(
                LogEvent(
                    activity=activity,
                    timestamp=timestamp,
                    resource=resource,
                    attributes=extras,
                )
            )
        log.add(Trace(case_id=case_id, events=events))
    return log
