"""Canonical history event types.

String constants (not an enum) so events stay trivially JSON-serializable
and extensible by downstream users.
"""


class EventTypes:
    """Namespace of all event types the engine and worklist emit."""

    # instance lifecycle
    INSTANCE_STARTED = "instance.started"
    INSTANCE_COMPLETED = "instance.completed"
    INSTANCE_TERMINATED = "instance.terminated"
    INSTANCE_FAILED = "instance.failed"
    INSTANCE_SUSPENDED = "instance.suspended"
    INSTANCE_RESUMED = "instance.resumed"
    INSTANCE_MIGRATED = "instance.migrated"

    # node lifecycle
    NODE_ENTERED = "node.entered"
    NODE_COMPLETED = "node.completed"
    NODE_CANCELLED = "node.cancelled"

    # variables
    VARIABLES_UPDATED = "variables.updated"

    # work items (human tasks)
    WORKITEM_CREATED = "workitem.created"
    WORKITEM_OFFERED = "workitem.offered"
    WORKITEM_ALLOCATED = "workitem.allocated"
    WORKITEM_STARTED = "workitem.started"
    WORKITEM_COMPLETED = "workitem.completed"
    WORKITEM_CANCELLED = "workitem.cancelled"
    WORKITEM_ESCALATED = "workitem.escalated"

    # timers and messages
    TIMER_SCHEDULED = "timer.scheduled"
    TIMER_FIRED = "timer.fired"
    MESSAGE_SENT = "message.sent"
    MESSAGE_RECEIVED = "message.received"

    # services
    SERVICE_INVOKED = "service.invoked"
    SERVICE_FAILED = "service.failed"
    SERVICE_RETRIED = "service.retried"
    SERVICE_ENQUEUED = "service.enqueued"
    SERVICE_DEAD_LETTERED = "service.dead_lettered"
    SERVICE_REQUEUED = "service.requeued"

    # errors / boundaries
    ERROR_RAISED = "error.raised"
    BOUNDARY_TRIGGERED = "boundary.triggered"

    # compensation (saga orchestration)
    COMPENSATION_TRIGGERED = "compensation.triggered"
    NODE_COMPENSATED = "node.compensated"

    # deployment
    DEFINITION_DEPLOYED = "definition.deployed"

    # command pipeline
    COMMAND_DISPATCHED = "command.dispatched"
