"""Event logs in activity-trace form (XES-style), for process mining.

A :class:`Trace` is the ordered sequence of *activity* events of one case
(process instance); an :class:`EventLog` is a bag of traces.  Logs come
from three places: converted engine history (:func:`to_event_log`),
synthetic generators (:mod:`repro.mining.generators`), and JSON import.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.history.events import EventTypes


@dataclass(frozen=True)
class LogEvent:
    """One activity occurrence inside a trace."""

    activity: str
    timestamp: float = 0.0
    resource: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict, hash=False, compare=False)


@dataclass
class Trace:
    """One case: an ordered list of activity events."""

    case_id: str
    events: list[LogEvent] = field(default_factory=list)

    @property
    def activities(self) -> tuple[str, ...]:
        """The activity sequence (the trace's 'control-flow shadow')."""
        return tuple(e.activity for e in self.events)

    @property
    def duration(self) -> float:
        """Last minus first timestamp (0 for empty/singleton traces)."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].timestamp - self.events[0].timestamp

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self.events)


@dataclass
class EventLog:
    """A collection of traces plus log-level helpers."""

    traces: list[Trace] = field(default_factory=list)
    name: str = "log"

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def add(self, trace: Trace) -> None:
        """Append one trace."""
        self.traces.append(trace)

    @property
    def activities(self) -> set[str]:
        """All activities occurring anywhere in the log."""
        return {e.activity for t in self.traces for e in t.events}

    def variants(self) -> Counter:
        """Distinct activity sequences with their frequencies."""
        return Counter(t.activities for t in self.traces)

    def start_activities(self) -> set[str]:
        """Activities that begin at least one trace."""
        return {t.activities[0] for t in self.traces if t.events}

    def end_activities(self) -> set[str]:
        """Activities that end at least one trace."""
        return {t.activities[-1] for t in self.traces if t.events}

    # -- (de)serialization -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize the log (activities, timestamps, resources)."""
        return json.dumps(
            {
                "name": self.name,
                "traces": [
                    {
                        "case_id": t.case_id,
                        "events": [
                            {
                                "activity": e.activity,
                                "timestamp": e.timestamp,
                                "resource": e.resource,
                                "attributes": e.attributes,
                            }
                            for e in t.events
                        ],
                    }
                    for t in self.traces
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "EventLog":
        """Inverse of :meth:`to_json`."""
        raw = json.loads(payload)
        log = cls(name=raw.get("name", "log"))
        for t in raw["traces"]:
            log.add(
                Trace(
                    case_id=t["case_id"],
                    events=[
                        LogEvent(
                            activity=e["activity"],
                            timestamp=e.get("timestamp", 0.0),
                            resource=e.get("resource"),
                            attributes=e.get("attributes", {}),
                        )
                        for e in t["events"]
                    ],
                )
            )
        return log

    @classmethod
    def from_sequences(
        cls, sequences: Iterable[Iterable[str]], name: str = "log"
    ) -> "EventLog":
        """Build a log from bare activity sequences (tests, generators)."""
        log = cls(name=name)
        for idx, sequence in enumerate(sequences):
            events = [LogEvent(activity=a, timestamp=float(k)) for k, a in enumerate(sequence)]
            log.add(Trace(case_id=f"case-{idx}", events=events))
        return log


def to_event_log(history, activity_event: str = EventTypes.NODE_COMPLETED) -> EventLog:
    """Convert engine history into an activity-trace event log.

    By default each completed *activity* node becomes one log event;
    routing nodes (gateways, silent events) are excluded via the
    ``is_activity`` flag the engine stamps on node events.
    """
    log = EventLog(name="engine-history")
    for instance_id in history.instances():
        events: list[LogEvent] = []
        for record in history.instance_events(instance_id):
            if record.type != activity_event:
                continue
            if not record.data.get("is_activity", True):
                continue
            events.append(
                LogEvent(
                    activity=record.data.get("node_id", "?"),
                    timestamp=record.timestamp,
                    resource=record.data.get("resource"),
                    attributes={
                        k: v
                        for k, v in record.data.items()
                        if k not in ("node_id", "resource", "is_activity")
                    },
                )
            )
        if events:
            log.add(Trace(case_id=instance_id, events=events))
    return log
