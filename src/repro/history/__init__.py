"""History and audit: the BPMS's flight recorder.

Every engine state change is appended to a
:class:`~repro.history.audit.HistoryService` as a typed event.  History
serves three consumers:

* **audit** — who did what, when, to which instance;
* **analytics** — cycle times, waiting times, bottlenecks
  (:mod:`repro.analytics`);
* **process mining** — event logs in activity-trace form
  (:func:`~repro.history.log.to_event_log`, consumed by
  :mod:`repro.mining`).
"""

from repro.history.audit import HistoryService
from repro.history.events import EventTypes
from repro.history.log import EventLog, LogEvent, Trace, to_event_log
from repro.history.xes import XesParseError, parse_xes, to_xes_xml

__all__ = [
    "EventLog",
    "EventTypes",
    "HistoryService",
    "LogEvent",
    "Trace",
    "XesParseError",
    "parse_xes",
    "to_event_log",
    "to_xes_xml",
]
