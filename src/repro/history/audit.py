"""The history service: typed audit trail over an event store."""

from __future__ import annotations

from typing import Any

from repro.clock import Clock, WallClock
from repro.history.events import EventTypes
from repro.storage.eventstore import EventRecord, EventStore


class HistoryService:
    """Records and queries engine events.

    The ``stream`` of an event is the process-instance id; engine-level
    events (deployments) use the reserved stream ``"engine"``.
    """

    ENGINE_STREAM = "engine"

    def __init__(self, store: EventStore | None = None, clock: Clock | None = None) -> None:
        self.store = store if store is not None else EventStore()
        self.clock = clock if clock is not None else WallClock()

    # -- recording ------------------------------------------------------------

    def record(
        self,
        instance_id: str,
        event_type: str,
        **data: Any,
    ) -> EventRecord:
        """Append one event stamped with the service clock."""
        return self.store.append(
            stream=instance_id,
            event_type=event_type,
            timestamp=self.clock.now(),
            data=data,
        )

    # -- queries --------------------------------------------------------------

    def instance_events(self, instance_id: str) -> list[EventRecord]:
        """All events of one instance, in order."""
        return self.store.stream(instance_id)

    def instances(self) -> list[str]:
        """All instance ids that have history (excludes the engine stream)."""
        return [s for s in self.store.streams() if s != self.ENGINE_STREAM]

    def events_of_type(self, event_type: str) -> list[EventRecord]:
        """All events of one type across instances."""
        return self.store.of_type(event_type)

    def instance_duration(self, instance_id: str) -> float | None:
        """Wall time from start to completion/termination, if both exist."""
        events = self.instance_events(instance_id)
        started = next(
            (e for e in events if e.type == EventTypes.INSTANCE_STARTED), None
        )
        finished = next(
            (
                e
                for e in events
                if e.type
                in (
                    EventTypes.INSTANCE_COMPLETED,
                    EventTypes.INSTANCE_TERMINATED,
                    EventTypes.INSTANCE_FAILED,
                )
            ),
            None,
        )
        if started is None or finished is None:
            return None
        return finished.timestamp - started.timestamp

    def node_durations(self, instance_id: str) -> dict[str, list[float]]:
        """Per-node durations (entered → completed) for one instance.

        A node can run several times (loops); each run contributes one
        duration.  Pairing is FIFO per node id.
        """
        pending: dict[str, list[float]] = {}
        durations: dict[str, list[float]] = {}
        for event in self.instance_events(instance_id):
            node_id = event.data.get("node_id")
            if node_id is None:
                continue
            if event.type == EventTypes.NODE_ENTERED:
                pending.setdefault(node_id, []).append(event.timestamp)
            elif event.type == EventTypes.NODE_COMPLETED and pending.get(node_id):
                entered = pending[node_id].pop(0)
                durations.setdefault(node_id, []).append(event.timestamp - entered)
        return durations

    def completed_instances(self) -> list[str]:
        """Instance ids that reached normal completion."""
        return sorted(
            {
                e.stream
                for e in self.store.of_type(EventTypes.INSTANCE_COMPLETED)
            }
        )

    def close(self) -> None:
        """Close the backing store."""
        self.store.close()
