"""T4 — Process discovery and conformance.

Shape claims: (a) on complete noise-free logs of structured models, the
alpha algorithm rediscovers a sound net on which the log replays with
fitness 1.0; (b) injected deviations push token-replay fitness below 1 in
proportion to the deviation rate; (c) the heuristics miner keeps the true
dependency edges under noise that would corrupt alpha's relations.
"""

from repro.history.log import EventLog
from repro.mining.alpha import alpha_miner
from repro.mining.conformance import token_replay
from repro.mining.generators import add_noise, generate_log
from repro.mining.heuristics import heuristics_miner
from repro.model.builder import ProcessBuilder
from repro.petri.workflow_net import check_soundness

N_TRACES = 200


def m_sequence():
    builder = ProcessBuilder("m_seq").start()
    for name in ("register", "check", "decide", "archive"):
        builder.script_task(name, script="x = 1")
    return builder.end().build()


def m_choice():
    return (
        ProcessBuilder("m_choice")
        .start()
        .script_task("receive", script="x = 1")
        .exclusive_gateway("gw")
        .branch(condition="true")
        .script_task("approve", script="x = 2")
        .exclusive_gateway("merge")
        .branch_from("gw", default=True)
        .script_task("reject", script="x = 3")
        .connect_to("merge")
        .move_to("merge")
        .script_task("notify", script="x = 4")
        .end()
        .build()
    )


def m_parallel():
    return (
        ProcessBuilder("m_par")
        .start()
        .script_task("open", script="x = 1")
        .parallel_gateway("fork")
        .branch()
        .script_task("pick", script="x = 2")
        .parallel_gateway("sync")
        .branch_from("fork")
        .script_task("pack", script="x = 3")
        .connect_to("sync")
        .move_to("sync")
        .script_task("ship", script="x = 4")
        .end()
        .build()
    )


def m_nested():
    return (
        ProcessBuilder("m_nested")
        .start()
        .script_task("a", script="x = 1")
        .exclusive_gateway("gw")
        .branch(condition="true")
        .parallel_gateway("fork")
        .branch()
        .script_task("b", script="x = 2")
        .parallel_gateway("sync")
        .branch_from("fork")
        .script_task("c", script="x = 3")
        .connect_to("sync")
        .move_to("sync")
        .exclusive_gateway("merge")
        .branch_from("gw", default=True)
        .script_task("d", script="x = 4")
        .connect_to("merge")
        .move_to("merge")
        .script_task("e", script="x = 5")
        .end()
        .build()
    )


def m_two_choices():
    return (
        ProcessBuilder("m_two")
        .start()
        .script_task("intake", script="x = 1")
        .exclusive_gateway("g1")
        .branch(condition="true")
        .script_task("fast", script="x = 2")
        .exclusive_gateway("m1")
        .branch_from("g1", default=True)
        .script_task("slow", script="x = 3")
        .connect_to("m1")
        .move_to("m1")
        .exclusive_gateway("g2")
        .branch(condition="true")
        .script_task("bill", script="x = 4")
        .exclusive_gateway("m2")
        .branch_from("g2", default=True)
        .script_task("waive", script="x = 5")
        .connect_to("m2")
        .move_to("m2")
        .end()
        .build()
    )


def m_wide_parallel():
    builder = ProcessBuilder("m_wide").start().script_task("init", script="x = 1")
    builder.parallel_gateway("fork")
    for k, name in enumerate(("scan", "weigh", "label")):
        builder.branch_from("fork").script_task(name, script="x = 1")
        if k == 0:
            builder.parallel_gateway("sync")
        else:
            builder.connect_to("sync")
    return builder.move_to("sync").script_task("done", script="x = 1").end().build()


MODELS = [m_sequence, m_choice, m_parallel, m_nested, m_two_choices, m_wide_parallel]


def test_t4_rediscovery_and_conformance(benchmark, emit):
    emit(
        "",
        f"== T4: alpha discovery on {N_TRACES}-trace noise-free logs ==",
        f"{'model':<12} {'acts':>5} {'|P|':>4} {'sound':>6} "
        f"{'fitness':>8} {'fit-traces':>10}",
    )
    for factory in MODELS:
        model = factory()
        log = generate_log(model, n_traces=N_TRACES, seed=13)
        net = alpha_miner(log)
        soundness = check_soundness(net)
        replay = token_replay(net, log)
        emit(
            f"{model.key:<12} {len(log.activities):>5} {len(net.places):>4} "
            f"{str(soundness.sound):>6} {replay.fitness:>8.3f} "
            f"{replay.fitting_traces:>6}/{len(replay.traces)}"
        )
        assert soundness.sound, (model.key, soundness.problems)
        assert replay.fitness == 1.0, model.key
        assert replay.trace_fitness_ratio == 1.0, model.key

    benchmark.pedantic(
        lambda: alpha_miner(generate_log(m_nested(), n_traces=N_TRACES, seed=13)),
        rounds=3,
        iterations=1,
    )


def test_t4_deviation_detection(benchmark, emit):
    model = m_nested()
    log = generate_log(model, n_traces=N_TRACES, seed=13)
    net = alpha_miner(log)
    benchmark.pedantic(lambda: token_replay(net, log), rounds=3, iterations=1)
    emit("", "== T4b: fitness under injected deviations ==",
         f"{'noise rate':>10} {'fitness':>9} {'fitting traces':>15}")
    previous = 1.01
    for rate in (0.0, 0.2, 0.5, 1.0):
        noisy = add_noise(log, noise_rate=rate, seed=7)
        replay = token_replay(net, noisy)
        emit(f"{rate:>10.1f} {replay.fitness:>9.3f} "
             f"{replay.fitting_traces:>11}/{len(replay.traces)}")
        assert replay.fitness <= previous + 1e-9
        previous = replay.fitness
    assert previous < 1.0  # full noise definitely hurts


def test_t4_heuristics_noise_robustness(benchmark, emit):
    model = m_two_choices()
    clean = generate_log(model, n_traces=N_TRACES, seed=5)
    noisy = add_noise(clean, noise_rate=0.2, seed=6)
    benchmark.pedantic(
        lambda: heuristics_miner(noisy, dependency_threshold=0.7),
        rounds=3,
        iterations=1,
    )
    clean_graph = heuristics_miner(clean, dependency_threshold=0.7)
    noisy_graph = heuristics_miner(noisy, dependency_threshold=0.7)
    true_edges = set(clean_graph.dependencies)
    kept = true_edges & set(noisy_graph.dependencies)
    spurious = {
        (b, a) for (a, b) in true_edges if (b, a) in noisy_graph.dependencies
    }
    emit(
        "",
        f"T4c: heuristics miner under 20% noise (threshold 0.7): keeps "
        f"{len(kept)}/{len(true_edges)} true edges, admits {len(spurious)} "
        "reverse (noise) edges",
    )
    assert len(kept) >= 0.8 * len(true_edges)
    assert not spurious  # noise never promotes a reverse edge past threshold
