"""F3 — Cycle time vs arrival rate: the M/M/c hockey stick.

Shape claims: cycle time stays near pure service time while utilization is
low, then explodes as offered load approaches capacity (ρ → 1); doubling
the resource pool moves the knee right by ~2x.
"""

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.model.builder import ProcessBuilder
from repro.sim.distributions import Exponential
from repro.sim.kpi import compute_kpis
from repro.sim.runner import SimulationRunner
from repro.worklist.allocation import ShortestQueueAllocator

SERVICE_MEAN = 10.0
RATES = [0.05, 0.10, 0.15, 0.18, 0.19]  # cases per time unit
POOLS = [2, 4]
N_CASES = 1200  # long enough for the ρ≈0.95 queue to reach steady growth


def claims_model():
    return (
        ProcessBuilder("claims")
        .start()
        .user_task("assess", role="adjuster")
        .end()
        .build()
    )


def run_point(pool, rate, seed=17):
    engine = ProcessEngine(clock=VirtualClock(0), allocator=ShortestQueueAllocator())
    for k in range(pool):
        engine.organization.add(f"adjuster{k}", roles=["adjuster"])
    engine.deploy(claims_model())
    runner = SimulationRunner(
        engine,
        "claims",
        n_cases=N_CASES,
        arrival=Exponential(rate=rate),
        service_times={"assess": Exponential(rate=1 / SERVICE_MEAN)},
        seed=seed,
    )
    result = runner.run()
    return compute_kpis(engine.history, engine.worklist, result)


def test_f3_mmc_hockey_stick(benchmark, emit):
    # average 3 seeds per point: near saturation a single 400-case run has
    # enormous queue-length variance
    series = {}
    for pool in POOLS:
        series[pool] = []
        for rate in RATES:
            cycles, utils = [], []
            for seed in (17, 18, 19):
                report = run_point(pool, rate, seed=seed)
                cycles.append(report.mean_cycle_time)
                utils.append(report.mean_utilization)
            rho = rate * SERVICE_MEAN / pool
            series[pool].append(
                (rate, rho, sum(cycles) / 3, sum(utils) / 3)
            )

    benchmark.pedantic(lambda: run_point(2, 0.10), rounds=1, iterations=1)

    emit(
        "",
        f"== F3: cycle time vs arrival rate (M/M/c, service mean {SERVICE_MEAN}) ==",
        f"{'λ':>6} | {'ρ(c=2)':>7} {'cycle(c=2)':>11} | {'ρ(c=4)':>7} {'cycle(c=4)':>11}",
    )
    for k, rate in enumerate(RATES):
        _, rho2, cycle2, _ = series[2][k]
        _, rho4, cycle4, _ = series[4][k]
        emit(f"{rate:>6.2f} | {rho2:>7.2f} {cycle2:>11.1f} | {rho4:>7.2f} {cycle4:>11.1f}")

    # shape 1: c=2 cycle time grows monotonically and explodes near ρ=1
    cycles_c2 = [point[2] for point in series[2]]
    assert cycles_c2[-1] > 4 * cycles_c2[0], cycles_c2
    # shape 2: at the highest load, doubling capacity collapses the queue
    assert series[4][-1][2] < series[2][-1][2] / 2
    # shape 3: at the lowest load, both pools are near pure service time
    assert series[2][0][2] < 2.5 * SERVICE_MEAN
    assert series[4][0][2] < 2.0 * SERVICE_MEAN
