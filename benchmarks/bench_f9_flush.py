"""F9 — incremental flush & group commit on the engine hot path.

Shape claims: (a) the seed's whole-export autocommit (every API call
re-serializes *all* jobs/work items and fsyncs) is O(total state) per
completion and quadratic over a run; the incremental write-set makes
autocommit O(changed records); (b) cross-call group commit
(``engine.batch()`` / ``commit_interval``) amortizes the transaction +
fsync across many completions, buying >= 5x completions/sec over the
seed policy at 1000 work items.

Smoke mode (``F9_SMOKE=1``, used by CI) shrinks the workload so the
bench exercises every policy without meaningful wall time; at that
scale fsync-latency noise can dominate, so smoke runs check
correctness (every policy completes every item) but skip the
perf-shape assertions — those are full-run gates.
"""

import os
import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV
from repro.worklist.allocation import ShortestQueueAllocator

_SMOKE = os.environ.get("F9_SMOKE", "") not in ("", "0")
#: work items per run; the legacy whole-export policy gets a smaller run
#: (it is quadratic — completions/sec still compares fairly, favourably
#: to the legacy side since its rate only degrades as n grows)
N_ITEMS = int(os.environ.get("F9_ITEMS", "40" if _SMOKE else "1000"))
N_LEGACY = int(os.environ.get("F9_LEGACY_ITEMS", "40" if _SMOKE else "200"))


def approval_model():
    return (
        ProcessBuilder("approval")
        .start()
        .user_task("review", role="clerk")
        .script_task("after", script="done = true")
        .end()
        .build()
    )


def build_engine(directory, **kwargs):
    store = DurableKV(directory)
    engine = ProcessEngine(
        clock=VirtualClock(0),
        store=store,
        allocator=ShortestQueueAllocator(),
        **kwargs,
    )
    engine.organization.add("ana", roles=["clerk"])
    engine.deploy(approval_model())
    return engine, store


def populate(engine, n):
    """Start n instances (one work item each) under one group commit."""
    with engine.batch():
        for _ in range(n):
            engine.start_instance("approval")
    return [item.id for item in engine.worklist.items()]


def legacy_flush(engine):
    """The seed's ``_flush``: whole-collection exports, every call."""
    store = engine.store
    with store.transaction():
        for instance_id in sorted(engine._dirty):
            instance = engine._instances.get(instance_id)
            if instance is not None:
                store.put(f"instance/{instance_id}", instance.to_dict())
        store.put("engine/jobs", engine.scheduler.export())
        store.put("engine/workitems", engine.worklist.export_items())
        store.put("engine/message_waits", list(engine._message_waits))
        store.put("engine/meta", {"instance_seq": engine._instance_seq})
    engine._dirty.clear()


def run_policy(tmp_dir, policy, n):
    """Complete n work items under one commit policy; completions/sec."""
    interval = 10**9 if policy in ("legacy", "interval-64") else 1
    if policy == "interval-64":
        interval = 64
    engine, store = build_engine(
        os.path.join(tmp_dir, f"kv-{policy}"), commit_interval=interval
    )
    item_ids = populate(engine, n)
    # drain deltas left by setup so the timed loop measures steady state
    engine.flush()

    started = time.perf_counter()
    if policy == "batch":
        with engine.batch():
            for item_id in item_ids:
                engine.worklist.start(item_id)
                engine.complete_work_item(item_id)
    else:
        for item_id in item_ids:
            engine.worklist.start(item_id)
            engine.complete_work_item(item_id)
            if policy == "legacy":
                legacy_flush(engine)
        engine.flush()
    elapsed = time.perf_counter() - started

    completed = len(engine.instances(InstanceState.COMPLETED))
    assert completed == n, (policy, completed)
    store.close()
    return n / elapsed


def test_f9_flush_policies(benchmark, tmp_path, emit):
    rows = [
        ("legacy full-export", run_policy(str(tmp_path), "legacy", N_LEGACY), N_LEGACY),
        ("autocommit", run_policy(str(tmp_path), "autocommit", N_ITEMS), N_ITEMS),
        ("interval-64", run_policy(str(tmp_path), "interval-64", N_ITEMS), N_ITEMS),
        ("batch", run_policy(str(tmp_path), "batch", N_ITEMS), N_ITEMS),
    ]
    benchmark.pedantic(
        lambda: run_policy(str(tmp_path / "bench"), "batch", min(N_ITEMS, 100)),
        rounds=1,
        iterations=1,
    )
    emit(
        "",
        f"== F9: completions/sec vs commit policy (DurableKV, fsync on) ==",
        f"{'policy':>20} {'items':>6} {'compl/s':>10} {'speedup':>8}",
    )
    base = rows[0][1]
    for name, rate, n in rows:
        emit(f"{name:>20} {n:>6} {rate:>10.0f} {rate / base:>7.1f}x")
    if _SMOKE:
        return  # correctness asserted in run_policy; shapes need full scale
    legacy_rate, autocommit_rate = rows[0][1], rows[1][1]
    batch_rate = rows[3][1]
    # shape: incremental autocommit already beats whole-export autocommit;
    # group commit buys >= 5x over the seed policy (the ISSUE 3 criterion)
    assert autocommit_rate > legacy_rate
    assert batch_rate >= 5 * legacy_rate, (batch_rate, legacy_rate)


def test_f9_store_size_does_not_degrade_flush(tmp_path, emit):
    """Per-completion cost must be ~flat in resident store size (the seed
    was linear: every flush re-serialized every record)."""
    import statistics

    rates = []
    for resident in ([50, 200] if _SMOKE else [100, 1000]):
        directory = str(tmp_path / f"resident-{resident}")
        engine, store = build_engine(directory, commit_interval=1)
        populate(engine, resident)
        engine.flush()
        # complete a fixed-size slice against the growing resident set;
        # use the per-completion *median* — each autocommit fsyncs, and a
        # single slow fsync would otherwise swamp a wall-clock total
        slice_ids = [item.id for item in engine.worklist.items()][:25]
        samples = []
        for item_id in slice_ids:
            engine.worklist.start(item_id)
            started = time.perf_counter()
            engine.complete_work_item(item_id)
            samples.append(time.perf_counter() - started)
        rates.append(1.0 / statistics.median(samples))
        store.close()
    emit(
        "",
        "== F9b: autocommit completions/sec vs resident store size ==",
        f"  small store: {rates[0]:.0f}/s   large store: {rates[1]:.0f}/s",
    )
    # flat-ish: a bigger store may not cost more than ~2.5x throughput
    if not _SMOKE:
        assert rates[1] > rates[0] / 2.5, rates
