"""F8 — Static analysis cost on large models.

Claim: the full lint pipeline (structural + data-flow + behavioural +
reference passes) analyzes a 200-node process in well under a second, so
deploy-time gating is affordable.  Data-flow is a linear-ish fixpoint;
the behavioural pass dominates only when parallelism widens the state
space, which the budget caps.
"""

import time

from repro.analysis import AnalysisContext, analyze
from repro.model.builder import ProcessBuilder

SIZES = [50, 100, 200]


def sequential_ladder(n_tasks: int, key: str = "ladder"):
    """n script tasks in sequence with an XOR diamond every 10 tasks."""
    builder = ProcessBuilder(key).start()
    builder.script_task("t0", script="acc = 0")
    for index in range(1, n_tasks):
        if index % 10 == 0:
            split, join = f"x{index}", f"j{index}"
            builder.exclusive_gateway(split)
            builder.branch(f"acc > {index}")
            builder.script_task(f"t{index}", script=f"acc = acc + {index}")
            builder.exclusive_gateway(join)
            builder.branch_from(split, default=True)
            builder.script_task(f"t{index}_alt", script="acc = acc + 1")
            builder.connect_to(join)
            builder.move_to(join)
        else:
            builder.script_task(f"t{index}", script=f"acc = acc + {index}")
    return builder.end().build()


def node_count(model):
    return len(model.nodes)


def test_f8_analysis_scales_to_200_nodes(benchmark, emit):
    context = AnalysisContext(
        services=frozenset({"svc"}), roles=frozenset({"clerk"})
    )
    rows = []
    for size in SIZES:
        model = sequential_ladder(size, key=f"ladder{size}")
        started = time.perf_counter()
        report = analyze(model, context=context)
        elapsed_ms = (time.perf_counter() - started) * 1000
        assert report.ok, [d.message for d in report.errors]
        rows.append((size, node_count(model), elapsed_ms))

    big = sequential_ladder(200, key="bench")
    assert node_count(big) >= 200
    result = benchmark.pedantic(
        lambda: analyze(big, context=context), rounds=5, iterations=1
    )
    assert result.ok

    emit(
        "",
        "== F8: full lint pipeline vs model size ==",
        f"{'tasks':>6} {'nodes':>6} {'analyze ms':>11}",
    )
    for size, nodes, elapsed_ms in rows:
        emit(f"{size:>6} {nodes:>6} {elapsed_ms:>11.2f}")

    # acceptance: a 200-node model analyzes in < 1 s
    assert rows[-1][2] < 1000, rows
