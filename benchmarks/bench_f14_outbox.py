"""F14 — transactional outbox: durable cross-shard messaging overhead.

PR 8 replaced the forwarder's in-memory deque (which lost claimed
messages on a crash between pop and publish) with a persisted outbox:
the claim joins the originating dispatch's group commit and the record
is deleted only after the target shard's delivery has flushed.  This
bench prices that durability on the F11 workload shape — durable
per-shard stores, >= 4 pinned client threads — but with every message
crossing shards (the outbox's subject, where F11 deliberately had
none):

(a) end-to-end cross-shard send->receive throughput with the outbox
    stays within 10% of the same cluster running the old volatile
    deque transport (reconstructed here, minus the loss bug) — two
    extra fsync'd writes per message (claim + delete) ride existing
    group commits instead of adding a cost tier;
(b) crash-recovery redelivery latency: with claimed-but-undrained
    records on disk, a cold rebuild + ``recover()`` redelivers them —
    reported as time-to-redelivery per message.

Noise discipline follows bench_f11: interleaved repeats compared by
best-of.  Smoke mode (``F14_SMOKE=1``, used by CI) shrinks the workload
and skips the overhead gate — that is a full-run assertion.
"""

import collections
import itertools
import os
import threading
import time

from repro.clock import VirtualClock
from repro.cluster import ShardedEngine, shard_of_key
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV

_SMOKE = os.environ.get("F14_SMOKE", "") not in ("", "0")
#: cross-shard messages sent per client thread per measured run
N_PER_THREAD = int(os.environ.get("F14_PER_THREAD", "4" if _SMOKE else "25"))
#: client threads (each pinned to one origin shard)
N_THREADS = int(os.environ.get("F14_THREADS", "4"))
#: interleaved best-of repeats
N_REPEATS = int(os.environ.get("F14_REPEATS", "2" if _SMOKE else "5"))
#: shards; messages travel thread's shard -> the next one
N_SHARDS = 4
#: claimed-but-undrained records for the recovery-latency probe
N_CRASHED = 2 if _SMOKE else 10


def waiter_model():
    return (
        ProcessBuilder("waiter")
        .start()
        .receive_task("rx", message_name="go", correlation_expression="key")
        .end()
        .build()
    )


def sender_model():
    return (
        ProcessBuilder("sender")
        .start()
        .send_task("tx", message_name="go", payload_expression="msg")
        .end()
        .build()
    )


class DequeCluster(ShardedEngine):
    """The seed's transport, for the baseline: claims go to a volatile
    in-process deque and are published with no persisted record — the
    crash-loss window this PR closed, reconstructed so the outbox pays
    for durability against the exact thing it replaced."""

    def __init__(self, **kwargs):
        self._mem = collections.deque()
        self._mem_seq = itertools.count(1)
        super().__init__(**kwargs)

    def _make_forwarder(self, index):
        shard = self.shards[index]
        bus = shard.bus

        def forward(message):
            expected = getattr(self._local, "expect", None)
            if expected == (message.name, message.correlation):
                self._local.expect = None
                return False
            bus.adjust_delivered(-1)
            self._mem.append(message)
            return True

        return forward

    def _drain_forwards(self):
        while self._mem:
            if not self._drain_lock.acquire(blocking=False):
                return
            try:
                while self._mem:
                    message = self._mem.popleft()  # lost if we die here
                    key = f"mem:{next(self._mem_seq)}"
                    target = self._probe_target(message.name, message.correlation)
                    self._route_publish(
                        message.name,
                        message.correlation,
                        dict(message.payload),
                        dedup_key=key,
                        target=target,
                    )
            finally:
                self._drain_lock.release()


def keys_for_shard(target, count, tag):
    """``count`` business keys owned by ``target`` of N_SHARDS."""
    out = []
    k = 0
    while len(out) < count:
        key = f"{tag}-{k}"
        if shard_of_key(key, N_SHARDS) == target:
            out.append(key)
        k += 1
    return out


def build(cluster_cls, tmp_dir, label):
    cluster = cluster_cls(
        shards=N_SHARDS,
        store_factory=lambda i: DurableKV(
            os.path.join(tmp_dir, label, f"shard-{i}")
        ),
        clock=VirtualClock(0),
        dispatch_log_retention=16 * N_PER_THREAD * N_THREADS,
    )
    cluster.deploy(waiter_model())
    cluster.deploy(sender_model())
    return cluster


def run_messaging(cluster_cls, tmp_dir, label):
    """Cross-shard send->receive rate: thread i sends from shard i%4 to
    waiters parked on shard (i+1)%4.  Waiters start outside the timer;
    the timer covers sends, forwards, and the settling drain."""
    cluster = build(cluster_cls, tmp_dir, label)
    plans = []
    waiters = []
    for i in range(N_THREADS):
        origin, target = i % N_SHARDS, (i + 1) % N_SHARDS
        origin_keys = keys_for_shard(origin, N_PER_THREAD, f"src{i}")
        target_keys = keys_for_shard(target, N_PER_THREAD, f"dst{i}")
        sends = []
        for n, (okey, tkey) in enumerate(zip(origin_keys, target_keys)):
            corr = f"c-{i}-{n}"
            waiters.append(
                cluster.start_instance("waiter", {"key": corr}, business_key=tkey)
            )
            sends.append((okey, corr))
        plans.append(sends)

    barrier = threading.Barrier(N_THREADS + 1)
    errors = []

    def client(sends):
        try:
            barrier.wait()
            for business_key, corr in sends:
                cluster.start_instance(
                    "sender",
                    {"msg": {"correlation": corr}},
                    business_key=business_key,
                )
        except Exception as exc:  # pragma: no cover - only on bugs
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(p,)) for p in plans]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    cluster._drain_forwards()  # settle records parked by lock contention
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = N_PER_THREAD * N_THREADS
    done = sum(
        1
        for w in waiters
        if cluster.instance(w.id).state is InstanceState.COMPLETED
    )
    assert done == total, (label, done, total)
    cluster.close()
    return total / elapsed


def run_recovery(tmp_dir):
    """Redelivery latency: claim N_CRASHED records with the drain held
    off, crash every store, then time rebuild + recover() until each
    waiter has its message."""
    cluster = build(ShardedEngine, tmp_dir, "crash")
    waiters = []
    with cluster._drain_lock:  # records persist; nobody drains
        for n, tkey in enumerate(keys_for_shard(1, N_CRASHED, "dst")):
            corr = f"r-{n}"
            waiters.append(
                cluster.start_instance("waiter", {"key": corr}, business_key=tkey)
            )
            cluster.start_instance(
                "sender",
                {"msg": {"correlation": corr}},
                business_key=keys_for_shard(0, 1, f"src{n}")[0],
            )
    pending = cluster.status()["pending_forwards"]
    assert pending == N_CRASHED, pending
    for shard in cluster.shards:
        shard.store.close()  # crash: no flush, no drain

    started = time.perf_counter()
    recovered = build(ShardedEngine, tmp_dir, "crash")
    counts = recovered.recover()
    elapsed = time.perf_counter() - started
    assert counts["outbox"] == N_CRASHED, counts
    for w in waiters:
        assert recovered.instance(w.id).state is InstanceState.COMPLETED
    assert recovered.status()["pending_forwards"] == 0
    recovered.close()
    return elapsed / N_CRASHED


def measure(tmp_dir):
    """Best-of interleaved repeats per transport (see module note)."""
    rates = {"outbox": [], "deque": []}
    for repeat in range(N_REPEATS):
        sub = os.path.join(tmp_dir, f"r{repeat}")
        rates["deque"].append(run_messaging(DequeCluster, sub, "deque"))
        rates["outbox"].append(run_messaging(ShardedEngine, sub, "outbox"))
    return {name: max(samples) for name, samples in rates.items()}


def test_f14_outbox_overhead(tmp_path, emit, bench_json):
    rates = measure(str(tmp_path))
    overhead = rates["deque"] / rates["outbox"] - 1
    recovery_ms = run_recovery(str(tmp_path)) * 1e3
    emit(
        "",
        "== F14: cross-shard messaging, outbox vs volatile deque "
        f"({N_THREADS} client threads, {N_SHARDS} shards, "
        "DurableKV/shard, best-of) ==",
        f"{'transport':>18} {'messages/s':>12}",
        f"{'volatile deque':>18} {rates['deque']:>12.1f}",
        f"{'outbox':>18} {rates['outbox']:>12.1f}",
        f"    outbox overhead            : {100 * overhead:+.1f}% "
        "(gate < +10%)",
        f"    crash redelivery latency   : {recovery_ms:.1f} ms/message "
        f"(rebuild + recover, {N_CRASHED} records)",
    )
    bench_json(
        "f14",
        {
            "config": {
                "threads": N_THREADS,
                "per_thread": N_PER_THREAD,
                "shards": N_SHARDS,
                "repeats": N_REPEATS,
                "crashed_records": N_CRASHED,
                "smoke": _SMOKE,
            },
            "messages_per_second": rates,
            "outbox_overhead": overhead,
            "recovery_ms_per_message": recovery_ms,
        },
    )
    if _SMOKE:
        return  # correctness asserted in the runners; the gate needs scale
    assert overhead < 0.10, f"outbox overhead {100 * overhead:+.1f}% >= 10%"
