"""F10 — command-pipeline dispatch overhead and concurrent throughput.

Shape claims: (a) the dispatch *mechanism* — serialization gate, composed
middleware indirection, idempotency check, per-type metrics, commit
policy — costs < 10% wall time over the seed's direct-call path (handler
body + ``_flush``) on an in-memory store, where middleware cost is not
hidden behind fsync.  The *durable command log* (per-command ``to_dict``,
``dispatch/<seq>`` store record, ``command.dispatched`` history event) is
new write work the seed simply did not do; its cost is measured and
recorded separately on both stores, with a sanity bound rather than the
mechanism gate.  (b) under group commit on a durable store, N client
threads hammering the single-writer gate sustain throughput comparable
to one thread (the gate serializes, it must not collapse).

Noise discipline: paths are timed in interleaved repeats and compared by
best-of (min) — the minimum approximates the true cost with the fewest
scheduler/fsync artifacts, and both sides are treated identically.

Smoke mode (``F10_SMOKE=1``, used by CI) shrinks the workload so the
bench exercises both paths without meaningful wall time; at that scale
per-call noise dominates, so smoke runs check correctness but skip the
perf-shape assertions — those are full-run gates.
"""

import os
import threading
import time

from repro.clock import VirtualClock
from repro.engine import commands as cmds
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV
from repro.worklist.allocation import ShortestQueueAllocator

_SMOKE = os.environ.get("F10_SMOKE", "") not in ("", "0")
#: instances started per measured repeat of the overhead comparison
N_STARTS = int(os.environ.get("F10_STARTS", "50" if _SMOKE else "400"))
#: interleaved best-of repeats; medians squeeze out scheduler noise
N_REPEATS = int(os.environ.get("F10_REPEATS", "3" if _SMOKE else "9"))
#: work items completed per thread count in the throughput matrix
N_ITEMS = int(os.environ.get("F10_ITEMS", "40" if _SMOKE else "600"))


def automated_model():
    return (
        ProcessBuilder("auto")
        .start()
        .script_task("work", script="doubled = n * 2")
        .end()
        .build()
    )


def approval_model():
    return (
        ProcessBuilder("approval")
        .start()
        .user_task("review", role="clerk")
        .end()
        .build()
    )


# -- (a) dispatch overhead vs the seed direct-call path ---------------------------

#: the pipeline with the command-log stage removed: what dispatch itself
#: costs (gate + indirection + dedup check + metrics + commit policy)
_MECHANISM_CHAIN = None


def _mechanism_chain():
    global _MECHANISM_CHAIN
    if _MECHANISM_CHAIN is None:
        from repro.engine.dispatch import (
            commit_middleware,
            idempotency_middleware,
            observability_middleware,
        )

        _MECHANISM_CHAIN = (
            idempotency_middleware,
            observability_middleware,
            commit_middleware,
        )
    return _MECHANISM_CHAIN


def fresh_engine(directory=None, chain=None):
    store = DurableKV(directory) if directory else None  # None -> MemoryKV
    engine = ProcessEngine(clock=VirtualClock(0), store=store)
    if chain is not None:
        from repro.engine.dispatch import Dispatcher

        engine._dispatcher = Dispatcher(
            engine,
            handlers=engine._command_handlers(),
            middleware=chain,
            lock=engine._dispatch_lock,
        )
    engine.deploy(automated_model())
    return engine, store


def time_direct(n, directory=None):
    """The seed's shape: handler body + ``_flush`` per call, no pipeline."""
    engine, store = fresh_engine(directory)
    started = time.perf_counter()
    for k in range(n):
        engine._handle_start_instance(
            cmds.StartInstance(key="auto", variables={"n": k})
        )
        engine._flush()
    elapsed = time.perf_counter() - started
    assert len(engine.instances(InstanceState.COMPLETED)) == n
    if store is not None:
        store.close()
    return elapsed


def time_dispatched(n, directory=None, chain=None):
    """The same work through ``engine.dispatch`` with the given chain."""
    engine, store = fresh_engine(directory, chain)
    started = time.perf_counter()
    for k in range(n):
        engine.start_instance("auto", {"n": k})
    elapsed = time.perf_counter() - started
    assert len(engine.instances(InstanceState.COMPLETED)) == n
    if store is not None:
        store.close()
    return elapsed


def measure(tmp_dir=None):
    """Best-of interleaved repeats for each path; see the noise note above."""
    times = {"direct": [], "mechanism": [], "full": []}
    for repeat in range(N_REPEATS):
        sub = (
            None
            if tmp_dir is None
            else os.path.join(tmp_dir, f"r{repeat}")
        )
        times["direct"].append(
            time_direct(N_STARTS, sub and os.path.join(sub, "direct"))
        )
        times["mechanism"].append(
            time_dispatched(
                N_STARTS,
                sub and os.path.join(sub, "mech"),
                chain=_mechanism_chain(),
            )
        )
        times["full"].append(
            time_dispatched(N_STARTS, sub and os.path.join(sub, "full"))
        )
    return {name: min(samples) for name, samples in times.items()}


def test_f10_dispatch_overhead(benchmark, tmp_path, emit):
    memory = measure()
    durable = measure(str(tmp_path))
    benchmark.pedantic(
        lambda: time_dispatched(min(N_STARTS, 100)), rounds=1, iterations=1
    )
    emit(
        "",
        "== F10: dispatch overhead vs seed direct-call path "
        "(start->completion, best-of) ==",
        f"{'path':>26} {'MemoryKV us':>12} {'DurableKV us':>13}",
    )
    for name, label in (
        ("direct", "direct (seed path)"),
        ("mechanism", "dispatch, no cmd log"),
        ("full", "dispatch + cmd log"),
    ):
        emit(
            f"{label:>26} {1e6 * memory[name] / N_STARTS:>12.1f} "
            f"{1e6 * durable[name] / N_STARTS:>13.1f}"
        )
    mech_ratio = memory["mechanism"] / memory["direct"]
    full_mem = memory["full"] / memory["direct"]
    full_dur = durable["full"] / durable["direct"]
    emit(
        f"    mechanism overhead : {100 * (mech_ratio - 1):+.1f}%  (gate < +10%)",
        f"    + durable cmd log  : {100 * (full_mem - 1):+.1f}% memory, "
        f"{100 * (full_dur - 1):+.1f}% durable  (new write work; sanity < +60%)",
    )
    if _SMOKE:
        return  # correctness asserted in the timers; shape needs full scale
    assert mech_ratio < 1.10, (
        f"dispatch mechanism overhead {100 * (mech_ratio - 1):+.1f}% >= 10%"
    )
    # the command log does real extra writes; bound it so a regression
    # (e.g. re-serializing the whole log per flush) cannot hide
    assert full_mem < 1.60, f"command log overhead {100 * (full_mem - 1):+.1f}%"
    assert full_dur < 1.60, f"command log overhead {100 * (full_dur - 1):+.1f}%"


# -- (b) multi-threaded client throughput under group commit ----------------------


def run_threads(tmp_dir, n_threads, n_items):
    """n_threads workers complete n_items items under interval-64 commit."""
    store = DurableKV(os.path.join(tmp_dir, f"kv-{n_threads}"))
    engine = ProcessEngine(
        clock=VirtualClock(0),
        store=store,
        allocator=ShortestQueueAllocator(),
        commit_interval=64,
        dispatch_log_retention=4 * n_items,
    )
    engine.organization.add("ana", roles=["clerk"])
    engine.deploy(approval_model())
    with engine.batch():
        for _ in range(n_items):
            engine.start_instance("approval")
    item_ids = [item.id for item in engine.worklist.items()]
    engine.flush()

    chunks = [item_ids[i::n_threads] for i in range(n_threads)]
    barrier = threading.Barrier(n_threads + 1)

    def worker(chunk):
        barrier.wait()
        for item_id in chunk:
            engine.start_work_item(item_id)
            engine.complete_work_item(item_id)

    threads = [
        threading.Thread(target=worker, args=(chunk,)) for chunk in chunks
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    engine.flush()
    elapsed = time.perf_counter() - started

    completed = len(engine.instances(InstanceState.COMPLETED))
    assert completed == n_items, (n_threads, completed)
    store.close()
    return n_items / elapsed


def test_f10_threaded_throughput(tmp_path, emit, bench_json):
    rows = [
        (n, run_threads(str(tmp_path), n, N_ITEMS)) for n in (1, 2, 4, 8)
    ]
    emit(
        "",
        "== F10b: completions/sec vs client threads "
        "(DurableKV, interval-64 group commit) ==",
        f"{'threads':>8} {'compl/s':>10} {'vs 1 thread':>12}",
    )
    base = rows[0][1]
    for n, rate in rows:
        emit(f"{n:>8} {rate:>10.0f} {rate / base:>11.2f}x")
    bench_json(
        "f10",
        {
            "completions_per_second_by_threads": {
                str(n): rate for n, rate in rows
            },
        },
    )
    if _SMOKE:
        return
    # the gate serializes: more clients must not collapse throughput
    worst = min(rate for _, rate in rows)
    assert worst > base / 2.5, rows
