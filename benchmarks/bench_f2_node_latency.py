"""F2 — Per-node-type overhead ranking.

Shape claim: automated nodes (script/service/XOR routing) cost tens of
microseconds each; AND blocks pay extra for token spawning and join
synchronization; user tasks dominate everything by several multiples
(work-item creation, allocation, lifecycle, history):

    {script, service, XOR} < AND ≪ user task.
"""

import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.model.builder import ProcessBuilder
from repro.worklist.allocation import ShortestQueueAllocator

REPEAT = 40  # nodes per instance
RUNS = 30  # instances per measurement


def _engine():
    engine = ProcessEngine(clock=VirtualClock(0), allocator=ShortestQueueAllocator())
    engine.organization.add("worker", roles=["staff"])
    engine.services.register("noop", lambda: None)
    return engine


def script_chain():
    builder = ProcessBuilder("scripts").start()
    for k in range(REPEAT):
        builder.script_task(f"s{k}", script="x = 1")
    return builder.end().build()


def service_chain():
    builder = ProcessBuilder("services").start()
    for k in range(REPEAT):
        builder.service_task(f"s{k}", service="noop")
    return builder.end().build()


def xor_chain():
    builder = ProcessBuilder("xors").start()
    for k in range(REPEAT):
        builder.exclusive_gateway(f"g{k}")
        builder.branch(condition="x > 0").script_task(f"a{k}", script="x = 1")
        builder.exclusive_gateway(f"m{k}")
        builder.branch_from(f"g{k}", default=True).script_task(
            f"b{k}", script="x = 2"
        ).connect_to(f"m{k}")
        builder.move_to(f"m{k}")
    return builder.end().build()


def and_chain():
    builder = ProcessBuilder("ands").start()
    for k in range(REPEAT):
        builder.parallel_gateway(f"f{k}")
        builder.branch().script_task(f"a{k}", script="x = 1")
        builder.parallel_gateway(f"j{k}")
        builder.branch_from(f"f{k}").script_task(f"b{k}", script="y = 1").connect_to(
            f"j{k}"
        )
        builder.move_to(f"j{k}")
    return builder.end().build()


def user_chain():
    # user tasks measured per-item: create + allocate + start + complete
    builder = ProcessBuilder("users").start()
    for k in range(REPEAT):
        builder.user_task(f"u{k}", role="staff")
    return builder.end().build()


def _measure_automated(model, key):
    engine = _engine()
    engine.deploy(model)
    started = time.perf_counter()
    for _ in range(RUNS):
        engine.start_instance(key, {"x": 1})
    elapsed = time.perf_counter() - started
    return elapsed / (RUNS * REPEAT) * 1e6  # microseconds per node


def _measure_user():
    engine = _engine()
    engine.deploy(user_chain())
    started = time.perf_counter()
    for _ in range(5):
        instance = engine.start_instance("users")
        while instance.state.name == "RUNNING":
            item = next(
                i for i in engine.worklist.queue_of("worker")
            )
            engine.worklist.start(item.id)
            engine.complete_work_item(item.id)
    elapsed = time.perf_counter() - started
    return elapsed / (5 * REPEAT) * 1e6


def test_f2_node_overhead_ranking(benchmark, emit):
    timings = {
        "script task": _measure_automated(script_chain(), "scripts"),
        "service task": _measure_automated(service_chain(), "services"),
        "XOR block": _measure_automated(xor_chain(), "xors"),
        "AND block": _measure_automated(and_chain(), "ands"),
        "user task": _measure_user(),
    }
    benchmark.pedantic(
        lambda: _measure_automated(script_chain(), "scripts"), rounds=1, iterations=1
    )

    emit("", "== F2: per-node overhead (µs/node, lower is better) ==")
    for name, micros in sorted(timings.items(), key=lambda kv: kv[1]):
        emit(f"  {name:<14} {micros:>10.1f} µs")

    # shape assertions (ranking, with slack for jitter)
    assert timings["script task"] < timings["user task"]
    assert timings["service task"] < timings["user task"]
    assert timings["XOR block"] < timings["user task"]
    # user tasks are the dominant cost by a wide margin
    cheapest = min(timings.values())
    assert timings["user task"] > 3 * cheapest


def test_f2_topology_query_cache(emit):
    """Delta from caching the definition's topology queries.

    ``outgoing()``/``boundary_events_of()`` run once per token move; the
    seed shape allocated a fresh list (adjacency) or scanned every node
    (boundary lookup) per call.  Both are now memoized immutable tuples
    — this pins the delta so a regression back to per-call allocation
    shows up as a number, not a vibe.
    """
    model = script_chain()
    node_ids = [f"s{k}" for k in range(REPEAT)]
    loops = 400

    def seed_shape():
        # what the queries cost before the cache: list alloc + full scan
        for node_id in node_ids:
            list(model._outgoing.get(node_id, ()))
            [
                n
                for n in model.nodes.values()
                if getattr(n, "attached_to", None) == node_id
            ]

    def cached():
        for node_id in node_ids:
            model.outgoing(node_id)
            model.boundary_events_of(node_id)

    cached()  # warm the caches; steady-state is what the engine sees
    best = {"seed shape": float("inf"), "cached": float("inf")}
    for _ in range(7):
        for name, fn in (("seed shape", seed_shape), ("cached", cached)):
            started = time.perf_counter()
            for _ in range(loops):
                fn()
            best[name] = min(best[name], time.perf_counter() - started)

    calls = loops * REPEAT
    speedup = best["seed shape"] / best["cached"]
    emit(
        "",
        "== F2b: topology query cost (outgoing + boundary lookup, ns/call"
        ", best-of) ==",
        f"  {'seed shape':<12} {1e9 * best['seed shape'] / calls:>8.0f} ns",
        f"  {'cached':<12} {1e9 * best['cached'] / calls:>8.0f} ns",
        f"  speedup      {speedup:>7.1f}x",
    )
    # the cache must beat per-call allocation + scan outright
    assert speedup > 1.0, speedup
