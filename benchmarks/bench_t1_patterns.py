"""T1 — Workflow-pattern support: BPMS engine vs rigid baseline.

Paper-era claim (shape): a BPMS realizes most of the classical control-flow
patterns; first-generation workflow systems only a handful.  Here every
'supported' cell is *demonstrated* by executing the pattern fragment on the
engine and checking its defining behaviour.

Expected shape: BPMS 16/20 (incl. the multi-instance extension covering
patterns 12 and 14), baseline 5/20 (each baseline-supported pattern also
BPMS-supported).
"""

from repro.patterns.catalog import PATTERNS, evaluate_all


def test_t1_pattern_support_matrix(benchmark, emit):
    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    emit(
        "",
        "== T1: control-flow pattern support ==",
        f"{'#':>3} {'pattern':<32} {'BPMS':>6} {'baseline':>9}  note",
    )
    for spec in PATTERNS:
        bpms = "yes" if results[spec.number] else "no"
        base = "yes" if spec.baseline_supported else "no"
        emit(f"{spec.number:>3} {spec.name:<32} {bpms:>6} {base:>9}  {spec.note}")
    bpms_total = sum(results.values())
    base_total = sum(1 for p in PATTERNS if p.baseline_supported)
    emit(f"{'':>3} {'TOTAL':<32} {bpms_total:>4}/20 {base_total:>7}/20")

    # shape assertions: the BPMS dominates the baseline by ~3x
    assert bpms_total == 16
    assert base_total == 5
    assert all(
        results[p.number] for p in PATTERNS if p.baseline_supported
    ), "baseline support must be a strict subset"
    # every verified pattern actually ran on the engine
    assert all(results[p.number] == p.supported for p in PATTERNS)
