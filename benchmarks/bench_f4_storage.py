"""F4 — WAL group commit and recovery cost.

Shape claims: (a) journal throughput (records/s) rises steeply with group-
commit batch size — each fsync is amortized over the batch — and flattens
once fsync cost is amortized away; (b) KV recovery time grows linearly
with journal length, and snapshots reset it to near zero.
"""

import os
import time

from repro.storage.journal import Journal
from repro.storage.kvstore import DurableKV

RECORD = b"x" * 128
BATCHES = [1, 4, 16, 64, 256]
N_RECORDS = 2048


def journal_throughput(tmp_dir: str, batch: int) -> float:
    path = os.path.join(tmp_dir, f"wal-{batch}.log")
    journal = Journal(path)
    started = time.perf_counter()
    written = 0
    while written < N_RECORDS:
        journal.append_many([RECORD] * batch, sync=True)
        written += batch
    elapsed = time.perf_counter() - started
    journal.close()
    return written / elapsed


def test_f4a_group_commit_throughput(benchmark, tmp_path, emit):
    rows = [(batch, journal_throughput(str(tmp_path), batch)) for batch in BATCHES]
    benchmark.pedantic(
        lambda: journal_throughput(str(tmp_path / "bench"), 16),
        rounds=1,
        iterations=1,
    )
    emit(
        "",
        f"== F4a: WAL throughput vs group-commit batch ({N_RECORDS} x "
        f"{len(RECORD)}B records, fsync per batch) ==",
        f"{'batch':>6} {'records/s':>12} {'speedup':>8}",
    )
    base = rows[0][1]
    for batch, rate in rows:
        emit(f"{batch:>6} {rate:>12.0f} {rate / base:>7.1f}x")
    # shape: batching buys at least 3x over single-record commits
    assert rows[-1][1] > 3 * base


def test_f4b_recovery_linear_in_log(benchmark, tmp_path, emit):
    sizes = [1_000, 5_000, 20_000]
    rows = []
    for n in sizes:
        directory = str(tmp_path / f"kv-{n}")
        store = DurableKV(directory, sync_writes=False)
        for k in range(n):
            store.put(f"key-{k % 500}", {"seq": k})
        store.close()
        started = time.perf_counter()
        reopened = DurableKV(directory)
        elapsed = (time.perf_counter() - started) * 1000
        assert reopened.replayed_batches == n
        reopened.close()
        rows.append((n, elapsed))

    benchmark.pedantic(
        lambda: DurableKV(str(tmp_path / "kv-1000")).close(), rounds=1, iterations=1
    )

    emit(
        "",
        "== F4b: recovery time vs journal length ==",
        f"{'batches':>8} {'recover ms':>11} {'ms/1k':>7}",
    )
    for n, ms in rows:
        emit(f"{n:>8} {ms:>11.1f} {ms / n * 1000:>7.2f}")
    # shape: linear-ish growth (20x records => >5x time, <80x time)
    ratio = rows[-1][1] / rows[0][1]
    assert 5 < ratio < 80, ratio


def test_f4c_snapshot_resets_recovery(benchmark, tmp_path, emit):
    directory = str(tmp_path / "kv-snap")
    store = DurableKV(directory, sync_writes=False)
    for k in range(10_000):
        store.put(f"key-{k % 500}", {"seq": k})
    before = store.journal_size
    store.snapshot()
    store.close()

    started = time.perf_counter()
    reopened = DurableKV(directory)
    elapsed = (time.perf_counter() - started) * 1000
    replayed = reopened.replayed_batches
    assert replayed == 0
    assert reopened.get("key-499") == {"seq": 9999}
    reopened.close()

    benchmark.pedantic(lambda: DurableKV(directory).close(), rounds=3, iterations=1)
    emit(
        "",
        f"F4c: snapshot compaction: journal {before} B -> 0 B; recovery "
        f"replayed {replayed} batches in {elapsed:.1f} ms",
    )
