"""F15 — CQRS read models: cluster queries flat in shard count.

Shape claims (full runs; ``F15_SMOKE=1`` shrinks sizes and skips gates):

(a) **flat queries** — with views enabled, a cross-shard per-state query
    over a fixed total instance population costs about the same at 8
    shards as at 1 (gate: <= 1.25x), because each shard serves its
    rank-ordered bucket from the materialized projection and the facade
    k-way merges — no per-shard full scan, no union re-sort;
(b) **cheap maintenance** — projection upkeep is write-behind (commits
    note dirty ids; records persist every ``views_flush_lag`` seqs inside
    a commit already being paid for), adding < 10% wall time to the F9
    flush benchmark's hot path: an autocommit ``worklist.start`` /
    ``complete_work_item`` loop on DurableKV with fsync on;
(c) **linear rebuild** — the offline ``rebuild_store_views`` replay
    scales linearly with store size (doubling the log less than triples
    the rebuild, amortization slack included).

Noise discipline: queries and rebuild use bench_f11's interleaved
best-of; the maintenance comparison (a ~10% wall delta on an fsync
path) uses chunk-interleaved trials with a joint-minimum paired
estimator — see ``measure_maintenance``.
"""

import gc
import os
import time

from repro.clock import VirtualClock
from repro.cluster import ShardedEngine
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV
from repro.views.rebuild import rebuild_store_views
from repro.worklist.allocation import ShortestQueueAllocator

_SMOKE = os.environ.get("F15_SMOKE", "") not in ("", "0")
#: total instances in the query population (constant across shard widths)
N_TOTAL = int(os.environ.get("F15_TOTAL", "64" if _SMOKE else "2000"))
#: query iterations per timed sample
N_QUERIES = int(os.environ.get("F15_QUERIES", "5" if _SMOKE else "40"))
#: work items completed per maintenance-overhead run (the F9 loop shape)
N_FLUSHES = int(os.environ.get("F15_FLUSHES", "40" if _SMOKE else "600"))
#: interleaved best-of repeats
N_REPEATS = int(os.environ.get("F15_REPEATS", "2" if _SMOKE else "4"))
#: maintenance is a ~10% wall-time comparison on a noisy fsync path, so
#: it gets more interleaved repeats than the query/rebuild sections
N_MAINT_REPEATS = int(os.environ.get("F15_MAINT_REPEATS", "2" if _SMOKE else "12"))
#: completions per timed maintenance chunk (see ``measure_maintenance``)
MAINT_CHUNK = int(os.environ.get("F15_MAINT_CHUNK", "20" if _SMOKE else "10"))
SHARD_WIDTHS = (1, 2, 4, 8)


def approval_model():
    return (
        ProcessBuilder("approval")
        .start()
        .user_task("review", role="clerk")
        .script_task("after", script="done = true")
        .end()
        .build()
    )


def auto_model():
    return (
        ProcessBuilder("auto")
        .start()
        .script_task("work", script="doubled = n * 2")
        .end()
        .build()
    )


# -- (a) query latency vs shard width -----------------------------------------


def build_cluster(shards, views):
    cluster = ShardedEngine(
        shards=shards,
        clock=VirtualClock(0),
        allocator=ShortestQueueAllocator(),
        views=views,
    )
    cluster.organization.add("ana", roles=["clerk"])
    cluster.deploy(approval_model())
    for _ in range(N_TOTAL):
        cluster.start_instance("approval")  # keyless: round-robin spread
    return cluster


def time_queries(cluster):
    """Seconds per query round (the gated ``instances(state=)`` /
    ``find_instances`` cross-shard reads).

    One untimed round first: the flat-latency claim is about the
    steady-state dashboard query over a quiescent cluster, which the
    facade serves from its pre-merged per-state cache.  The first query
    after a write burst pays the k-way merge that fills that cache —
    real, but a per-commit-burst cost, not a per-query one.
    """
    warm = cluster.instances(InstanceState.RUNNING)
    assert len(warm) == N_TOTAL
    warm = cluster.find_instances(state=InstanceState.RUNNING)
    assert len(warm) == N_TOTAL
    started = time.perf_counter()
    for _ in range(N_QUERIES):
        running = cluster.instances(InstanceState.RUNNING)
        assert len(running) == N_TOTAL
        found = cluster.find_instances(state=InstanceState.RUNNING)
        assert len(found) == N_TOTAL
    return (time.perf_counter() - started) / N_QUERIES


def measure_queries():
    samples = {
        (shards, views): []
        for shards in SHARD_WIDTHS
        for views in (True, False)
    }
    for _ in range(N_REPEATS):
        for shards in SHARD_WIDTHS:
            for views in (True, False):
                cluster = build_cluster(shards, views)
                samples[(shards, views)].append(time_queries(cluster))
                cluster.close()
    return {key: min(values) for key, values in samples.items()}


# -- (b) maintenance overhead on the durable flush path -----------------------


def build_flush_engine(tmp_dir, views, label):
    """An engine primed for the F9 autocommit hot path: ``N_FLUSHES``
    started instances (populated under one untimed group commit), each
    holding one open work item."""
    store = DurableKV(os.path.join(tmp_dir, label))
    engine = ProcessEngine(
        clock=VirtualClock(0),
        store=store,
        views=views,
        allocator=ShortestQueueAllocator(),
    )
    engine.organization.add("ana", roles=["clerk"])
    engine.deploy(approval_model())
    with engine.batch():
        for _ in range(N_FLUSHES):
            engine.start_instance("approval")
    item_ids = [item.id for item in engine.worklist.items()]
    engine.flush()
    return store, engine, item_ids


def _chunk_bounds():
    """Chunk slice boundaries; the last chunk absorbs any remainder."""
    n_chunks = max(1, N_FLUSHES // MAINT_CHUNK)
    bounds = [
        (c * MAINT_CHUNK, (c + 1) * MAINT_CHUNK) for c in range(n_chunks)
    ]
    bounds[-1] = (bounds[-1][0], N_FLUSHES)
    return bounds


def run_flush_trial(tmp_dir, trial):
    """One interleaved maintenance trial: per-chunk wall times per side.

    Both engines (views off / on) run the same loop — per item a
    ``worklist.start`` and a ``complete_work_item``, each an
    autocommitted fsynced flush — in alternating ``MAINT_CHUNK``-item
    slices, so ambient drift (CPU frequency, neighbour I/O) lands on
    both sides of every chunk slot.  The final forced flush is timed
    into each side's last chunk: the write-behind view dirt must drain
    inside the measured region (no deferred-cost flattery).
    """
    store_p, plain, ids_p = build_flush_engine(tmp_dir, False, f"p{trial}")
    store_v, views, ids_v = build_flush_engine(tmp_dir, True, f"v{trial}")
    plain_chunks, views_chunks = [], []
    for lo, hi in _chunk_bounds():
        for engine, item_ids, out in (
            (plain, ids_p, plain_chunks),
            (views, ids_v, views_chunks),
        ):
            started = time.perf_counter()
            for item_id in item_ids[lo:hi]:
                engine.worklist.start(item_id)
                engine.complete_work_item(item_id)
            out.append(time.perf_counter() - started)
    for engine, out in ((plain, plain_chunks), (views, views_chunks)):
        started = time.perf_counter()
        engine.flush()
        out[-1] += time.perf_counter() - started
    store_p.close()
    store_v.close()
    return plain_chunks, views_chunks


def measure_maintenance(tmp_dir):
    """Joint-minimum paired chunks across interleaved trials.

    The first trial is a discarded warm-up (page cache, CPU caches,
    branch predictors), and the section starts from a collected heap.

    Whole-run best-of is too coarse here: wall noise on this path is
    one-sided but *phased* (drift episodes outlast a whole run), so two
    independently-taken minimums can land in different phases and swing
    a ~10% comparison by several points either way.  Instead, each trial
    runs the two sides in alternating ``MAINT_CHUNK``-item slices, so a
    chunk slot's (plain, views) pair shares one machine phase; per slot
    the pair with the lowest *combined* wall time — the cleanest paired
    observation — is kept, and each side sums its kept halves.  Drift
    cancels inside every counted pair, while deterministic views cost
    (the periodic drains land in the same slots every trial) is fully
    retained."""
    gc.collect()
    all_plain, all_views = [], []
    for trial in range(N_MAINT_REPEATS + 1):
        sub = os.path.join(tmp_dir, f"m{trial}")
        plain_chunks, views_chunks = run_flush_trial(sub, trial)
        if trial == 0:
            continue  # warm-up
        all_plain.append(plain_chunks)
        all_views.append(views_chunks)
    trials = range(len(all_plain))
    plain = views = 0.0
    for c in range(len(all_plain[0])):
        best = min(trials, key=lambda t: all_plain[t][c] + all_views[t][c])
        plain += all_plain[best][c]
        views += all_views[best][c]
    return plain, views


# -- (c) rebuild time vs log length -------------------------------------------


def seed_store(path, instances):
    store = DurableKV(path)
    engine = ProcessEngine(clock=VirtualClock(0), store=store)
    engine.deploy(auto_model())
    for k in range(instances):
        engine.start_instance("auto", {"n": k})
    return store


def measure_rebuild(tmp_dir):
    times = {}
    for scale, count in (("1x", N_TOTAL), ("2x", 2 * N_TOTAL)):
        store = seed_store(os.path.join(tmp_dir, f"rb-{scale}"), count)
        best = None
        for _ in range(N_REPEATS):
            started = time.perf_counter()
            counts = rebuild_store_views(store)
            elapsed = time.perf_counter() - started
            assert counts["instances"] == count
            best = elapsed if best is None else min(best, elapsed)
        store.close()
        times[scale] = best
    return times


# -- the experiment -----------------------------------------------------------


def test_f15_read_model_shapes(tmp_path, emit, bench_json):
    # maintenance first: a ~10% wall comparison should not inherit the
    # heap the query section's sixteen clusters leave behind (the views
    # side allocates more per item, so allocator state cuts one-sided)
    plain_s, views_s = measure_maintenance(str(tmp_path))
    queries = measure_queries()
    rebuild = measure_rebuild(str(tmp_path))

    flat_ratio = queries[(8, True)] / queries[(1, True)]
    overhead = views_s / plain_s - 1
    rebuild_ratio = rebuild["2x"] / rebuild["1x"]

    emit(
        "",
        f"== F15: cross-shard query latency, {N_TOTAL} instances total "
        f"({N_QUERIES} rounds, best-of {N_REPEATS}) ==",
        f"{'shards':>7} {'views ms':>9} {'scatter ms':>11} {'speedup':>8}",
    )
    for shards in SHARD_WIDTHS:
        with_views = queries[(shards, True)]
        without = queries[(shards, False)]
        emit(
            f"{shards:>7} {with_views * 1e3:>9.2f} {without * 1e3:>11.2f} "
            f"{without / with_views:>7.2f}x"
        )
    emit(
        f"    8-shard / 1-shard (views)  : {flat_ratio:.2f}x (gate <= 1.25x)",
        f"    maintenance overhead       : {100 * overhead:+.1f}% over "
        f"{N_FLUSHES} durable completions, paired chunk-min of "
        f"{N_MAINT_REPEATS} interleaved trials (gate < +10%)",
        f"    rebuild 2x/1x store        : {rebuild_ratio:.2f}x "
        "(gate < 3x: linear in log length)",
    )
    bench_json(
        "f15",
        {
            "config": {
                "total_instances": N_TOTAL,
                "query_rounds": N_QUERIES,
                "flush_loop": N_FLUSHES,
                "repeats": N_REPEATS,
                "maintenance_repeats": N_MAINT_REPEATS,
                "maintenance_chunk": MAINT_CHUNK,
                "smoke": _SMOKE,
            },
            "query_seconds": {
                f"shards-{shards}": {
                    "views": queries[(shards, True)],
                    "scatter": queries[(shards, False)],
                }
                for shards in SHARD_WIDTHS
            },
            "flat_ratio_8_vs_1": flat_ratio,
            "maintenance": {
                "plain_seconds": plain_s,
                "views_seconds": views_s,
                "overhead": overhead,
            },
            "rebuild_seconds": rebuild,
            "rebuild_ratio_2x": rebuild_ratio,
        },
    )
    if _SMOKE:
        return  # perf-shape gates are full-run claims
    assert flat_ratio <= 1.25, flat_ratio
    assert overhead < 0.10, overhead
    assert rebuild_ratio < 3.0, rebuild_ratio
