"""A1 — Ablations of the design choices called out in DESIGN.md.

a) Expression compile cache: guards are re-evaluated on every gateway
   decision; parsing each time would dominate. Measured: cached vs
   fresh-parse evaluation of a typical guard.
b) Durability tier: the same workload on MemoryKV, DurableKV without
   fsync (group commit deferred), and DurableKV with fsync-per-commit —
   the price of each durability level.
c) Interpretation tax: the BPMS token interpreter vs the rigid baseline's
   hard-coded step functions on an equivalent straight-through process —
   what T5's flexibility costs in raw speed.
"""

import time

from repro.baseline.engine import RigidEngine, RigidWorkflow, Step
from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.expr.evaluator import CompiledExpression, compile_expression
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV, MemoryKV

GUARD = "amount > 100 and status == 'open' and retries < 3"
ENV = {"amount": 250, "status": "open", "retries": 1}
N_EVALS = 5_000


def test_a1a_expression_cache(benchmark, emit):
    started = time.perf_counter()
    expr = compile_expression(GUARD)
    for _ in range(N_EVALS):
        expr.evaluate_bool(ENV)
    cached = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(N_EVALS):
        CompiledExpression(GUARD).evaluate_bool(ENV)  # parse every time
    fresh = time.perf_counter() - started

    benchmark.pedantic(
        lambda: compile_expression(GUARD).evaluate_bool(ENV),
        rounds=100,
        iterations=10,
    )
    emit(
        "",
        f"== A1a: guard evaluation x{N_EVALS} ==",
        f"  cached compile : {cached * 1e6 / N_EVALS:>7.1f} µs/eval",
        f"  fresh parse    : {fresh * 1e6 / N_EVALS:>7.1f} µs/eval "
        f"({fresh / cached:.1f}x slower)",
    )
    assert fresh > 2 * cached


def _run_instances(store, n=100):
    engine = ProcessEngine(clock=VirtualClock(0), store=store)
    model = (
        ProcessBuilder("p")
        .start()
        .script_task("a", script="x = 1")
        .script_task("b", script="y = 2")
        .end()
        .build()
    )
    engine.deploy(model)
    started = time.perf_counter()
    for _ in range(n):
        engine.start_instance("p")
    return n / (time.perf_counter() - started)


def test_a1b_durability_tiers(benchmark, tmp_path, emit):
    _run_instances(MemoryKV())  # warm up interpreter, caches, code paths
    memory_rate = _run_instances(MemoryKV())
    nosync = DurableKV(str(tmp_path / "nosync"), sync_writes=False)
    nosync_rate = _run_instances(nosync)
    nosync.close()
    synced = DurableKV(str(tmp_path / "sync"), sync_writes=True)
    synced_rate = _run_instances(synced, n=50)
    synced.close()

    benchmark.pedantic(lambda: _run_instances(MemoryKV(), n=20), rounds=1, iterations=1)
    emit(
        "",
        "== A1b: durability tiers (instances/s, 2-task process) ==",
        f"  volatile (MemoryKV)        : {memory_rate:>9.0f}",
        f"  journal, deferred fsync    : {nosync_rate:>9.0f} "
        f"({memory_rate / nosync_rate:.1f}x slower)",
        f"  journal, fsync per commit  : {synced_rate:>9.0f} "
        f"({memory_rate / synced_rate:.1f}x slower)",
    )
    # shape: each durability level costs throughput; fsync dominates
    assert memory_rate > nosync_rate > synced_rate


def test_a1c_interpretation_tax(benchmark, emit):
    n = 300

    # BPMS: interpreted 5-task model
    engine = ProcessEngine(clock=VirtualClock(0))
    builder = ProcessBuilder("interp").start()
    for k in range(5):
        builder.script_task(f"t{k}", script=f"v{k} = {k}")
    engine.deploy(builder.end().build())
    started = time.perf_counter()
    for _ in range(n):
        engine.start_instance("interp")
    bpms_rate = n / (time.perf_counter() - started)

    # baseline: the same logic as hard-coded steps
    rigid = RigidEngine()
    workflow = RigidWorkflow("hard")
    for k in range(5):
        workflow.add_step(
            Step(
                f"t{k}",
                action=(lambda k: lambda s: s.__setitem__(f"v{k}", k))(k),
                next_step=f"t{k + 1}" if k < 4 else None,
            )
        )
    rigid.deploy(workflow)
    started = time.perf_counter()
    for _ in range(n):
        rigid.start_case("hard")
    rigid_rate = n / (time.perf_counter() - started)

    benchmark.pedantic(lambda: rigid.start_case("hard"), rounds=50, iterations=1)
    emit(
        "",
        "== A1c: interpretation tax (5-task straight-through, instances/s) ==",
        f"  rigid hard-coded steps : {rigid_rate:>9.0f}",
        f"  BPMS token interpreter : {bpms_rate:>9.0f} "
        f"({rigid_rate / bpms_rate:.1f}x slower — the price of T5's flexibility)",
    )
    # shape: the rigid system is faster, but the BPMS stays within ~100x
    assert rigid_rate > bpms_rate
    assert rigid_rate / bpms_rate < 100
