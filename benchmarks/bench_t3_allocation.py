"""T3 — Allocation strategies under skewed service times.

Shape claim: with heavy-tailed (lognormal) service times, load-aware
allocation (shortest queue) yields lower mean waiting time than load-blind
round-robin or random — a slow item clogs one queue, and load-blind
strategies keep feeding it.
"""

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.model.builder import ProcessBuilder
from repro.sim.distributions import Exponential, LogNormal
from repro.sim.kpi import compute_kpis
from repro.sim.runner import SimulationRunner
from repro.worklist.allocation import (
    RandomAllocator,
    RoundRobinAllocator,
    ShortestQueueAllocator,
)

N_CASES = 500
N_RESOURCES = 5


def single_task_model():
    return (
        ProcessBuilder("desk")
        .start()
        .user_task("handle", role="agent")
        .end()
        .build()
    )


def run_with(allocator, seed=31):
    engine = ProcessEngine(clock=VirtualClock(0), allocator=allocator)
    for k in range(N_RESOURCES):
        engine.organization.add(f"agent{k}", roles=["agent"])
    engine.deploy(single_task_model())
    runner = SimulationRunner(
        engine,
        "desk",
        n_cases=N_CASES,
        arrival=Exponential(rate=0.5),            # 1 case / 2 time units
        service_times={"handle": LogNormal(mu=1.7, sigma=1.0)},  # mean ≈ 9, heavy tail
        seed=seed,
    )
    result = runner.run()
    return compute_kpis(engine.history, engine.worklist, result)


def test_t3_allocation_strategies(benchmark, emit):
    strategies = {
        "round-robin": lambda: RoundRobinAllocator(),
        "random": lambda: RandomAllocator(seed=5),
        "shortest-queue": lambda: ShortestQueueAllocator(),
    }
    reports = {}
    for name, factory in strategies.items():
        # average over 3 seeds to damp stochastic noise
        waits, cycles = [], []
        for seed in (31, 32, 33):
            report = run_with(factory(), seed=seed)
            assert report.cases_completed == N_CASES
            waits.append(report.mean_waiting_time)
            cycles.append(report.mean_cycle_time)
        reports[name] = (sum(waits) / 3, sum(cycles) / 3)

    benchmark.pedantic(
        lambda: run_with(ShortestQueueAllocator(), seed=99), rounds=1, iterations=1
    )

    emit(
        "",
        f"== T3: allocation strategies ({N_CASES} items, {N_RESOURCES} agents, "
        "lognormal service, mean of 3 seeds) ==",
        f"{'strategy':<16} {'mean wait':>10} {'mean cycle':>11}",
    )
    for name, (wait, cycle) in sorted(reports.items(), key=lambda kv: kv[1][0]):
        emit(f"{name:<16} {wait:>10.2f} {cycle:>11.2f}")

    # shape: shortest-queue strictly beats both load-blind strategies
    sq = reports["shortest-queue"][0]
    assert sq < reports["round-robin"][0]
    assert sq < reports["random"][0]
