"""Shared benchmark fixtures.

``emit`` prints experiment tables through pytest's output capture, so the
rows appear in ``pytest benchmarks/ --benchmark-only`` output (and in
``bench_output.txt``) alongside pytest-benchmark's timing table.
"""

import pytest


@pytest.fixture
def emit(capsys):
    def _emit(*lines):
        with capsys.disabled():
            for line in lines:
                print(line, flush=True)

    return _emit
