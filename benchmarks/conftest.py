"""Shared benchmark fixtures.

``emit`` prints experiment tables through pytest's output capture, so the
rows appear in ``pytest benchmarks/ --benchmark-only`` output (and in
``bench_output.txt``) alongside pytest-benchmark's timing table.

``bench_json`` writes machine-readable ``BENCH_<tag>.json`` result files
(CI uploads them as artifacts so run-over-run numbers are diffable).
The target directory defaults to the working directory and is overridden
with ``BENCH_JSON_DIR``.
"""

import json
import os

import pytest


@pytest.fixture
def emit(capsys):
    def _emit(*lines):
        with capsys.disabled():
            for line in lines:
                print(line, flush=True)

    return _emit


@pytest.fixture
def bench_json():
    def _write(tag, payload):
        directory = os.environ.get("BENCH_JSON_DIR", ".")
        path = os.path.join(directory, f"BENCH_{tag}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _write
