"""T5 — Process change with in-flight work: BPMS migration vs rigid restart.

Shape claim: when the process changes (v1 → v2 adds a fraud-check step),
the BPMS hot-deploys v2 and *migrates* the in-flight instances, which then
finish on the new path; the rigid baseline must abort all in-flight cases
(or drain, delaying the change indefinitely).
"""

from repro.baseline.engine import (
    RigidCaseState,
    RigidEngine,
    RigidWorkflow,
    Step,
    WorkflowChangeError,
)
from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.worklist.allocation import ShortestQueueAllocator

N_IN_FLIGHT = 100


def bpms_v1():
    return (
        ProcessBuilder("claim")
        .start()
        .user_task("assess", role="clerk")
        .script_task("settle", script="settled = true")
        .end()
        .build()
    )


def bpms_v2():
    return (
        ProcessBuilder("claim")
        .start()
        .user_task("assess", role="clerk")
        .script_task("fraud_check", script="fraud_checked = true")
        .script_task("settle", script="settled = true")
        .end()
        .build()
    )


def rigid_v1():
    workflow = RigidWorkflow("claim")
    workflow.add_step(Step("assess", manual=True, next_step="settle"))
    workflow.add_step(
        Step("settle", action=lambda s: s.update(settled=True), next_step=None)
    )
    return workflow


def rigid_v2():
    workflow = RigidWorkflow("claim")
    workflow.add_step(Step("assess", manual=True, next_step="fraud_check"))
    workflow.add_step(
        Step("fraud_check", action=lambda s: s.update(fraud_checked=True),
             next_step="settle")
    )
    workflow.add_step(
        Step("settle", action=lambda s: s.update(settled=True), next_step=None)
    )
    return workflow


def run_bpms_scenario():
    engine = ProcessEngine(clock=VirtualClock(0), allocator=ShortestQueueAllocator())
    engine.organization.add("clerk1", roles=["clerk"])
    engine.deploy(bpms_v1())
    instances = [engine.start_instance("claim") for _ in range(N_IN_FLIGHT)]
    engine.deploy(bpms_v2())
    migrated = 0
    for instance in instances:
        engine.migrate_instance(instance.id, target_version=2)
        migrated += 1
    # the pending human work continues seamlessly on v2
    for item in list(engine.worklist.items()):
        engine.worklist.start(item.id)
        engine.complete_work_item(item.id)
    survived = sum(
        1
        for i in instances
        if i.state is InstanceState.COMPLETED and i.variables.get("fraud_checked")
    )
    return migrated, survived


def run_rigid_scenario():
    engine = RigidEngine()
    engine.deploy(rigid_v1())
    cases = [engine.start_case("claim") for _ in range(N_IN_FLIGHT)]
    refused = False
    try:
        engine.redeploy(rigid_v2())
    except WorkflowChangeError:
        refused = True
    aborted = engine.redeploy(rigid_v2(), force=True)
    survivors = sum(1 for c in cases if c.state is RigidCaseState.COMPLETED)
    return refused, len(aborted), survivors


def test_t5_flexibility(benchmark, emit):
    migrated, survived = benchmark.pedantic(
        run_bpms_scenario, rounds=1, iterations=1
    )
    refused, aborted, rigid_survivors = run_rigid_scenario()

    emit(
        "",
        f"== T5: process change with {N_IN_FLIGHT} in-flight instances ==",
        f"{'system':<18} {'change applied':>15} {'in-flight fate':>28} "
        f"{'finish on v2':>13}",
        f"{'BPMS (migrate)':<18} {'hot deploy':>15} "
        f"{f'{migrated} migrated, 0 lost':>28} {survived:>13}",
        f"{'rigid (restart)':<18} {'refused first':>15} "
        f"{f'{aborted} aborted (forced)':>28} {rigid_survivors:>13}",
    )

    # shape assertions
    assert migrated == N_IN_FLIGHT
    assert survived == N_IN_FLIGHT       # all finish, all took the new path
    assert refused                        # rigid system refuses live change
    assert aborted == N_IN_FLIGHT         # forcing it kills all in-flight work
    assert rigid_survivors == 0
