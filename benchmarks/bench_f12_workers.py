"""F12 — worker pool: non-blocking service execution.

Shape claims, on a slow-service workload (the service sleeps, releasing
the GIL — a stand-in for any external call) over a durable store:

(a) a single engine with a worker pool sustains >= 3x the throughput of
    the same engine invoking inline at pool width 4 — the enqueue
    returns in microseconds and the 2 ms waits overlap in the pool,
    where the synchronous path serializes them inside the dispatch;
(b) pool widths 1/2/4/8 show the laddering that proves the win is the
    competing consumers, not the enqueue path itself;
(c) the facade is cheap where it doesn't apply: on a fast no-I/O
    workload routed inline (``only_services`` excludes it), an engine
    with a pool attached stays within 5% of a plain engine — admission
    is one set lookup plus one locked length check.

Noise discipline follows bench_f10/f11: interleaved repeats compared by
best-of.  Smoke mode (``F12_SMOKE=1``, used by CI) shrinks the workload
and skips the perf-shape assertions — those are full-run gates.
"""

import os
import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.services.registry import ServiceRegistry
from repro.storage.kvstore import DurableKV
from repro.workers import WorkerPool

_SMOKE = os.environ.get("F12_SMOKE", "") not in ("", "0")
#: instances per measured slow-service run
N_SLOW = int(os.environ.get("F12_SLOW_N", "24" if _SMOKE else "160"))
#: instances per measured fast-path run
N_FAST = int(os.environ.get("F12_FAST_N", "60" if _SMOKE else "400"))
#: interleaved best-of repeats
N_REPEATS = int(os.environ.get("F12_REPEATS", "2" if _SMOKE else "5"))
#: service-call latency — the I/O being overlapped (seconds)
IO_SECONDS = float(os.environ.get("F12_IO_MS", "2.0")) / 1e3
#: pool widths for the laddering table
WIDTHS = (1, 2, 4, 8)


def slow_model():
    return (
        ProcessBuilder("slowjob")
        .start()
        .service_task("call", service="slow_call", output_variable="reply")
        .end()
        .build()
    )


def fast_model():
    return (
        ProcessBuilder("fastjob")
        .start()
        .service_task("call", service="fast_call", output_variable="reply")
        .end()
        .build()
    )


def services():
    registry = ServiceRegistry()

    def slow_call(**variables):
        time.sleep(IO_SECONDS)  # releases the GIL, like any real I/O wait
        return {"ok": True}

    registry.register("slow_call", slow_call)
    registry.register("fast_call", lambda **variables: {"ok": True})
    return registry


def build_engine(tmp_dir, label, pool=None):
    store = DurableKV(os.path.join(tmp_dir, label, "kv"))
    engine = ProcessEngine(
        clock=VirtualClock(0),
        store=store,
        services=services(),
        dispatch_log_retention=8 * max(N_SLOW, N_FAST),
    )
    if pool is not None:
        engine.attach_workers(pool)
    return engine, store


def run_slow_sync(tmp_dir, label):
    """Baseline: every service call inline, inside the dispatch."""
    engine, store = build_engine(tmp_dir, label)
    engine.deploy(slow_model())
    started = time.perf_counter()
    for k in range(N_SLOW):
        engine.start_instance("slowjob", {"n": k})
    elapsed = time.perf_counter() - started
    done = len(engine.instances(InstanceState.COMPLETED))
    assert done == N_SLOW, (label, done, N_SLOW)
    store.close()
    return N_SLOW / elapsed


def run_slow_pooled(tmp_dir, label, width):
    """Enqueue everything, then wait for the pool to drain it."""
    pool = WorkerPool(workers=width, queue_capacity=N_SLOW + 1)
    engine, store = build_engine(tmp_dir, label, pool=pool)
    engine.deploy(slow_model())
    started = time.perf_counter()
    for k in range(N_SLOW):
        engine.start_instance("slowjob", {"n": k})
    assert pool.wait_idle(timeout=120), label
    elapsed = time.perf_counter() - started
    done = len(engine.instances(InstanceState.COMPLETED))
    assert done == N_SLOW, (label, done, N_SLOW)
    # nothing was throttled to the inline path: the measurement is pure
    status = engine.workers_status()["slow_call"]
    assert status["enqueued"] == N_SLOW, (label, status)
    pool.close()
    store.close()
    return N_SLOW / elapsed


def run_fast(tmp_dir, label, with_pool):
    """Fast no-I/O workload; the pool (when present) excludes the
    service, so every start pays only the admission check."""
    pool = (
        WorkerPool(workers=2, only_services={"slow_call"}) if with_pool else None
    )
    engine, store = build_engine(tmp_dir, label, pool=pool)
    engine.deploy(fast_model())
    started = time.perf_counter()
    for k in range(N_FAST):
        engine.start_instance("fastjob", {"n": k})
    elapsed = time.perf_counter() - started
    done = len(engine.instances(InstanceState.COMPLETED))
    assert done == N_FAST, (label, done, N_FAST)
    if pool is not None:
        assert engine.workers_status() == {}  # nothing ever pooled
        pool.close()
    store.close()
    return N_FAST / elapsed


def measure(tmp_dir):
    """Best-of interleaved repeats per configuration (see module note)."""
    rates = {"sync": [], "fast-plain": [], "fast-pooled": []}
    for width in WIDTHS:
        rates[f"pool-{width}"] = []
    for repeat in range(N_REPEATS):
        sub = os.path.join(tmp_dir, f"r{repeat}")
        rates["sync"].append(run_slow_sync(sub, "sync"))
        for width in WIDTHS:
            rates[f"pool-{width}"].append(
                run_slow_pooled(sub, f"w{width}", width)
            )
        rates["fast-plain"].append(run_fast(sub, "fast-plain", with_pool=False))
        rates["fast-pooled"].append(run_fast(sub, "fast-pooled", with_pool=True))
    return {name: max(samples) for name, samples in rates.items()}


def test_f12_worker_pool_throughput(tmp_path, emit, bench_json):
    rates = measure(str(tmp_path))
    base = rates["sync"]
    overhead = rates["fast-plain"] / rates["fast-pooled"] - 1
    emit(
        "",
        "== F12: slow-service throughput vs pool width "
        f"({IO_SECONDS * 1e3:.0f}ms service, {N_SLOW} instances, "
        "DurableKV, best-of) ==",
        f"{'runtime':>18} {'instances/s':>12} {'vs sync':>9}",
        f"{'synchronous':>18} {base:>12.1f} {1.0:>8.2f}x",
    )
    for width in WIDTHS:
        rate = rates[f"pool-{width}"]
        emit(f"{f'pool x{width}':>18} {rate:>12.1f} {rate / base:>8.2f}x")
    emit(
        f"    pool-4 speedup             : "
        f"{rates['pool-4'] / base:.2f}x (gate >= 3x)",
        f"    fast-path facade overhead  : {100 * overhead:+.1f}% "
        "(gate < +5%)",
    )
    bench_json(
        "f12",
        {
            "config": {
                "slow_instances": N_SLOW,
                "fast_instances": N_FAST,
                "repeats": N_REPEATS,
                "io_ms": IO_SECONDS * 1e3,
                "widths": list(WIDTHS),
                "smoke": _SMOKE,
            },
            "instances_per_second": rates,
            "speedup_pool_4": rates["pool-4"] / base,
            "fast_path_overhead": overhead,
        },
    )
    if _SMOKE:
        return  # correctness asserted in the runners; shape needs full scale
    assert rates["pool-4"] >= 3 * base, (
        f"pool-4 speedup {rates['pool-4'] / base:.2f}x < 3x"
    )
    # attaching a pool must not tax workloads it never touches
    assert overhead < 0.05, f"fast-path overhead {100 * overhead:+.1f}% >= 5%"
