"""F1 — Engine throughput vs concurrent instance count.

Shape claim: straight-through throughput (instances/second over a 10-task
automated process) stays roughly flat as the instance count grows — the
interpreter has no super-linear bookkeeping — until Python-level costs
dominate.
"""

import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.model.builder import ProcessBuilder

COUNTS = [1, 10, 100, 1000]


def ten_task_model():
    builder = ProcessBuilder("straight").start()
    for k in range(10):
        builder.script_task(f"t{k}", script=f"v{k} = {k}")
    return builder.end().build()


def run_batch(n):
    engine = ProcessEngine(clock=VirtualClock(0))
    engine.deploy(ten_task_model())
    for _ in range(n):
        engine.start_instance("straight")
    return engine


def test_f1_throughput_series(benchmark, emit, bench_json):
    rows = []
    for n in COUNTS:
        started = time.perf_counter()
        engine = run_batch(n)
        elapsed = time.perf_counter() - started
        from repro.engine.instance import InstanceState

        completed = len(engine.instances(InstanceState.COMPLETED))
        assert completed == n
        rows.append((n, elapsed, n / elapsed))

    benchmark.pedantic(lambda: run_batch(100), rounds=3, iterations=1)

    emit(
        "",
        "== F1: straight-through throughput (10 script tasks/instance) ==",
        f"{'instances':>10} {'seconds':>9} {'instances/s':>12} {'tasks/s':>10}",
    )
    for n, secs, rate in rows:
        emit(f"{n:>10} {secs:>9.3f} {rate:>12.1f} {rate * 10:>10.0f}")

    bench_json(
        "f1",
        {
            "instances_per_second": {
                str(n): rate for n, _, rate in rows
            },
        },
    )

    # shape: throughput at 1000 instances within ~3x of throughput at 10
    rate_10 = rows[1][2]
    rate_1000 = rows[3][2]
    assert rate_1000 > rate_10 / 3, (rate_10, rate_1000)
