"""F5 — State-space explosion vs structural analysis.

Shape claims: (a) the reachability graph of a k-way parallel block has
2^k + 2 markings — exponential in k — and construction time follows; (b)
place-invariant analysis of the same nets is polynomial and stays in the
milliseconds, demonstrating why structural techniques matter.
"""

import time

from repro.petri import builders
from repro.petri.invariants import p_invariants, place_invariant_cover
from repro.petri.marking import Marking
from repro.petri.reachability import build_reachability_graph

KS = [2, 4, 6, 8, 10]


def test_f5_exponential_vs_polynomial(benchmark, emit):
    rows = []
    for k in KS:
        net = builders.parallel_net(k)
        started = time.perf_counter()
        graph = build_reachability_graph(net, Marking({"i": 1}), max_states=2_000_000)
        reach_ms = (time.perf_counter() - started) * 1000
        assert graph.size == 2 + 2**k

        started = time.perf_counter()
        invariants = p_invariants(net)
        covered, _ = place_invariant_cover(net)
        invariant_ms = (time.perf_counter() - started) * 1000
        assert covered  # structural boundedness, no enumeration needed
        rows.append((k, graph.size, reach_ms, len(invariants), invariant_ms))

    benchmark.pedantic(
        lambda: build_reachability_graph(
            builders.parallel_net(8), Marking({"i": 1}), max_states=2_000_000
        ),
        rounds=3,
        iterations=1,
    )

    emit(
        "",
        "== F5: k-way parallel block — enumeration vs structure ==",
        f"{'k':>3} {'markings':>9} {'reach ms':>9} {'#invariants':>12} {'invariant ms':>13}",
    )
    for k, size, reach_ms, n_inv, inv_ms in rows:
        emit(f"{k:>3} {size:>9} {reach_ms:>9.2f} {n_inv:>12} {inv_ms:>13.2f}")

    # shape: markings grow exponentially ...
    assert rows[-1][1] == 2 + 2**10
    # ... enumeration time grows much faster than invariant time
    reach_growth = rows[-1][2] / max(rows[0][2], 1e-6)
    invariant_growth = rows[-1][4] / max(rows[0][4], 1e-6)
    assert reach_growth > 5 * invariant_growth, (reach_growth, invariant_growth)
