"""T6 — Service-task resilience under injected faults.

Shape claim: with transient fault rates up to ~50 %, retry-with-backoff
keeps instance success rates high where naive single-attempt invocation
degrades linearly with the fault rate; the circuit breaker additionally
suppresses pointless calls during a hard outage.
"""

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.model.elements import RetryPolicy
from repro.services.faults import FaultInjector

N_INSTANCES = 200
FAULT_RATES = [0.0, 0.1, 0.3, 0.5]


def model_with_retry(max_attempts):
    return (
        ProcessBuilder("call_out")
        .start()
        .service_task(
            "invoke",
            service="flaky",
            retry=RetryPolicy(max_attempts=max_attempts, initial_backoff=0.0),
        )
        .end()
        .build()
    )


def run_scenario(fault_rate, max_attempts, seed=77):
    engine = ProcessEngine(clock=VirtualClock(0))
    # isolate the retry variable: T6b measures the breaker separately
    # (a virtual clock never advances, so a tripped breaker would stay open)
    engine.invoker.use_breaker = False
    injector = FaultInjector(lambda: "ok", failure_rate=fault_rate, seed=seed)
    engine.services.register("flaky", injector)
    engine.deploy(model_with_retry(max_attempts))
    for _ in range(N_INSTANCES):
        engine.start_instance("call_out")
    succeeded = len(engine.instances(InstanceState.COMPLETED))
    return succeeded / N_INSTANCES, injector.calls


def test_t6_retry_vs_naive(benchmark, emit):
    rows = []
    for rate in FAULT_RATES:
        naive, naive_calls = run_scenario(rate, max_attempts=1)
        protected, protected_calls = run_scenario(rate, max_attempts=5)
        rows.append((rate, naive, protected, naive_calls, protected_calls))

    benchmark.pedantic(lambda: run_scenario(0.3, 5), rounds=1, iterations=1)

    emit(
        "",
        f"== T6: instance success rate under transient faults ({N_INSTANCES} "
        "instances) ==",
        f"{'fault rate':>10} {'naive':>8} {'retry(5)':>9} "
        f"{'calls naive':>12} {'calls retry':>12}",
    )
    for rate, naive, protected, nc, pc in rows:
        emit(f"{rate:>10.0%} {naive:>8.1%} {protected:>9.1%} {nc:>12} {pc:>12}")

    # shape: naive degrades roughly with the fault rate; retry stays high
    naive_50 = rows[-1][1]
    protected_50 = rows[-1][2]
    assert naive_50 < 0.65
    assert protected_50 > 0.9
    assert all(protected >= naive for _, naive, protected, _, _ in rows)


def test_t6_breaker_suppresses_calls_during_outage(benchmark, emit):
    def run(use_breaker):
        engine = ProcessEngine(clock=VirtualClock(0))
        engine.invoker.use_breaker = use_breaker
        engine.invoker.breaker_failure_threshold = 5
        engine.invoker.breaker_reset_timeout = 1e9  # hard outage, never resets
        injector = FaultInjector(lambda: "ok", failure_rate=1.0, seed=1)
        engine.services.register("flaky", injector)
        engine.deploy(model_with_retry(max_attempts=3))
        for _ in range(50):
            engine.start_instance("call_out")
        return injector.calls

    calls_unprotected = run(use_breaker=False)
    calls_protected = benchmark.pedantic(
        lambda: run(use_breaker=True), rounds=1, iterations=1
    )
    emit(
        "",
        f"T6b: downstream calls during a hard outage (50 instances x 3 "
        f"attempts): naive={calls_unprotected}, with breaker={calls_protected}",
    )
    # shape: the breaker absorbs almost all calls after tripping
    assert calls_unprotected == 150
    assert calls_protected <= 10
