"""F11 — sharded runtime: instance-partitioned parallel dispatch.

Shape claims, on an I/O-bound service-task workload (the service sleeps,
releasing the GIL — a stand-in for any external call) over durable
per-shard stores, driven by >= 4 client threads:

(a) a 4-shard :class:`~repro.cluster.ShardedEngine` sustains >= 2x the
    aggregate throughput of the same cluster at 1 shard — the per-shard
    dispatch locks let shards sleep/fsync concurrently where PR 4's
    single gate serialized every client behind one lock (F10b showed
    flat scaling: safe, not faster);
(b) the cluster facade itself is cheap: a 1-shard ShardedEngine stays
    within 5% of a plain ProcessEngine on the identical workload — the
    routing layer adds a hash + a counter per command, not a new cost
    tier.

Client threads are pinned to distinct shards via pre-picked business
keys (cross-shard traffic is bench_f11's denominator, not its subject),
which is also the deployment shape the router rewards: co-located keys
never pay cross-shard coordination.

Noise discipline follows bench_f10: interleaved repeats compared by
best-of.  Smoke mode (``F11_SMOKE=1``, used by CI) shrinks the workload
and skips the perf-shape assertions — those are full-run gates.
"""

import os
import threading
import time

from repro.clock import VirtualClock
from repro.cluster import ShardedEngine, shard_of_key
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.services.registry import ServiceRegistry
from repro.storage.kvstore import DurableKV

_SMOKE = os.environ.get("F11_SMOKE", "") not in ("", "0")
#: instances started per client thread per measured run
N_PER_THREAD = int(os.environ.get("F11_PER_THREAD", "6" if _SMOKE else "40"))
#: client threads (>= 4; each pins to one shard of the 4-shard cluster)
N_THREADS = int(os.environ.get("F11_THREADS", "4"))
#: interleaved best-of repeats
N_REPEATS = int(os.environ.get("F11_REPEATS", "2" if _SMOKE else "5"))
#: service-call latency — the I/O being parallelized (seconds)
IO_SECONDS = float(os.environ.get("F11_IO_MS", "2.0")) / 1e3


def io_model():
    return (
        ProcessBuilder("iojob")
        .start()
        .service_task("call", service="io_call", output_variable="reply")
        .end()
        .build()
    )


def io_services():
    registry = ServiceRegistry()

    def io_call(**variables):
        time.sleep(IO_SECONDS)  # releases the GIL, like any real I/O wait
        return {"ok": True}

    registry.register("io_call", io_call)
    return registry


def keys_by_shard(shards, per_thread, threads):
    """business keys per client thread, thread i pinned to shard i % shards."""
    pools = {s: [] for s in range(shards)}
    k = 0
    while any(len(pool) < per_thread * threads for pool in pools.values()):
        key = f"acct-{k}"
        pool = pools[shard_of_key(key, shards)]
        if len(pool) < per_thread * threads:
            pool.append(key)
        k += 1
    return [
        pools[i % shards][: per_thread] if shards > 1 else pools[0][i::threads]
        for i in range(threads)
    ]


def drive(start_instance, thread_keys):
    """All client threads start instances through one facade; wall time."""
    barrier = threading.Barrier(len(thread_keys) + 1)
    errors = []

    def client(keys):
        try:
            barrier.wait()
            for key in keys:
                start_instance("iojob", {"n": 1}, business_key=key)
        except Exception as exc:  # pragma: no cover - only on bugs
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(keys,)) for keys in thread_keys
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def run_sharded(tmp_dir, shards, label):
    cluster = ShardedEngine(
        shards=shards,
        store_factory=lambda i: DurableKV(
            os.path.join(tmp_dir, label, f"shard-{i}")
        ),
        clock=VirtualClock(0),
        services=io_services(),
        dispatch_log_retention=8 * N_PER_THREAD * N_THREADS,
    )
    cluster.deploy(io_model())
    thread_keys = keys_by_shard(shards, N_PER_THREAD, N_THREADS)
    elapsed = drive(cluster.start_instance, thread_keys)
    total = N_PER_THREAD * N_THREADS
    done = len(cluster.instances(InstanceState.COMPLETED))
    assert done == total, (label, done, total)
    cluster.close()
    return total / elapsed


def run_plain(tmp_dir, label):
    store = DurableKV(os.path.join(tmp_dir, label, "kv"))
    engine = ProcessEngine(
        clock=VirtualClock(0),
        store=store,
        services=io_services(),
        dispatch_log_retention=8 * N_PER_THREAD * N_THREADS,
    )
    engine.deploy(io_model())
    thread_keys = keys_by_shard(1, N_PER_THREAD, N_THREADS)

    def start(key, variables, business_key):
        engine.start_instance(key, variables, business_key=business_key)

    elapsed = drive(start, thread_keys)
    total = N_PER_THREAD * N_THREADS
    done = len(engine.instances(InstanceState.COMPLETED))
    assert done == total, (label, done, total)
    store.close()
    return total / elapsed


def measure(tmp_dir):
    """Best-of interleaved repeats per configuration (see module note)."""
    rates = {"engine": [], "sharded-1": [], "sharded-2": [], "sharded-4": []}
    for repeat in range(N_REPEATS):
        sub = os.path.join(tmp_dir, f"r{repeat}")
        rates["engine"].append(run_plain(sub, "engine"))
        rates["sharded-1"].append(run_sharded(sub, 1, "s1"))
        rates["sharded-2"].append(run_sharded(sub, 2, "s2"))
        rates["sharded-4"].append(run_sharded(sub, 4, "s4"))
    return {name: max(samples) for name, samples in rates.items()}


def test_f11_shard_scaling(tmp_path, emit, bench_json):
    rates = measure(str(tmp_path))
    base = rates["sharded-1"]
    overhead = rates["engine"] / rates["sharded-1"] - 1
    emit(
        "",
        "== F11: aggregate throughput vs shard count "
        f"({N_THREADS} client threads, {IO_SECONDS * 1e3:.0f}ms I/O service"
        ", DurableKV/shard, best-of) ==",
        f"{'runtime':>18} {'instances/s':>12} {'vs 1 shard':>11}",
    )
    for name, label in (
        ("engine", "plain engine"),
        ("sharded-1", "sharded x1"),
        ("sharded-2", "sharded x2"),
        ("sharded-4", "sharded x4"),
    ):
        emit(f"{label:>18} {rates[name]:>12.1f} {rates[name] / base:>10.2f}x")
    emit(
        f"    facade overhead at 1 shard : {100 * overhead:+.1f}% "
        "(gate < +5%)",
        f"    4-shard speedup            : "
        f"{rates['sharded-4'] / base:.2f}x (gate >= 2x)",
    )
    bench_json(
        "f11",
        {
            "config": {
                "threads": N_THREADS,
                "per_thread": N_PER_THREAD,
                "repeats": N_REPEATS,
                "io_ms": IO_SECONDS * 1e3,
                "smoke": _SMOKE,
            },
            "instances_per_second": rates,
            "speedup_4_shard": rates["sharded-4"] / base,
            "facade_overhead_1_shard": overhead,
        },
    )
    if _SMOKE:
        return  # correctness asserted in the runners; shape needs full scale
    assert rates["sharded-4"] >= 2 * base, (
        f"4-shard speedup {rates['sharded-4'] / base:.2f}x < 2x"
    )
    # facade overhead: 1-shard cluster vs plain engine on identical work
    assert overhead < 0.05, f"facade overhead {100 * overhead:+.1f}% >= 5%"
