"""T2 — WF-net soundness verification: verdicts and cost across a net family.

Shape claims: (a) structured nets of realistic size verify in milliseconds
(soundness checking is practical at deploy time); (b) each seeded defect
class is detected with the right diagnosis.
"""

import time

import pytest

from repro.petri import builders
from repro.petri.workflow_net import check_soundness

SIZES = [5, 10, 20, 40, 80]


def test_t2_sound_family_verdicts_and_times(benchmark, emit):
    rows = []
    for n in SIZES:
        net = builders.structured_net(n)
        started = time.perf_counter()
        report = check_soundness(net)
        elapsed = (time.perf_counter() - started) * 1000
        rows.append((n, len(net.places), len(net.transitions),
                     report.state_count, report.sound, elapsed))
        assert report.sound, (n, report.problems)

    benchmark.pedantic(
        lambda: check_soundness(builders.structured_net(40)), rounds=3, iterations=1
    )

    emit(
        "",
        "== T2: soundness verification of structured nets ==",
        f"{'tasks':>6} {'|P|':>5} {'|T|':>5} {'states':>8} {'verdict':>8} {'ms':>9}",
    )
    for n, p, t, states, sound, ms in rows:
        emit(f"{n:>6} {p:>5} {t:>5} {states:>8} "
             f"{'sound' if sound else 'UNSOUND':>8} {ms:>9.2f}")


@pytest.mark.parametrize(
    "family, expected_problem",
    [
        ("deadlocking", "option to complete"),
        ("improper", "proper completion"),
        ("dead_transition", "dead transitions"),
        ("unbounded", "unbounded"),
    ],
)
def test_t2_defect_detection(benchmark, emit, family, expected_problem):
    nets = {
        "deadlocking": builders.deadlocking_net,
        "improper": builders.improper_completion_net,
        "dead_transition": builders.dead_transition_net,
        "unbounded": builders.unbounded_net,
    }
    report = benchmark.pedantic(
        lambda: check_soundness(nets[family]()), rounds=1, iterations=1
    )
    assert not report.sound
    assert any(expected_problem in p for p in report.problems), report.problems
    emit(f"T2 defect {family:<16}: detected -> {report.problems[0]}")
