"""F7 — Observability overhead on the hot path.

Shape claim: the engine pays essentially nothing for the observability
layer when tracing is disabled (the metrics registry is always live, but
span creation short-circuits to shared no-op singletons), and under 10%
with full tracing into an in-memory exporter.

Methodology: the shared-machine noise floor here exceeds the effect being
measured (identical configs can differ by ±7% run to run), so each round
brackets one observed batch between two baseline batches and we assert on
the *minimum* paired ratio across rounds — the overhead with the least
noise in the pairing.  GC is collected before and disabled during each
timed region so one config's garbage never bills another's run.
"""

import gc
import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.model.builder import ProcessBuilder
from repro.obs import InMemorySpanExporter, Observability

N_INSTANCES = 300
ROUNDS = 10

DISABLED_BUDGET = 1.10  # disabled tracing: ~zero overhead (noise allowance)
ENABLED_BUDGET = 1.10  # full tracing: the ISSUE's <10% acceptance bound

# spans per instance on this model: 1 instance span + 12 node spans
# (start + 10 script tasks + end); the engine root span stays open
SPANS_PER_INSTANCE = 13


def ten_task_model():
    builder = ProcessBuilder("straight").start()
    for k in range(10):
        builder.script_task(f"t{k}", script=f"v{k} = {k}")
    return builder.end().build()


def run_batch(n, obs=None):
    engine = ProcessEngine(clock=VirtualClock(0), obs=obs)
    engine.deploy(ten_task_model())
    for _ in range(n):
        engine.start_instance("straight")
    return engine


def _timed(fn):
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - started
    gc.enable()
    return elapsed


def _paired_ratios(make_obs):
    """Per-round overhead ratios: observed run over the better of the two
    baseline runs bracketing it in time."""
    ratios = []
    for _ in range(ROUNDS):
        before = _timed(lambda: run_batch(N_INSTANCES))
        observed = _timed(lambda: run_batch(N_INSTANCES, obs=make_obs()))
        after = _timed(lambda: run_batch(N_INSTANCES))
        ratios.append(observed / min(before, after))
    return sorted(ratios)


def test_f7_obs_overhead(benchmark, emit):
    run_batch(50)  # warm up imports and code caches

    exporters = []

    def enabled_obs():
        exporter = InMemorySpanExporter()
        exporters.append(exporter)
        return Observability(enabled=True, exporters=[exporter])

    disabled_ratios = _paired_ratios(lambda: Observability(enabled=False))
    enabled_ratios = _paired_ratios(enabled_obs)

    # every enabled run traced fully: one span per executed node + instance
    assert all(len(e) == N_INSTANCES * SPANS_PER_INSTANCE for e in exporters), [
        len(e) for e in exporters
    ]

    # disabled runs must not trace at all
    probe = Observability(enabled=False, exporters=[InMemorySpanExporter()])
    engine = run_batch(20, obs=probe)
    assert len(probe.exporters[0]) == 0
    assert list(engine.obs.tracer.open_spans()) == []

    benchmark.pedantic(lambda: run_batch(100), rounds=3, iterations=1)

    def fmt(ratios):
        mid = ratios[len(ratios) // 2]
        return f"min={ratios[0]:.3f}x median={mid:.3f}x max={ratios[-1]:.3f}x"

    emit(
        "",
        f"== F7: observability overhead ({N_INSTANCES} instances x 10 script tasks,"
        f" {ROUNDS} paired rounds) ==",
        f"{'obs disabled':<22} {fmt(disabled_ratios)}",
        f"{'obs enabled (memory)':<22} {fmt(enabled_ratios)}",
    )

    assert disabled_ratios[0] <= DISABLED_BUDGET, disabled_ratios
    assert enabled_ratios[0] <= ENABLED_BUDGET, enabled_ratios
