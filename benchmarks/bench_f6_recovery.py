"""F6 — Crash recovery of in-flight instances.

Shape claims: (a) after a crash, a fresh engine over the same store
restores 100 % of in-flight instances, their pending work items and
timers; (b) recovery time grows linearly with the number of in-flight
instances.
"""

import time

from repro.clock import VirtualClock
from repro.engine.engine import ProcessEngine
from repro.engine.instance import InstanceState
from repro.model.builder import ProcessBuilder
from repro.storage.kvstore import DurableKV
from repro.worklist.allocation import ShortestQueueAllocator

SIZES = [10, 100, 500]


def waiting_model():
    return (
        ProcessBuilder("casework")
        .start()
        .user_task("review", role="clerk")
        .timer("cooldown", duration=9999)
        .end()
        .build()
    )


def build_engine(store):
    engine = ProcessEngine(
        clock=VirtualClock(0), store=store, allocator=ShortestQueueAllocator()
    )
    engine.organization.add("clerk1", roles=["clerk"])
    return engine


def crash_and_recover(tmp_dir, n):
    directory = f"{tmp_dir}/store-{n}"
    store = DurableKV(directory, sync_writes=False)
    engine = build_engine(store)
    engine.deploy(waiting_model())
    for _ in range(n):
        engine.start_instance("casework")
    store.close()  # crash: engine object dropped, store directory survives

    store2 = DurableKV(directory)
    engine2 = build_engine(store2)
    started = time.perf_counter()
    counts = engine2.recover()
    elapsed = (time.perf_counter() - started) * 1000
    running = len(engine2.instances(InstanceState.RUNNING))
    items = len(engine2.worklist.items())

    # prove the recovered instances are *live*: finish one end-to-end
    item = engine2.worklist.items()[0]
    engine2.worklist.start(item.id)
    engine2.complete_work_item(item.id)
    engine2.advance_time(10_000)
    completed = len(engine2.instances(InstanceState.COMPLETED))
    store2.close()
    return counts, running, items, completed, elapsed


def test_f6_recovery_scaling(benchmark, tmp_path, emit):
    rows = []
    for n in SIZES:
        counts, running, items, completed, ms = crash_and_recover(str(tmp_path), n)
        assert counts["instances"] == n
        assert running == n
        assert items == n
        assert completed == 1  # the one we completed post-recovery
        rows.append((n, ms))

    benchmark.pedantic(
        lambda: crash_and_recover(str(tmp_path / "bench"), 100),
        rounds=1,
        iterations=1,
    )

    emit(
        "",
        "== F6: crash recovery of in-flight instances ==",
        f"{'instances':>10} {'recover ms':>11} {'ms/instance':>12}",
    )
    for n, ms in rows:
        emit(f"{n:>10} {ms:>11.2f} {ms / n:>12.3f}")

    # shape: linear-ish growth (50x instances -> between 5x and 400x time)
    ratio = rows[-1][1] / max(rows[0][1], 1e-6)
    assert ratio < 400, ratio
