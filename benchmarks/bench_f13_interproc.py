"""F13 — Deployment-wide analysis cost and the incremental cache.

Claim: deployment-wide interprocess analysis is affordable at registry
scale *because* of the incremental cache — a warm re-analysis of an
unchanged deployment skips every per-definition pass and re-keys only
hashes, landing >= 10x under the cold run; and a cluster-wide deploy pays
for one analysis, not one per shard.

Smoke mode (``F13_SMOKE=1``, used by CI) shrinks the registry so the
bench doubles as a fast regression check; the JSON artifact
(``BENCH_f13.json``) records cold/warm timings and the speedup either
way.
"""

from __future__ import annotations

import os
import time

import repro.analysis as analysis_mod
from repro.analysis import AnalysisCache, analyze_deployment
from repro.clock import VirtualClock
from repro.cluster import ShardedEngine
from repro.model.builder import ProcessBuilder

_SMOKE = os.environ.get("F13_SMOKE", "") not in ("", "0")

N_DEFINITIONS = int(os.environ.get("F13_DEFINITIONS", "8" if _SMOKE else "24"))
N_TASKS = int(os.environ.get("F13_TASKS", "20" if _SMOKE else "60"))
N_SHARDS = int(os.environ.get("F13_SHARDS", "4"))
MIN_SPEEDUP = 10.0


def registry(n_definitions: int, n_tasks: int):
    """A chain of communicating definitions with some call edges.

    Each definition carries enough script tasks that the per-model passes
    dominate the hash recomputation, plus a send to the next definition
    in the ring and a receive from the previous one — one big
    communicating component, the cache's worst case.
    """
    definitions = []
    for index in range(n_definitions):
        b = ProcessBuilder(f"proc{index}").start()
        b.script_task("t0", script="acc = 0")
        for task in range(1, n_tasks):
            b.script_task(f"t{task}", script=f"acc = acc + {task}")
        b.send_task("tell_next", message_name=f"ring.{(index + 1) % n_definitions}")
        b.receive_task("hear_prev", message_name=f"ring.{index}")
        if index % 4 == 0 and index + 1 < n_definitions:
            b.call_activity("delegate", process_key=f"proc{index + 1}")
        definitions.append(b.end().build())
    return definitions


def test_f13_warm_cache_speedup(emit, bench_json):
    definitions = registry(N_DEFINITIONS, N_TASKS)
    cache = AnalysisCache()

    started = time.perf_counter()
    cold_report = analyze_deployment(definitions, cache=cache)
    cold_s = time.perf_counter() - started
    cold_stats = dict(cold_report.cache_stats)

    started = time.perf_counter()
    warm_report = analyze_deployment(definitions, cache=cache)
    warm_s = time.perf_counter() - started
    warm_stats = dict(warm_report.cache_stats)

    speedup = cold_s / warm_s if warm_s else float("inf")
    assert warm_stats["misses"] == cold_stats["misses"], (
        "warm run re-analyzed something", cold_stats, warm_stats
    )

    emit(
        "",
        "== F13: deployment-wide analysis, cold vs warm cache ==",
        f"{'definitions':>12} {'tasks each':>10} {'cold s':>8} "
        f"{'warm s':>8} {'speedup':>8}",
        f"{N_DEFINITIONS:>12} {N_TASKS:>10} {cold_s:>8.3f} "
        f"{warm_s:>8.3f} {speedup:>8.1f}",
    )

    shard_timings = _shard_deploy_cost(definitions[0])
    emit(
        "== F13: cluster deploy analysis count ==",
        f"shards={N_SHARDS} analyze() calls={shard_timings['analyze_calls']}",
    )

    bench_json("f13", {
        "definitions": N_DEFINITIONS,
        "tasks_per_definition": N_TASKS,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "cold_cache": cold_stats,
        "warm_cache": warm_stats,
        "shards": N_SHARDS,
        "shard_deploy_analyze_calls": shard_timings["analyze_calls"],
        "smoke": _SMOKE,
    })

    assert shard_timings["analyze_calls"] == 1
    assert speedup >= MIN_SPEEDUP, (
        f"warm cache {speedup:.1f}x < {MIN_SPEEDUP}x (cold {cold_s:.3f}s, "
        f"warm {warm_s:.3f}s)"
    )


def _shard_deploy_cost(definition):
    """Deploy one definition cluster-wide, counting analyze() calls."""
    calls = []
    real = analysis_mod.analyze

    def spy(target, **kwargs):
        calls.append(target.key)
        return real(target, **kwargs)

    analysis_mod.analyze = spy
    try:
        cluster = ShardedEngine(shards=N_SHARDS, clock=VirtualClock(0))
        cluster.deploy(definition)
    finally:
        analysis_mod.analyze = real
    return {"analyze_calls": len(calls)}
